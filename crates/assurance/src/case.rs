//! GSN-structured assurance cases with executable evidence queries — the
//! SACM/ACME substitute of this reproduction (paper §V-C).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle to a node of an [`AssuranceCase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeRef(pub(crate) u32);

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The GSN element kinds used by this case model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GsnKind {
    /// A claim about the system.
    Goal,
    /// How a goal is decomposed into subgoals.
    Strategy,
    /// Contextual information.
    Context,
    /// An evidence item (GSN solution), optionally machine-checkable.
    Solution,
}

impl fmt::Display for GsnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsnKind::Goal => f.write_str("Goal"),
            GsnKind::Strategy => f.write_str("Strategy"),
            GsnKind::Context => f.write_str("Context"),
            GsnKind::Solution => f.write_str("Solution"),
        }
    }
}

/// An executable evidence check: load a federated model and evaluate an EQL
/// expression; the evidence holds iff the result is truthy.
///
/// This is the paper's "we trace to our generated FMEDA result and store a
/// query to calculate SPFM in the assurance case model, to check whether
/// the SPFM meets the target ASIL value".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvidenceQuery {
    /// Model technology (a driver-registry kind: `"csv"`, `"memory"`, …).
    pub model_kind: String,
    /// Model location (path or registry key).
    pub location: String,
    /// The EQL expression; must evaluate truthy for the evidence to hold.
    pub expression: String,
}

/// Structural errors raised by the fallible case-editing methods
/// ([`AssuranceCase::try_support`] and friends), so pipeline passes can
/// degrade instead of panicking on a malformed case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseError {
    /// A node handle does not belong to this case.
    UnknownNode {
        /// Which reference was dangling (`"parent"`, `"child"`,
        /// `"context"`, `"node"`).
        role: &'static str,
    },
    /// An evidence query was attached to a non-solution node.
    QueryOnNonSolution,
}

impl fmt::Display for CaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseError::UnknownNode { role } => write!(f, "unknown {role} node"),
            CaseError::QueryOnNonSolution => f.write_str("queries attach to solutions"),
        }
    }
}

impl std::error::Error for CaseError {}

/// One GSN node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GsnNode {
    /// Conventional GSN identifier, e.g. `"G1"`, `"S1"`, `"Sn1"`.
    pub id: String,
    /// Element kind.
    pub kind: GsnKind,
    /// The claim / strategy / context / evidence statement.
    pub statement: String,
    /// Supporting children (goals, strategies, solutions).
    pub supported_by: Vec<NodeRef>,
    /// Contextual links.
    pub in_context_of: Vec<NodeRef>,
    /// Machine-checkable evidence (solutions only).
    pub query: Option<EvidenceQuery>,
}

/// A goal-structured assurance case.
///
/// # Examples
///
/// ```
/// use decisive_assurance::{AssuranceCase, EvidenceQuery};
///
/// let mut case = AssuranceCase::new("power-supply safety");
/// let g1 = case.goal("G1", "The power supply is acceptably safe");
/// let sn1 = case.solution("Sn1", "FMEDA results meet the ASIL-B SPFM target");
/// case.support(g1, sn1);
/// case.set_root(g1);
/// case.attach_query(sn1, EvidenceQuery {
///     model_kind: "memory".into(),
///     location: "fmeda".into(),
///     expression: "rows.size() > 0".into(),
/// });
/// assert_eq!(case.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AssuranceCase {
    /// Case title.
    pub name: String,
    nodes: Vec<GsnNode>,
    root: Option<NodeRef>,
}

impl AssuranceCase {
    /// Creates an empty case.
    pub fn new(name: impl Into<String>) -> Self {
        AssuranceCase { name: name.into(), nodes: Vec::new(), root: None }
    }

    fn add(
        &mut self,
        id: impl Into<String>,
        kind: GsnKind,
        statement: impl Into<String>,
    ) -> NodeRef {
        let node = NodeRef(self.nodes.len() as u32);
        self.nodes.push(GsnNode {
            id: id.into(),
            kind,
            statement: statement.into(),
            supported_by: Vec::new(),
            in_context_of: Vec::new(),
            query: None,
        });
        node
    }

    /// Adds a goal.
    pub fn goal(&mut self, id: impl Into<String>, statement: impl Into<String>) -> NodeRef {
        self.add(id, GsnKind::Goal, statement)
    }

    /// Adds a strategy.
    pub fn strategy(&mut self, id: impl Into<String>, statement: impl Into<String>) -> NodeRef {
        self.add(id, GsnKind::Strategy, statement)
    }

    /// Adds a context element.
    pub fn context(&mut self, id: impl Into<String>, statement: impl Into<String>) -> NodeRef {
        self.add(id, GsnKind::Context, statement)
    }

    /// Adds a solution (evidence item).
    pub fn solution(&mut self, id: impl Into<String>, statement: impl Into<String>) -> NodeRef {
        self.add(id, GsnKind::Solution, statement)
    }

    /// Records `parent ⟶ supported-by ⟶ child`.
    ///
    /// # Panics
    ///
    /// Panics if either handle is foreign to this case. Fallible callers
    /// should use [`AssuranceCase::try_support`].
    pub fn support(&mut self, parent: NodeRef, child: NodeRef) {
        self.try_support(parent, child).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Records `parent ⟶ supported-by ⟶ child`, rejecting foreign handles
    /// as a typed [`CaseError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`CaseError::UnknownNode`] when either handle is out of range.
    pub fn try_support(&mut self, parent: NodeRef, child: NodeRef) -> Result<(), CaseError> {
        if (child.0 as usize) >= self.nodes.len() {
            return Err(CaseError::UnknownNode { role: "child" });
        }
        let p = self
            .nodes
            .get_mut(parent.0 as usize)
            .ok_or(CaseError::UnknownNode { role: "parent" })?;
        if !p.supported_by.contains(&child) {
            p.supported_by.push(child);
        }
        Ok(())
    }

    /// Records `node ⟶ in-context-of ⟶ context`.
    ///
    /// # Panics
    ///
    /// Panics if either handle is foreign to this case. Fallible callers
    /// should use [`AssuranceCase::try_in_context`].
    pub fn in_context(&mut self, node: NodeRef, context: NodeRef) {
        self.try_in_context(node, context).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Records `node ⟶ in-context-of ⟶ context` with typed errors.
    ///
    /// # Errors
    ///
    /// [`CaseError::UnknownNode`] when either handle is out of range.
    pub fn try_in_context(&mut self, node: NodeRef, context: NodeRef) -> Result<(), CaseError> {
        if (context.0 as usize) >= self.nodes.len() {
            return Err(CaseError::UnknownNode { role: "context" });
        }
        let n =
            self.nodes.get_mut(node.0 as usize).ok_or(CaseError::UnknownNode { role: "node" })?;
        if !n.in_context_of.contains(&context) {
            n.in_context_of.push(context);
        }
        Ok(())
    }

    /// Attaches a machine-checkable evidence query to a solution.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a [`GsnKind::Solution`]. Fallible callers
    /// should use [`AssuranceCase::try_attach_query`].
    pub fn attach_query(&mut self, node: NodeRef, query: EvidenceQuery) {
        self.try_attach_query(node, query).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Attaches a machine-checkable evidence query with typed errors.
    ///
    /// # Errors
    ///
    /// [`CaseError::UnknownNode`] for a foreign handle,
    /// [`CaseError::QueryOnNonSolution`] when `node` is not a solution.
    pub fn try_attach_query(
        &mut self,
        node: NodeRef,
        query: EvidenceQuery,
    ) -> Result<(), CaseError> {
        let n =
            self.nodes.get_mut(node.0 as usize).ok_or(CaseError::UnknownNode { role: "node" })?;
        if n.kind != GsnKind::Solution {
            return Err(CaseError::QueryOnNonSolution);
        }
        n.query = Some(query);
        Ok(())
    }

    /// Designates the root goal.
    pub fn set_root(&mut self, root: NodeRef) {
        self.root = Some(root);
    }

    /// The root goal, if set.
    pub fn root(&self) -> Option<NodeRef> {
        self.root
    }

    /// The node behind a handle.
    pub fn node(&self, node: NodeRef) -> &GsnNode {
        &self.nodes[node.0 as usize]
    }

    /// Iterates `(handle, node)` in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeRef, &GsnNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeRef(i as u32), n))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for an empty case.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Renders the goal structure as an indented ASCII outline.
    pub fn render(&self) -> String {
        let mut out = format!("assurance case `{}`\n", self.name);
        if let Some(root) = self.root {
            self.render_node(root, 0, &mut out);
        }
        out
    }

    fn render_node(&self, node: NodeRef, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let n = self.node(node);
        let _ = writeln!(out, "{}{} [{}] {}", "  ".repeat(depth), n.id, n.kind, n.statement);
        for &ctx in &n.in_context_of {
            let c = self.node(ctx);
            let _ = writeln!(out, "{}({} context: {})", "  ".repeat(depth + 1), c.id, c.statement);
        }
        for &child in &n.supported_by {
            self.render_node(child, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render_structure() {
        let mut case = AssuranceCase::new("demo");
        let g1 = case.goal("G1", "system is safe");
        let s1 = case.strategy("S1", "argue over hazards");
        let g2 = case.goal("G2", "H1 mitigated");
        let sn1 = case.solution("Sn1", "FMEDA evidence");
        let c1 = case.context("C1", "ISO 26262 item definition");
        case.support(g1, s1);
        case.support(s1, g2);
        case.support(g2, sn1);
        case.in_context(g1, c1);
        case.set_root(g1);
        let text = case.render();
        assert!(text.contains("G1 [Goal]"));
        assert!(text.contains("  S1 [Strategy]"));
        assert!(text.contains("    G2 [Goal]"));
        assert!(text.contains("      Sn1 [Solution]"));
        assert!(text.contains("C1 context"));
    }

    #[test]
    fn support_deduplicates() {
        let mut case = AssuranceCase::new("d");
        let g = case.goal("G1", "x");
        let sn = case.solution("Sn1", "y");
        case.support(g, sn);
        case.support(g, sn);
        assert_eq!(case.node(g).supported_by.len(), 1);
    }

    #[test]
    #[should_panic(expected = "queries attach to solutions")]
    fn query_on_goal_panics() {
        let mut case = AssuranceCase::new("d");
        let g = case.goal("G1", "x");
        case.attach_query(
            g,
            EvidenceQuery {
                model_kind: "memory".into(),
                location: "m".into(),
                expression: "true".into(),
            },
        );
    }
}
