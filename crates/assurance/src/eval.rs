//! Automated assurance case evaluation.
//!
//! "When our design changes, it is reflected in the FMEDA result, which can
//! in turn be automatically checked by ACME (by executing the query). In
//! this way, it is possible to automate the evaluation of assurance cases."
//! (paper §V-C) — this module is that loop: every solution's evidence query
//! re-runs against the *current* federated artefacts.

use std::collections::HashMap;

use decisive_federation::DriverRegistry;
use serde::{Deserialize, Serialize};

use crate::case::{AssuranceCase, GsnKind, NodeRef};

/// The evaluation status of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Status {
    /// The claim holds: all supports satisfied / the evidence query is
    /// truthy.
    Satisfied,
    /// The evidence query evaluated falsy, or a support is unsatisfied.
    Unsatisfied,
    /// No supports and no query — the branch is not developed yet.
    Undeveloped,
    /// The evidence query failed to run.
    Error(String),
}

/// The result of evaluating a whole case.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    statuses: HashMap<NodeRef, Status>,
    root: Option<NodeRef>,
}

impl Evaluation {
    /// The status of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not part of the evaluated case; use
    /// [`Evaluation::try_status`] for handles of unknown provenance.
    pub fn status(&self, node: NodeRef) -> &Status {
        self.try_status(node).unwrap_or_else(|| panic!("node {node} was not evaluated"))
    }

    /// The status of one node, or `None` for a handle foreign to the
    /// evaluated case.
    pub fn try_status(&self, node: NodeRef) -> Option<&Status> {
        self.statuses.get(&node)
    }

    /// The root goal's status ([`Status::Undeveloped`] when no root is set).
    pub fn overall(&self) -> Status {
        match self.root {
            Some(root) => self.statuses[&root].clone(),
            None => Status::Undeveloped,
        }
    }

    /// `true` when the root goal is satisfied.
    pub fn is_satisfied(&self) -> bool {
        self.overall() == Status::Satisfied
    }

    /// All nodes whose status is not [`Status::Satisfied`], in node order.
    pub fn open_items(&self) -> Vec<(NodeRef, Status)> {
        let mut items: Vec<_> = self
            .statuses
            .iter()
            .filter(|(_, s)| **s != Status::Satisfied)
            .map(|(n, s)| (*n, s.clone()))
            .collect();
        items.sort_by_key(|(n, _)| *n);
        items
    }
}

/// Evaluates `case` against the artefacts reachable through `registry`.
///
/// Contexts are informational and always satisfied. A solution with a query
/// is satisfied iff the query evaluates truthy; without a query it is
/// undeveloped. Goals and strategies are satisfied iff they have at least
/// one support and every support is satisfied.
pub fn evaluate(case: &AssuranceCase, registry: &DriverRegistry) -> Evaluation {
    let mut statuses: HashMap<NodeRef, Status> = HashMap::new();
    // Nodes are append-only and supports point at existing nodes, so a
    // reverse pass visits children before parents.
    let all: Vec<NodeRef> = case.nodes().map(|(n, _)| n).collect();
    for &node in all.iter().rev() {
        let n = case.node(node);
        let status = match n.kind {
            GsnKind::Context => Status::Satisfied,
            GsnKind::Solution => match &n.query {
                None => Status::Undeveloped,
                Some(q) => match registry.extract(&q.model_kind, &q.location, &q.expression) {
                    Ok(result) => {
                        if result.truthy() {
                            Status::Satisfied
                        } else {
                            Status::Unsatisfied
                        }
                    }
                    Err(e) => Status::Error(e.to_string()),
                },
            },
            GsnKind::Goal | GsnKind::Strategy => {
                if n.supported_by.is_empty() {
                    Status::Undeveloped
                } else {
                    let mut status = Status::Satisfied;
                    for child in &n.supported_by {
                        match statuses.get(child) {
                            Some(Status::Satisfied) => {}
                            Some(Status::Error(e)) => {
                                status = Status::Error(e.clone());
                                break;
                            }
                            Some(Status::Unsatisfied) | Some(Status::Undeveloped) | None => {
                                status = Status::Unsatisfied;
                                break;
                            }
                        }
                    }
                    status
                }
            }
        };
        statuses.insert(node, status);
    }
    Evaluation { statuses, root: case.root() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::EvidenceQuery;
    use decisive_federation::Value;

    fn registry_with(key: &str, model: Value) -> DriverRegistry {
        let registry = DriverRegistry::with_defaults();
        registry.memory().register(key, model);
        registry
    }

    fn simple_case(expression: &str) -> AssuranceCase {
        let mut case = AssuranceCase::new("t");
        let g1 = case.goal("G1", "safe");
        let sn1 = case.solution("Sn1", "evidence");
        case.support(g1, sn1);
        case.set_root(g1);
        case.attach_query(
            sn1,
            EvidenceQuery {
                model_kind: "memory".into(),
                location: "m".into(),
                expression: expression.into(),
            },
        );
        case
    }

    #[test]
    fn satisfied_when_query_is_truthy() {
        let registry = registry_with("m", Value::list([Value::Int(1)]));
        let eval = evaluate(&simple_case("rows.size() = 1"), &registry);
        assert!(eval.is_satisfied());
        assert!(eval.open_items().is_empty());
    }

    #[test]
    fn unsatisfied_when_query_is_falsy() {
        let registry = registry_with("m", Value::list([Value::Int(1)]));
        let eval = evaluate(&simple_case("rows.size() > 5"), &registry);
        assert_eq!(eval.overall(), Status::Unsatisfied);
        assert_eq!(eval.open_items().len(), 2, "goal and solution are open");
    }

    #[test]
    fn error_when_artefact_is_missing() {
        let registry = DriverRegistry::with_defaults();
        let eval = evaluate(&simple_case("rows.size() = 1"), &registry);
        assert!(matches!(eval.overall(), Status::Error(_)));
    }

    #[test]
    fn undeveloped_branches_propagate() {
        let mut case = AssuranceCase::new("t");
        let g1 = case.goal("G1", "safe");
        let g2 = case.goal("G2", "nothing below"); // no supports
        case.support(g1, g2);
        case.set_root(g1);
        let eval = evaluate(&case, &DriverRegistry::with_defaults());
        assert_eq!(*eval.status(g2), Status::Undeveloped);
        assert_eq!(eval.overall(), Status::Unsatisfied);
    }

    #[test]
    fn contexts_are_always_satisfied() {
        let mut case = AssuranceCase::new("t");
        let g1 = case.goal("G1", "safe");
        let c1 = case.context("C1", "definition");
        let sn = case.solution("Sn1", "e");
        case.in_context(g1, c1);
        case.support(g1, sn);
        case.set_root(g1);
        case.attach_query(
            sn,
            EvidenceQuery {
                model_kind: "memory".into(),
                location: "m".into(),
                expression: "true".into(),
            },
        );
        let registry = registry_with("m", Value::Null);
        let eval = evaluate(&case, &registry);
        assert_eq!(*eval.status(c1), Status::Satisfied);
        assert!(eval.is_satisfied());
    }

    /// The paper's §V-C loop: the FMEDA artefact changes, the same case
    /// flips from unsatisfied to satisfied on re-evaluation.
    #[test]
    fn design_change_flips_the_case() {
        let case = simple_case(
            "1.0 - rows.collect(r | r.Single_Point_Failure_Rate).sum() / \
             rows.select(r | r.Safety_Related = 'Yes').collect(r | [r.Component, r.FIT]).distinct() \
             .collect(p | p[1]).sum() >= 0.9",
        );
        let registry = DriverRegistry::with_defaults();
        let row = |component: &str, fit: f64, sr: &str, spf: f64| {
            Value::record([
                ("Component", Value::from(component)),
                ("FIT", Value::Real(fit)),
                ("Safety_Related", Value::from(sr)),
                ("Single_Point_Failure_Rate", Value::Real(spf)),
            ])
        };
        // Before refinement: MC1's RAM failure is uncovered (300 FIT SPF).
        registry.memory().register(
            "m",
            Value::list([
                row("D1", 10.0, "Yes", 3.0),
                row("L1", 15.0, "Yes", 4.5),
                row("MC1", 300.0, "Yes", 300.0),
            ]),
        );
        assert_eq!(evaluate(&case, &registry).overall(), Status::Unsatisfied);
        // After deploying ECC, the artefact is regenerated…
        registry.memory().register(
            "m",
            Value::list([
                row("D1", 10.0, "Yes", 3.0),
                row("L1", 15.0, "Yes", 4.5),
                row("MC1", 300.0, "Yes", 3.0),
            ]),
        );
        // …and the *same* case now evaluates satisfied (SPFM 96.77 %).
        assert!(evaluate(&case, &registry).is_satisfied());
    }
}
