//! Assurance case generation from DECISIVE safety concepts.
//!
//! DECISIVE Step 5 says the produced artefacts "can be used to provide
//! contextual and evidential information in a (presumably model-based)
//! Assurance Case" — this module makes that step automatic: given the
//! synthesised [`SafetyConcept`] and the location of the published FMEDA
//! artefact, it generates the goal structure *with executable evidence
//! queries already attached*, so the case is born re-checkable.

use decisive_core::metrics;
use decisive_core::process::SafetyConcept;

use crate::case::{AssuranceCase, EvidenceQuery};

/// The Eq. 1 SPFM query over an exported FMEDA artefact, against `target`.
pub(crate) fn spfm_query(target: f64) -> String {
    format!(
        "1.0 - rows.collect(r | r.Single_Point_Failure_Rate).sum() / \
         rows.select(r | r.Safety_Related = 'Yes').collect(r | [r.Component, r.FIT]).distinct() \
         .collect(p | p[1]).sum() >= {target}"
    )
}

/// Generates a goal-structured assurance case from `concept`, with its
/// evidence bound to the FMEDA artefact at `(model_kind, location)`.
///
/// The structure follows the paper's §V-C example: a top safety claim,
/// argued over the safety goals, supported by the architectural-metric
/// evidence (the SPFM query) and one machine-checkable solution per
/// mechanism allocation.
///
/// # Examples
///
/// ```
/// use decisive_assurance::generate::case_from_concept;
/// use decisive_core::process::{DecisiveProcess, DesignModel, SystemDefinition};
/// use decisive_core::{case_study, mechanism::MechanismCatalog, reliability::ReliabilityDb};
///
/// # fn main() -> Result<(), decisive_core::CoreError> {
/// let (diagram, _) = decisive_blocks::gallery::sensor_power_supply();
/// let mut process = DecisiveProcess::new(
///     SystemDefinition::new("psu", "supply"),
///     case_study::hazard_log(),
///     DesignModel::Diagram(diagram),
/// )
/// .with_reliability(ReliabilityDb::paper_table_ii())
/// .with_catalog(MechanismCatalog::paper_table_iii());
/// let concept = process.run_to_target(10)?;
/// let case = case_from_concept(&concept, "memory", "artefacts/fmeda");
/// assert!(case.len() >= 5);
/// # Ok(())
/// # }
/// ```
pub fn case_from_concept(
    concept: &SafetyConcept,
    model_kind: &str,
    location: &str,
) -> AssuranceCase {
    let mut case = AssuranceCase::new(format!("{} safety case", concept.system));
    let g1 = case.goal(
        "G1",
        format!("{} is acceptably safe to operate in its defined context", concept.system),
    );
    let c1 = case.context("C1", format!("target integrity level: {}", concept.target));
    let c2 = case.context(
        "C2",
        format!(
            "DECISIVE iterations: {} (final SPFM {:.2}%)",
            concept.iterations.len(),
            concept.spfm * 100.0
        ),
    );
    case.in_context(g1, c1);
    case.in_context(g1, c2);
    case.set_root(g1);

    let s1 = case.strategy("S1", "Argue over each safety goal from the hazard analysis");
    case.support(g1, s1);
    for (i, goal) in concept.safety_goals.iter().enumerate() {
        let g = case.goal(format!("G1.{}", i + 1), goal.clone());
        case.support(s1, g);

        let s_metrics = case.strategy(
            format!("S1.{}", i + 1),
            "Argue over the architectural metrics of the refined design",
        );
        case.support(g, s_metrics);

        // The metric evidence (the paper's stored SPFM query).
        let g_spfm = case.goal(
            format!("G1.{}.1", i + 1),
            format!("the design meets the {} single point fault metric", concept.target),
        );
        case.support(s_metrics, g_spfm);
        let sn =
            case.solution(format!("Sn1.{}.1", i + 1), "generated FMEDA: SPFM meets the target");
        case.support(g_spfm, sn);
        let target = metrics::spfm_target(concept.target).unwrap_or(0.0);
        case.attach_query(
            sn,
            EvidenceQuery {
                model_kind: model_kind.to_owned(),
                location: location.to_owned(),
                expression: spfm_query(target),
            },
        );

        // One machine-checkable claim per mechanism allocation.
        for (j, allocation) in concept.allocations.iter().enumerate() {
            let g_alloc = case.goal(
                format!("G1.{}.{}", i + 1, j + 2),
                format!(
                    "`{}` is deployed on {} covering `{}`",
                    allocation.mechanism, allocation.component, allocation.failure_mode
                ),
            );
            case.support(s_metrics, g_alloc);
            let sn = case.solution(
                format!("Sn1.{}.{}", i + 1, j + 2),
                format!("FMEDA row shows {} on {}", allocation.mechanism, allocation.component),
            );
            case.support(g_alloc, sn);
            case.attach_query(sn, EvidenceQuery {
                model_kind: model_kind.to_owned(),
                location: location.to_owned(),
                expression: format!(
                    "rows.exists(r | r.Component = '{}' and r.Failure_Mode = '{}' and r.Safety_Mechanism = '{}')",
                    allocation.component, allocation.failure_mode, allocation.mechanism
                ),
            });
        }
    }
    case
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, Status};
    use decisive_core::process::{DecisiveProcess, DesignModel, SystemDefinition};
    use decisive_core::{case_study, mechanism::MechanismCatalog, reliability::ReliabilityDb};
    use decisive_federation::DriverRegistry;

    fn concept() -> SafetyConcept {
        let (diagram, _) = decisive_blocks::gallery::sensor_power_supply();
        let mut process = DecisiveProcess::new(
            SystemDefinition::new("power-supply", "sensor supply"),
            case_study::hazard_log(),
            DesignModel::Diagram(diagram),
        )
        .with_reliability(ReliabilityDb::paper_table_ii())
        .with_catalog(MechanismCatalog::paper_table_iii());
        process.run_to_target(10).expect("converges")
    }

    #[test]
    fn generated_case_evaluates_satisfied_on_the_real_artefact() {
        let concept = concept();
        let case = case_from_concept(&concept, "memory", "artefacts/fmeda");

        // Publish the actual refined FMEDA.
        let (diagram, _) = decisive_blocks::gallery::sensor_power_supply();
        let table = decisive_core::fmea::injection::run(
            &diagram,
            &ReliabilityDb::paper_table_ii(),
            &decisive_core::fmea::injection::InjectionConfig::default(),
        )
        .expect("fmea");
        let mut deployment = decisive_core::mechanism::Deployment::new();
        for a in &concept.allocations {
            deployment.deploy(
                a.component.clone(),
                a.failure_mode.clone(),
                decisive_core::mechanism::DeployedMechanism {
                    name: a.mechanism.clone(),
                    coverage: decisive_ssam::architecture::Coverage::new(a.coverage),
                    cost_hours: 0.0,
                },
            );
        }
        let fmeda = table.with_deployment(&deployment);
        let registry = DriverRegistry::with_defaults();
        registry.memory().register("artefacts/fmeda", fmeda.to_value());

        let evaluation = evaluate(&case, &registry);
        assert!(evaluation.is_satisfied(), "open: {:?}", evaluation.open_items());
    }

    #[test]
    fn generated_case_fails_on_the_unrefined_artefact() {
        let concept = concept();
        let case = case_from_concept(&concept, "memory", "artefacts/fmeda");
        let (diagram, _) = decisive_blocks::gallery::sensor_power_supply();
        let table = decisive_core::fmea::injection::run(
            &diagram,
            &ReliabilityDb::paper_table_ii(),
            &decisive_core::fmea::injection::InjectionConfig::default(),
        )
        .expect("fmea");
        let registry = DriverRegistry::with_defaults();
        registry.memory().register("artefacts/fmeda", table.to_value());
        let evaluation = evaluate(&case, &registry);
        assert_eq!(evaluation.overall(), Status::Unsatisfied);
        assert!(!evaluation.open_items().is_empty());
    }

    #[test]
    fn structure_covers_goals_and_allocations() {
        let concept = concept();
        let case = case_from_concept(&concept, "memory", "x");
        // 1 top + 1 strategy + per-goal (goal + strategy + spfm goal + spfm
        // solution) + per-allocation (goal + solution) + 2 contexts.
        let expected = 2
            + concept.safety_goals.len() * 4
            + concept.safety_goals.len() * concept.allocations.len() * 2
            + 2;
        assert_eq!(case.len(), expected);
        let text = case.render();
        assert!(text.contains("ECC"));
        assert!(text.contains("ASIL-B"));
    }
}
