//! # decisive-assurance
//!
//! Model-based assurance cases with **automated evaluation** — the ACME /
//! SACM substitute integrating DECISIVE's artefacts into the broader System
//! Assurance process (paper §V-C).
//!
//! An [`AssuranceCase`] is a GSN goal structure whose solutions may carry
//! [`EvidenceQuery`]s: executable EQL expressions over federated artefacts
//! (the generated FMEDA tables, hazard logs, …). [`evaluate`] re-runs every
//! query, so a design change that regenerates the FMEDA automatically
//! re-validates — or invalidates — the case.
//!
//! ## Example
//!
//! ```
//! use decisive_assurance::{evaluate, AssuranceCase, EvidenceQuery};
//! use decisive_federation::{DriverRegistry, Value};
//!
//! let mut case = AssuranceCase::new("power-supply");
//! let g1 = case.goal("G1", "The power supply is acceptably safe");
//! let sn1 = case.solution("Sn1", "FMEDA exists and covers the design");
//! case.support(g1, sn1);
//! case.set_root(g1);
//! case.attach_query(sn1, EvidenceQuery {
//!     model_kind: "memory".into(),
//!     location: "fmeda".into(),
//!     expression: "rows.size() > 0".into(),
//! });
//!
//! let registry = DriverRegistry::with_defaults();
//! registry.memory().register("fmeda", Value::list([Value::record([("Component", Value::from("D1"))])]));
//! assert!(evaluate(&case, &registry).is_satisfied());
//! ```

#![warn(missing_docs)]

mod case;
mod eval;
pub mod generate;
pub mod report;

pub use case::{AssuranceCase, CaseError, EvidenceQuery, GsnKind, GsnNode, NodeRef};
pub use eval::{evaluate, Evaluation, Status};
pub use report::{pipeline_case, pipeline_report, report_for, AssuranceReport, PipelineEvidence};
