//! Pipeline-facing assurance reporting: generate a query-backed case from
//! one DECISIVE iteration's artefacts (FMEA/FMEDA table, quantified FTA
//! subtrees, campaign health), evaluate it, and summarise the verdict.
//!
//! The pass manager registers its artefacts under the [`FMEA_LOCATION`],
//! [`FTA_LOCATION`] and [`CAMPAIGN_LOCATION`] memory keys, so the generated
//! case's evidence queries re-run against the *current* iteration — the
//! paper's §V-C automation loop, closed over the whole pipeline instead of
//! a single FMEDA artefact.

use serde::{Deserialize, Serialize};

use decisive_core::campaign::CampaignHealth;
use decisive_core::metrics;
use decisive_federation::DriverRegistry;
use decisive_ssam::base::IntegrityLevel;

use crate::case::{AssuranceCase, CaseError, EvidenceQuery};
use crate::eval::{evaluate, Status};
use crate::generate::spfm_query;

/// Memory-driver key the pipeline publishes the FMEA/FMEDA table under.
pub const FMEA_LOCATION: &str = "artefacts/fmeda";
/// Memory-driver key of the quantified FTA subtree records.
pub const FTA_LOCATION: &str = "artefacts/fta";
/// Memory-driver key of the campaign-health counter record.
pub const CAMPAIGN_LOCATION: &str = "artefacts/campaign";

/// The evidence one pipeline iteration offers to the case generator —
/// plain data, so the builder stays decoupled from the engine.
#[derive(Debug, Clone)]
pub struct PipelineEvidence<'a> {
    /// Name of the analysed system.
    pub system: &'a str,
    /// The integrity target the case argues against (normally the risk
    /// log's highest ASIL).
    pub target: IntegrityLevel,
    /// Per-container FTA results: `(container, analysable, single points)`.
    pub subtrees: &'a [(String, bool, Vec<String>)],
    /// Campaign health of the injection sweep, when one ran.
    pub campaign: Option<&'a CampaignHealth>,
}

/// Builds the standard pipeline assurance case: a root safety goal argued
/// over the architectural metric (SPFM against the target ASIL), the
/// fault-tree structure, and — when an injection campaign ran — campaign
/// health, each backed by an executable evidence query.
///
/// # Errors
///
/// Propagates [`CaseError`] from the structural builders (unreachable for
/// the fixed structure built here, but kept typed so pipeline passes
/// degrade instead of panicking).
pub fn pipeline_case(evidence: &PipelineEvidence<'_>) -> Result<AssuranceCase, CaseError> {
    let mut case = AssuranceCase::new(format!("{} safety case", evidence.system));
    let g1 = case.goal(
        "G1",
        format!("{} is acceptably safe to operate in its defined context", evidence.system),
    );
    case.set_root(g1);
    let c1 = case.context("C1", format!("target integrity level: {}", evidence.target));
    case.try_in_context(g1, c1)?;
    let analysable = evidence.subtrees.iter().filter(|(_, a, _)| *a).count();
    let single_points: usize = evidence.subtrees.iter().map(|(_, _, sp)| sp.len()).sum();
    let c2 = case.context(
        "C2",
        format!("{single_points} single-point event(s) across {analysable} analysable subtree(s)"),
    );
    case.try_in_context(g1, c2)?;
    let s1 = case.strategy(
        "S1",
        "argue over the architectural metric, the fault-tree structure and campaign health",
    );
    case.try_support(g1, s1)?;

    let spfm_target = metrics::spfm_target(evidence.target).unwrap_or(0.0);
    let g2 = case
        .goal("G2", format!("the single point fault metric meets the {} target", evidence.target));
    case.try_support(s1, g2)?;
    let sn2 = case.solution("Sn2", "generated FMEDA evaluated against Eq. 1");
    case.try_support(g2, sn2)?;
    case.try_attach_query(
        sn2,
        EvidenceQuery {
            model_kind: "memory".into(),
            location: FMEA_LOCATION.into(),
            expression: spfm_query(spfm_target),
        },
    )?;

    let g3 = case.goal("G3", "fault-tree analysis quantified the architecture");
    case.try_support(s1, g3)?;
    let sn3 = case.solution("Sn3", "at least one subtree was analysable");
    case.try_support(g3, sn3)?;
    case.try_attach_query(
        sn3,
        EvidenceQuery {
            model_kind: "memory".into(),
            location: FTA_LOCATION.into(),
            expression: "rows.select(r | r.Analysable = 'Yes').size() >= 1".into(),
        },
    )?;

    if evidence.campaign.is_some() {
        let g4 = case.goal("G4", "the fault-injection campaign is trustworthy");
        case.try_support(s1, g4)?;
        let sn4 = case.solution("Sn4", "no campaign case was unsolvable or panicked");
        case.try_support(g4, sn4)?;
        case.try_attach_query(
            sn4,
            EvidenceQuery {
                model_kind: "memory".into(),
                location: CAMPAIGN_LOCATION.into(),
                expression: "rows.exists(c | c.Unsolvable <= 0 and c.Panicked <= 0)".into(),
            },
        )?;
    }
    Ok(case)
}

/// The evaluated verdict of a pipeline assurance case, cacheable and
/// renderable by the CLI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssuranceReport {
    /// The generated case (structure plus queries).
    pub case: AssuranceCase,
    /// The root goal's status.
    pub overall: Status,
    /// Nodes evaluated satisfied.
    pub satisfied: usize,
    /// Total nodes in the case.
    pub total: usize,
    /// `(node id, status)` of every non-satisfied node, in node order.
    pub open: Vec<(String, String)>,
}

impl AssuranceReport {
    /// `true` when the root goal is satisfied.
    pub fn is_satisfied(&self) -> bool {
        self.overall == Status::Satisfied
    }

    /// A compact human-readable summary for the CLI.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# assurance case `{}`: {} ({}/{} node(s) satisfied)",
            self.case.name,
            status_text(&self.overall),
            self.satisfied,
            self.total,
        );
        for (id, status) in &self.open {
            let _ = writeln!(out, "#   open {id}: {status}");
        }
        out
    }
}

/// Evaluates `case` against `registry` and folds the result into an
/// [`AssuranceReport`].
pub fn report_for(case: &AssuranceCase, registry: &DriverRegistry) -> AssuranceReport {
    let evaluation = evaluate(case, registry);
    let mut satisfied = 0;
    let mut open = Vec::new();
    for (node, gsn) in case.nodes() {
        match evaluation.try_status(node) {
            Some(Status::Satisfied) => satisfied += 1,
            Some(status) => open.push((gsn.id.clone(), status_text(status))),
            None => open.push((gsn.id.clone(), "unevaluated".to_owned())),
        }
    }
    AssuranceReport {
        case: case.clone(),
        overall: evaluation.overall(),
        satisfied,
        total: case.len(),
        open,
    }
}

/// Generates and evaluates the pipeline case in one step; a builder error
/// degrades into an errored report instead of failing the pipeline.
pub fn pipeline_report(
    evidence: &PipelineEvidence<'_>,
    registry: &DriverRegistry,
) -> AssuranceReport {
    match pipeline_case(evidence) {
        Ok(case) => report_for(&case, registry),
        Err(e) => AssuranceReport {
            case: AssuranceCase::new(format!("{} safety case", evidence.system)),
            overall: Status::Error(e.to_string()),
            satisfied: 0,
            total: 0,
            open: vec![("G1".to_owned(), format!("error: {e}"))],
        },
    }
}

fn status_text(status: &Status) -> String {
    match status {
        Status::Satisfied => "satisfied".to_owned(),
        Status::Unsatisfied => "unsatisfied".to_owned(),
        Status::Undeveloped => "undeveloped".to_owned(),
        Status::Error(e) => format!("error: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decisive_federation::Value;

    fn subtrees() -> Vec<(String, bool, Vec<String>)> {
        vec![
            ("sensor_power_supply".to_owned(), true, vec!["D1:Open".to_owned()]),
            ("leaf".to_owned(), false, Vec::new()),
        ]
    }

    fn register_artefacts(registry: &DriverRegistry, spf_mc1: f64) {
        let row = |component: &str, fit: f64, spf: f64| {
            Value::record([
                ("Component", Value::from(component)),
                ("FIT", Value::Real(fit)),
                ("Safety_Related", Value::from("Yes")),
                ("Single_Point_Failure_Rate", Value::Real(spf)),
            ])
        };
        registry.memory().register(
            FMEA_LOCATION,
            Value::list([row("D1", 10.0, 3.0), row("L1", 15.0, 4.5), row("MC1", 300.0, spf_mc1)]),
        );
        registry.memory().register(
            FTA_LOCATION,
            Value::list([Value::record([
                ("Container", Value::from("sensor_power_supply")),
                ("Analysable", Value::from("Yes")),
                ("Top_Probability", Value::Real(1e-4)),
                ("Single_Points", Value::Int(1)),
            ])]),
        );
        registry.memory().register(
            CAMPAIGN_LOCATION,
            Value::list([Value::record([
                ("Total", Value::Int(9)),
                ("Converged", Value::Int(9)),
                ("Unsolvable", Value::Int(0)),
                ("Panicked", Value::Int(0)),
            ])]),
        );
    }

    #[test]
    fn refined_design_satisfies_the_generated_case() {
        let trees = subtrees();
        let health = CampaignHealth::default();
        let evidence = PipelineEvidence {
            system: "sensor_power_supply",
            target: IntegrityLevel::AsilB,
            subtrees: &trees,
            campaign: Some(&health),
        };
        let registry = DriverRegistry::with_defaults();
        register_artefacts(&registry, 3.0); // ECC deployed: SPFM 96.77 %
        let report = pipeline_report(&evidence, &registry);
        assert!(report.is_satisfied(), "open items: {:?}", report.open);
        assert_eq!(report.satisfied, report.total);
        assert!(report.render().contains("satisfied"));
    }

    #[test]
    fn unrefined_design_leaves_the_spfm_goal_open() {
        let trees = subtrees();
        let evidence = PipelineEvidence {
            system: "sensor_power_supply",
            target: IntegrityLevel::AsilB,
            subtrees: &trees,
            campaign: None,
        };
        let registry = DriverRegistry::with_defaults();
        register_artefacts(&registry, 300.0); // RAM failure uncovered
        let report = pipeline_report(&evidence, &registry);
        assert_eq!(report.overall, Status::Unsatisfied);
        assert!(report.open.iter().any(|(id, _)| id == "Sn2"));
        assert!(!report.case.render().contains("G4"), "no campaign goal without evidence");
    }
}
