//! Bench: the simulation substrate — DC operating points, fault-injection
//! re-simulation, and transient stepping on the case-study circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use decisive::blocks::{gallery, to_circuit};
use decisive::circuit::{Circuit, Fault, NodeId};

fn ladder_network(sections: usize) -> Circuit {
    let mut c = Circuit::new("ladder");
    let mut prev = c.node();
    c.add_voltage_source("V", prev, NodeId::GROUND, 12.0).expect("wiring");
    for i in 0..sections {
        let next = c.node();
        c.add_resistor(format!("Rs{i}"), prev, next, 100.0).expect("wiring");
        c.add_resistor(format!("Rp{i}"), next, NodeId::GROUND, 1_000.0).expect("wiring");
        prev = next;
    }
    c.add_current_sensor("CS", prev, NodeId::GROUND).expect("wiring");
    c
}

fn bench_circuit(c: &mut Criterion) {
    let (diagram, blocks) = gallery::sensor_power_supply();
    let lowered = to_circuit(&diagram).expect("lowering");

    c.bench_function("circuit/dc_case_study", |b| {
        b.iter(|| black_box(&lowered.circuit).dc().expect("dc"))
    });

    let d1 = lowered.element(blocks.d1).expect("D1");
    c.bench_function("circuit/inject_and_resolve", |b| {
        b.iter(|| {
            let faulted = black_box(&lowered.circuit).with_fault(d1, Fault::Open).expect("fault");
            faulted.dc().expect("dc")
        })
    });

    c.bench_function("circuit/transient_1ms", |b| {
        b.iter(|| black_box(&lowered.circuit).transient(1e-3, 1e-5).expect("transient"))
    });

    // Linear solver scaling on resistor ladders.
    let mut group = c.benchmark_group("circuit/dc_ladder");
    for sections in [10usize, 50, 200] {
        let circuit = ladder_network(sections);
        group.bench_with_input(BenchmarkId::from_parameter(sections), &circuit, |b, circuit| {
            b.iter(|| black_box(circuit).dc().expect("dc"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_circuit);
criterion_main!(benches);
