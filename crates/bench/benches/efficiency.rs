//! Bench: the compute kernel behind Table V — the automated FMEA of
//! Systems A and B (what SAME executes while the manual analyst would be
//! reviewing spreadsheets), sequential and parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use decisive::core::fmea::injection::{self, InjectionConfig};
use decisive::core::mechanism::search;
use decisive::workload::systems::{system_a, system_b};

fn bench_efficiency(c: &mut Criterion) {
    let subjects = [system_a(), system_b()];
    let mut group = c.benchmark_group("table5/automated_fmea");
    for subject in &subjects {
        for parallelism in [1usize, 4] {
            let id = format!("{}/threads={parallelism}", subject.name);
            group.bench_with_input(BenchmarkId::from_parameter(id), subject, |b, s| {
                let config = InjectionConfig { parallelism, ..InjectionConfig::default() };
                b.iter(|| {
                    injection::run(black_box(&s.diagram), black_box(&s.reliability), &config)
                        .expect("fmea")
                })
            });
        }
    }
    group.finish();

    // The Step 4b search on each subject's real FMEA table.
    let mut group = c.benchmark_group("table5/mechanism_search");
    for subject in &subjects {
        let table =
            injection::run(&subject.diagram, &subject.reliability, &InjectionConfig::default())
                .expect("fmea");
        group.bench_with_input(BenchmarkId::from_parameter(&subject.name), &table, |b, t| {
            b.iter(|| search::greedy(black_box(t), black_box(&subject.catalog), 0.90))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_efficiency);
criterion_main!(benches);
