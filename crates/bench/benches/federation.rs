//! Bench: the federation substrate — JSON/CSV parsing, EQL evaluation and
//! the serde bridge, at the sizes the FMEA pipeline actually pushes
//! through them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use decisive::core::case_study;
use decisive::federation::{csv, eql, json, serde_bridge};

fn reliability_csv(rows: usize) -> String {
    let mut text = String::from("Component,FIT,Failure_Mode,Distribution\n");
    for i in 0..rows {
        text.push_str(&format!("Part{i},{},Open,0.3\nPart{i},{},Short,0.7\n", i % 400, i % 400));
    }
    text
}

fn bench_federation(c: &mut Criterion) {
    // CSV parsing at spreadsheet sizes.
    let mut group = c.benchmark_group("federation/csv_parse");
    for rows in [10usize, 1_000, 10_000] {
        let text = reliability_csv(rows);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| csv::parse(black_box(text)).expect("parses"))
        });
    }
    group.finish();

    // EQL over a parsed table: the paper's stored SPFM-style query.
    let table = csv::parse(&reliability_csv(1_000)).expect("parses");
    let query = eql::Query::parse(
        "rows.select(r | r.Failure_Mode = 'Open').collect(r | r.FIT * r.Distribution).sum()",
    )
    .expect("parses");
    c.bench_function("federation/eql_select_collect_sum_1k", |b| {
        b.iter(|| query.eval(black_box(&table)).expect("evaluates"))
    });
    c.bench_function("federation/eql_parse", |b| {
        b.iter(|| {
            eql::Query::parse(black_box(
                "rows.select(r | r.Component = 'Diode' and r.FIT >= 10).collect(r | r.FIT).sum() / 325.0",
            ))
            .expect("parses")
        })
    });

    // JSON round trip of a realistic document.
    let doc = json::to_string(&table);
    c.bench_function("federation/json_parse_reliability_1k", |b| {
        b.iter(|| json::parse(black_box(&doc)).expect("parses"))
    });

    // The serde bridge on a full SSAM model (what persistence pays).
    let (model, _) = case_study::ssam_model();
    c.bench_function("federation/serde_bridge_model_to_value", |b| {
        b.iter(|| serde_bridge::to_value(black_box(&model)).expect("serializes"))
    });
    let value = serde_bridge::to_value(&model).expect("serializes");
    c.bench_function("federation/serde_bridge_value_to_model", |b| {
        b.iter(|| {
            let back: decisive::ssam::model::SsamModel =
                serde_bridge::from_value(black_box(&value)).expect("deserializes");
            back
        })
    });
}

criterion_group!(benches, bench_federation);
criterion_main!(benches);
