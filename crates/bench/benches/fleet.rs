//! Bench: fleet throughput versus the single-process pipeline (ISSUE 8).
//!
//! The fleet's promise is that process isolation is cheap enough to be the
//! default at ecosystem scale: sharding Set3-sized models across re-exec'd
//! workers should *win* on multi-core machines (the ISSUE's ≥3× target at
//! 8 workers) and cost only bounded overhead — IPC, spawn, journal fsync —
//! when there is nothing to parallelise. The gate is therefore
//! **core-aware**: the required speedup over the in-process sequential
//! baseline scales with the parallelism the machine actually has, down to
//! an overhead floor on a single core.
//!
//! It prints one `BENCH_fleet {...}` JSON line; `fleet_ok` (every model
//! exactly one `ok` row and throughput above the core-aware requirement)
//! is the CI gate, and the checked-in `BENCH_fleet.json` holds the first
//! recorded baseline.
//!
//! Plain `fn main` (`harness = false`), same as the other benches:
//! minima over repeated runs are stable enough without Criterion.

use std::path::PathBuf;
use std::time::Instant;

use decisive::engine::{Engine, Pipeline, PipelineInput};
use decisive::federation::{json, Value};
use decisive::fleet::{run_fleet, workload_tasks, FleetOptions};
use decisive::obs::Telemetry;
use decisive::workload::sets;

/// Campaign size: Set3 instances (the largest real model of the paper's
/// process, capped at `MAX_INSTANCE_ELEMENTS` per instance).
const MODELS: u64 = 10;
/// Generator seed shared by fleet and baseline (identical models).
const SEED: u64 = 42;
/// Repetitions; the minimum filters process-spawn and filesystem noise.
const ITERS: usize = 2;

/// The `decisive` binary next to this bench executable
/// (`target/<profile>/deps/fleet-* → target/<profile>/decisive`). The CI
/// step builds it first; locally, `cargo build --release -p decisive`.
fn decisive_exe() -> PathBuf {
    let mut dir = std::env::current_exe().expect("bench executable path");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let exe = dir.join(format!("decisive{}", std::env::consts::EXE_SUFFIX));
    assert!(
        exe.is_file(),
        "{} not found — build the decisive binary first (cargo build --release -p decisive)",
        exe.display()
    );
    exe
}

/// The core-aware throughput requirement: the ISSUE's 3× at ≥8 cores,
/// scaled down with available parallelism, with an overhead-only floor
/// (fleet ≥ half the sequential baseline) when there is a single core and
/// process isolation can only cost, never win.
fn required_speedup(cores: usize) -> f64 {
    match cores {
        0 | 1 => 0.5,
        2 | 3 => 1.0,
        4..=7 => 1.5,
        _ => 3.0,
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.clamp(1, 8);
    let exe = decisive_exe();
    let journal = std::env::temp_dir().join(format!("decisive-bench-fleet-{}", std::process::id()));
    std::fs::remove_dir_all(&journal).ok();

    // Baseline: the same models through one in-process sequential engine.
    let mut baseline_s = f64::INFINITY;
    for _ in 0..ITERS {
        let t = Instant::now();
        let mut engine = Engine::builder().jobs(1).build().expect("baseline engine");
        for instance in 0..MODELS {
            let set = sets::set_by_name("Set3").expect("Set3 exists");
            let (model, top) = sets::instance_model(&set, instance, SEED);
            let input = PipelineInput::for_model(&model, top).with_mission_hours(10_000.0);
            let run =
                engine.run_pipeline(&Pipeline::standard(false), &input).expect("baseline pipeline");
            assert!(run.fmea().is_some(), "baseline produces an FMEA");
        }
        baseline_s = baseline_s.min(t.elapsed().as_secs_f64());
    }

    // Fleet: same models sharded across process-isolated workers.
    let mut fleet_s = f64::INFINITY;
    let mut ok_rows = 0usize;
    let mut row_total = 0usize;
    let mut identity = String::new();
    for _ in 0..ITERS {
        let tasks = workload_tasks("Set3", MODELS, SEED).expect("workload tasks");
        let mut options = FleetOptions::new(&journal, &exe);
        options.workers = workers;
        options.deadline_ms = 120_000;
        let t = Instant::now();
        let report = run_fleet(tasks, &options, &Telemetry::noop()).expect("fleet campaign");
        fleet_s = fleet_s.min(t.elapsed().as_secs_f64());
        row_total = report.rows.len();
        ok_rows = report.rows.iter().filter(|r| r.status == "ok").count();
        identity = report.identity_digest();
    }
    std::fs::remove_dir_all(&journal).ok();

    let baseline_mps = MODELS as f64 / baseline_s;
    let fleet_mps = MODELS as f64 / fleet_s;
    let speedup = fleet_mps / baseline_mps;
    let required = required_speedup(cores);
    let fleet_ok = ok_rows as u64 == MODELS && row_total as u64 == MODELS && speedup >= required;
    let summary = Value::record([
        ("models", Value::Int(MODELS as i64)),
        ("set", Value::from("Set3")),
        ("cores", Value::Int(cores as i64)),
        ("workers", Value::Int(workers as i64)),
        ("baseline_s", Value::Real(baseline_s)),
        ("fleet_s", Value::Real(fleet_s)),
        ("baseline_models_per_sec", Value::Real(baseline_mps)),
        ("fleet_models_per_sec", Value::Real(fleet_mps)),
        ("speedup_fleet_over_baseline", Value::Real(speedup)),
        ("required_speedup", Value::Real(required)),
        ("ok_rows", Value::Int(ok_rows as i64)),
        ("identity_digest", Value::from(identity.as_str())),
        ("fleet_ok", Value::Bool(fleet_ok)),
    ]);
    println!("BENCH_fleet {}", json::to_string(&summary));
    assert!(fleet_ok, "fleet bench gate failed: {speedup:.2}x < required {required:.2}x");
}
