//! Bench (ablation): the literal Algorithm 1 (exhaustive path enumeration)
//! versus the optimised cut-vertex variant, on chains (linear path count)
//! and redundancy ladders (exponential path count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use decisive::core::fmea::graph::{self, GraphAlgorithm, GraphConfig};
use decisive::workload::sets::{chain_model, ladder_model};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/chain");
    for n in [10usize, 50, 200] {
        let (model, top) = chain_model(n);
        for (label, algorithm) in
            [("paths", GraphAlgorithm::ExhaustivePaths), ("cut", GraphAlgorithm::CutVertex)]
        {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &(&model, top),
                |b, (model, top)| {
                    let config = GraphConfig { algorithm, ..GraphConfig::default() };
                    b.iter(|| graph::run(black_box(model), *top, &config).expect("fmea"))
                },
            );
        }
    }
    group.finish();

    // Ladders: path count = width^depth; exhaustive explodes, cut-vertex
    // stays polynomial. Keep exhaustive within its cap.
    let mut group = c.benchmark_group("ablation/ladder");
    for (width, depth) in [(2usize, 6usize), (2, 10), (3, 8)] {
        let (model, top) = ladder_model(width, depth);
        let id = format!("{width}x{depth}");
        let paths_feasible = (width as f64).powi(depth as i32) <= 100_000.0;
        if paths_feasible {
            group.bench_with_input(
                BenchmarkId::new("paths", &id),
                &(&model, top),
                |b, (model, top)| {
                    let config = GraphConfig {
                        algorithm: GraphAlgorithm::ExhaustivePaths,
                        max_paths: 10_000_000,
                        ..GraphConfig::default()
                    };
                    b.iter(|| graph::run(black_box(model), *top, &config).expect("fmea"))
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("cut", &id), &(&model, top), |b, (model, top)| {
            let config = GraphConfig::default();
            b.iter(|| graph::run(black_box(model), *top, &config).expect("fmea"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
