//! Bench: the Table IV pipeline — automated FME(D)A of the case study,
//! deployment application and SPFM computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use decisive::blocks::gallery;
use decisive::core::fmea::injection::{self, InjectionConfig};
use decisive::core::mechanism::{DeployedMechanism, Deployment};
use decisive::core::reliability::ReliabilityDb;
use decisive::ssam::architecture::Coverage;

fn bench_fmeda(c: &mut Criterion) {
    let (diagram, _) = gallery::sensor_power_supply();
    let reliability = ReliabilityDb::paper_table_ii();
    let config = InjectionConfig::default();

    c.bench_function("table4/injection_fmea_case_study", |b| {
        b.iter(|| {
            injection::run(black_box(&diagram), black_box(&reliability), &config).expect("fmea")
        })
    });

    let table = injection::run(&diagram, &reliability, &config).expect("fmea");
    let mut deployment = Deployment::new();
    deployment.deploy(
        "MC1",
        "RAM Failure",
        DeployedMechanism { name: "ECC".into(), coverage: Coverage::new(0.99), cost_hours: 2.0 },
    );
    c.bench_function("table4/apply_deployment_and_spfm", |b| {
        b.iter(|| {
            let fmeda = black_box(&table).with_deployment(black_box(&deployment));
            black_box(fmeda.spfm())
        })
    });

    c.bench_function("table4/spfm_only", |b| b.iter(|| black_box(&table).spfm()));
}

criterion_group!(benches, bench_fmeda);
criterion_main!(benches);
