//! Bench: fault tree analysis — synthesis from SSAM, MOCUS cut sets and
//! quantification — plus the FMEA-from-FTA baseline against the direct
//! graph FMEA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use decisive::core::case_study;
use decisive::core::fmea::graph::{self, GraphConfig};
use decisive::fta::{build_fault_tree, fmea_from_fault_tree};
use decisive::workload::sets::{chain_model, ladder_model};

fn bench_fta(c: &mut Criterion) {
    let (model, top) = case_study::ssam_model();
    c.bench_function("fta/synthesis_case_study", |b| {
        b.iter(|| build_fault_tree(black_box(&model), top, 10_000).expect("synthesis"))
    });
    let synthesised = build_fault_tree(&model, top, 10_000).expect("synthesis");
    c.bench_function("fta/minimal_cut_sets", |b| {
        b.iter(|| black_box(&synthesised.tree).minimal_cut_sets())
    });
    c.bench_function("fta/quantify_10kh", |b| {
        b.iter(|| black_box(&synthesised.tree).quantify(10_000.0))
    });

    // Baseline comparison: FMEA via fault trees vs the direct graph FMEA.
    let mut group = c.benchmark_group("fta/baseline_vs_direct");
    for n in [20usize, 100] {
        let (chain, chain_top) = chain_model(n);
        group.bench_with_input(
            BenchmarkId::new("via_fta", n),
            &(&chain, chain_top),
            |b, (m, t)| {
                b.iter(|| {
                    let s = build_fault_tree(black_box(m), *t, 1_000_000).expect("synthesis");
                    fmea_from_fault_tree(&s, m, *t)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("direct", n), &(&chain, chain_top), |b, (m, t)| {
            b.iter(|| graph::run(black_box(m), *t, &GraphConfig::default()).expect("fmea"))
        });
    }
    group.finish();

    // Redundant ladders stress MOCUS (multi-event cut sets).
    let mut group = c.benchmark_group("fta/ladder_cut_sets");
    for (width, depth) in [(2usize, 4usize), (2, 6)] {
        let (ladder, ladder_top) = ladder_model(width, depth);
        let synthesised = build_fault_tree(&ladder, ladder_top, 1_000_000).expect("synthesis");
        let id = format!("{width}x{depth}");
        group.bench_with_input(BenchmarkId::from_parameter(id), &synthesised, |b, s| {
            b.iter(|| black_box(&s.tree).minimal_cut_sets())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fta);
criterion_main!(benches);
