//! Bench: the incremental engine against from-scratch re-analysis on the
//! paper's scalability sets — cold cache, warm cache, and the realistic
//! "one component edited between iterations" case, plus worker scaling.
//!
//! Besides the Criterion groups, the run prints a single
//! `BENCH_incremental … ` JSON line with one-shot wall times, convenient
//! for dropping into `BENCH_incremental.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use decisive::engine::{Engine, EngineConfig};
use decisive::federation::{json, Value};
use decisive::ssam::architecture::Fit;
use decisive::ssam::model::SsamModel;
use decisive::workload::sets::chain_model;

/// Set2 and Set3 of the paper's scalability study (§VI-B), as chains of
/// equivalent element count (1369 and 5689 model elements).
const SETS: [(&str, usize); 2] = [("set2", 456), ("set3", 1896)];

fn edited_copy(
    n: usize,
) -> (SsamModel, decisive::ssam::id::Idx<decisive::ssam::architecture::Component>) {
    let (mut model, top) = chain_model(n);
    let mid = model.component_by_name(&format!("c{}", n / 2)).expect("mid component");
    model.components[mid].fit = Some(Fit::new(99.0));
    (model, top)
}

fn bench_incremental(c: &mut Criterion) {
    for (label, n) in SETS {
        let (model, top) = chain_model(n);
        let (edited, edited_top) = edited_copy(n);

        let mut group = c.benchmark_group(&format!("incremental/{label}"));
        group.bench_function("cold", |b| {
            b.iter(|| {
                Engine::new(EngineConfig::with_jobs(4))
                    .analyze_graph(black_box(&model), top)
                    .expect("cold analysis")
            })
        });
        group.bench_function("warm", |b| {
            let mut engine = Engine::new(EngineConfig::with_jobs(4));
            engine.analyze_graph(&model, top).expect("prime");
            b.iter(|| engine.analyze_graph(black_box(&model), top).expect("warm analysis"))
        });
        group.bench_function("one_edit_rerun", |b| {
            let mut engine = Engine::new(EngineConfig::with_jobs(4));
            engine.analyze_graph(&model, top).expect("prime");
            b.iter(|| {
                engine
                    .rerun(black_box(&model), black_box(&edited), edited_top)
                    .expect("incremental rerun")
            })
        });
        group.finish();

        let mut group = c.benchmark_group(&format!("incremental/{label}/scaling"));
        for jobs in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
                b.iter(|| {
                    Engine::new(EngineConfig::with_jobs(jobs))
                        .analyze_graph(black_box(&model), top)
                        .expect("scaling analysis")
                })
            });
        }
        group.finish();
    }

    print_summary();
}

/// One-shot wall times in a machine-readable line (BENCH_incremental.json).
fn print_summary() {
    let mut sets = Vec::new();
    for (label, n) in SETS {
        let (model, top) = chain_model(n);
        let (edited, edited_top) = edited_copy(n);

        let t = Instant::now();
        let mut engine = Engine::new(EngineConfig::with_jobs(4));
        engine.analyze_graph(&model, top).expect("cold");
        let cold_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        engine.analyze_graph(&model, top).expect("warm");
        let warm_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        engine.rerun(&model, &edited, edited_top).expect("rerun");
        let rerun_ms = t.elapsed().as_secs_f64() * 1e3;

        let rows = engine.stats().phase("graph-rows").expect("rows phase");
        sets.push(Value::record([
            ("set", Value::from(label)),
            ("elements", Value::Int(model.element_count() as i64)),
            ("cold_ms", Value::Real(cold_ms)),
            ("warm_ms", Value::Real(warm_ms)),
            ("one_edit_rerun_ms", Value::Real(rerun_ms)),
            ("rerun_jobs_executed", Value::Int(rows.jobs_executed as i64)),
            ("rerun_jobs_total", Value::Int(rows.jobs_total as i64)),
        ]));
    }
    println!("BENCH_incremental {}", json::to_string(&Value::List(sets)));
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
