//! Bench: the Monte-Carlo campaign pass — scheduler scaling and
//! factorization reuse (ISSUE 10).
//!
//! The subject is the all-electrical System-B-scale build from the solver
//! bench: 230 blocks that all carry MNA stamps, so every trial's injection
//! sweep is real solver work rather than bookkeeping. Each Monte-Carlo
//! trial re-runs the full single-fault campaign under a perturbed
//! reliability draw, which makes the pass the heaviest per-artifact
//! workload in the engine and the one that most rewards both scheduler
//! parallelism and the per-worker `SolverWorkspace`.
//!
//! Two measurements:
//!
//! * trials/sec at scheduler jobs 1/2/4/8, each from a cold engine, with
//!   the reports required to be bitwise identical across all four runs
//!   (the seeded-RNG determinism contract), and
//! * the workspace-reuse speedup: the sparse kernel solves every injection
//!   through a per-worker workspace that reuses the healthy circuit's
//!   symbolic factorization, versus the dense kernel's fresh full
//!   factorization per solve. The acceptance gate is ≥2×.
//!
//! It prints one `BENCH_mc {...}` JSON line; `mc_ok` is the CI gate and
//! the checked-in `BENCH_mc.json` holds the first recorded baseline.
//!
//! Plain `fn main` (`harness = false`), same as the other benches.

use std::time::Instant;

use decisive::blocks::{BlockDiagram, BlockId, BlockKind, Port};
use decisive::circuit::{SolverKernel, SolverOptions};
use decisive::core::campaign::CampaignConfig;
use decisive::core::fmea::injection::InjectionConfig;
use decisive::core::montecarlo::MonteCarloReport;
use decisive::core::reliability::ReliabilityDb;
use decisive::engine::{Engine, EngineConfig};
use decisive::federation::{json, Value};

/// Power rails in the subject; 32 rails + ties + shunts = 230 blocks.
const RAILS: usize = 32;
/// Trials for the scaling sweep — enough campaign work to amortise
/// scheduler startup at 8 jobs, small enough to keep the bench quick.
const SCALING_TRIALS: usize = 8;
/// Trials for the kernel comparison; the dense comparator re-factorises
/// every solve, so this stays small.
const REUSE_TRIALS: usize = 2;
/// Master seed for every campaign in this bench.
const SEED: u64 = 42;
/// Scheduler widths swept for trials/sec.
const JOBS: [usize; 4] = [1, 2, 4, 8];

/// One power rail: `source → diode → inductor → sensor → MCU load`,
/// filter capacitor across the source. Returns the MCU block.
fn add_rail(d: &mut BlockDiagram, prefix: &str, gnd: BlockId) -> BlockId {
    let ok = "static bench wiring";
    let dc = d.add_block(format!("{prefix}_DC"), BlockKind::DcVoltageSource { volts: 5.0 });
    let diode = d.add_block(format!("{prefix}_D"), BlockKind::Diode);
    let ind = d.add_block(format!("{prefix}_L"), BlockKind::Inductor { henries: 1e-3 });
    let cap = d.add_block(format!("{prefix}_C"), BlockKind::Capacitor { farads: 10e-6 });
    let cs = d.add_block(format!("{prefix}_CS"), BlockKind::CurrentSensor);
    let mc = d.add_block(
        format!("{prefix}_MC"),
        BlockKind::Mcu { on_amps: 0.1, brownout_volts: 3.0, fault_amps: 0.02 },
    );
    d.connect(dc, Port(0), diode, Port(0)).expect(ok);
    d.connect(diode, Port(1), ind, Port(0)).expect(ok);
    d.connect(ind, Port(1), cs, Port(0)).expect(ok);
    d.connect(cs, Port(1), mc, Port(0)).expect(ok);
    d.connect(mc, Port(1), gnd, Port(0)).expect(ok);
    d.connect(dc, Port(1), gnd, Port(0)).expect(ok);
    d.connect(cap, Port(0), dc, Port(0)).expect(ok);
    d.connect(cap, Port(1), gnd, Port(0)).expect(ok);
    mc
}

/// The all-electrical System-B-scale subject (230 blocks): cross-tied
/// rails couple the MNA matrix off the tridiagonal, shunts pad the count.
fn electrical_system_b() -> BlockDiagram {
    let ok = "static bench wiring";
    let mut d = BlockDiagram::new("System B (electrical)");
    let gnd = d.add_block("GND", BlockKind::Ground);
    let mcs: Vec<BlockId> = (0..RAILS).map(|i| add_rail(&mut d, &format!("R{i}"), gnd)).collect();
    for i in 0..RAILS - 1 {
        let tie = d.add_block(format!("TIE{i}"), BlockKind::Resistor { ohms: 10.0 });
        d.connect(tie, Port(0), mcs[i], Port(0)).expect(ok);
        d.connect(tie, Port(1), mcs[i + 1], Port(0)).expect(ok);
    }
    let mut shunts = 0;
    while d.blocks().count() < 230 {
        let shunt = d.add_block(format!("SH{shunts}"), BlockKind::Resistor { ohms: 470.0 });
        d.connect(shunt, Port(0), mcs[shunts], Port(0)).expect(ok);
        d.connect(shunt, Port(1), gnd, Port(0)).expect(ok);
        shunts += 1;
    }
    d
}

/// Reliability data covering every electrical block type of the subject.
fn reliability() -> ReliabilityDb {
    ReliabilityDb::from_csv_str(
        "Component,FIT,Failure_Mode,Distribution\n\
         Diode,10,Open,0.3\n\
         Diode,10,Short,0.7\n\
         Capacitor,2,Open,0.3\n\
         Capacitor,2,Short,0.7\n\
         Inductor,15,Open,0.3\n\
         Inductor,15,Short,0.7\n\
         Resistor,5,Open,0.3\n\
         Resistor,5,Short,0.7\n\
         MC,300,RAM Failure,1.0\n",
    )
    .expect("static reliability model parses")
}

fn config(kernel: SolverKernel) -> InjectionConfig {
    InjectionConfig {
        campaign: CampaignConfig {
            solver: SolverOptions { kernel, ..SolverOptions::default() },
            ..CampaignConfig::default()
        },
        ..InjectionConfig::default()
    }
}

/// One cold Monte-Carlo campaign: fresh engine, given scheduler width and
/// kernel. Returns the wall time and the report.
fn run_campaign(
    diagram: &BlockDiagram,
    db: &ReliabilityDb,
    jobs: usize,
    kernel: SolverKernel,
    trials: usize,
) -> (f64, MonteCarloReport) {
    let mut engine = Engine::new(EngineConfig::with_jobs(jobs));
    let t = Instant::now();
    let report = engine
        .analyze_montecarlo(diagram, db, &config(kernel), trials, SEED)
        .expect("campaign completes");
    (t.elapsed().as_secs_f64(), report)
}

fn main() {
    let diagram = electrical_system_b();
    let db = reliability();

    // Trials/sec across scheduler widths, cold engine each time. The
    // determinism contract rides along: all four reports must agree.
    let mut rates = Vec::new();
    let mut reports: Vec<MonteCarloReport> = Vec::new();
    for jobs in JOBS {
        let (secs, report) =
            run_campaign(&diagram, &db, jobs, SolverKernel::Sparse, SCALING_TRIALS);
        rates.push(SCALING_TRIALS as f64 / secs);
        reports.push(report);
    }
    let deterministic = reports.windows(2).all(|pair| pair[0] == pair[1]);

    // Workspace reuse versus fresh solves, one worker so the comparison
    // is pure solver cost: the sparse kernel reuses the healthy circuit's
    // factorization through the per-worker workspace, the dense kernel
    // factorises from scratch on every injection.
    let (reuse_s, sparse_report) =
        run_campaign(&diagram, &db, 1, SolverKernel::Sparse, REUSE_TRIALS);
    let (fresh_s, dense_report) = run_campaign(&diagram, &db, 1, SolverKernel::Dense, REUSE_TRIALS);
    let speedup = fresh_s / reuse_s;
    // The kernels must also agree on the stochastic estimates themselves:
    // a fast path that shifts the CI is a regression, not a speedup.
    let kernels_agree = (sparse_report.spfm.mean - dense_report.spfm.mean).abs() < 1e-9
        && (sparse_report.pmhf.mean - dense_report.pmhf.mean).abs() < 1e-15;

    let mc_ok = deterministic && kernels_agree && speedup >= 2.0;

    let summary = Value::record([
        ("blocks", Value::Int(diagram.blocks().count() as i64)),
        ("trials", Value::Int(SCALING_TRIALS as i64)),
        ("seed", Value::Int(SEED as i64)),
        ("trials_per_sec_jobs1", Value::Real(rates[0])),
        ("trials_per_sec_jobs2", Value::Real(rates[1])),
        ("trials_per_sec_jobs4", Value::Real(rates[2])),
        ("trials_per_sec_jobs8", Value::Real(rates[3])),
        ("reuse_sparse_s", Value::Real(reuse_s)),
        ("fresh_dense_s", Value::Real(fresh_s)),
        ("workspace_reuse_speedup", Value::Real(speedup)),
        ("deterministic_across_jobs", Value::Bool(deterministic)),
        ("kernels_agree", Value::Bool(kernels_agree)),
        ("mc_ok", Value::Bool(mc_ok)),
    ]);
    println!("BENCH_mc {}", json::to_string(&summary));
}
