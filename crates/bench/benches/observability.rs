//! Bench: telemetry overhead on the warm incremental path (ISSUE 5).
//!
//! The observability layer promises to be effectively free when nobody is
//! listening: with the default noop sink the only instrumentation cost is
//! one `enabled()` check per hook. This harness measures warm
//! `analyze_graph` runs on a paper-scale chain twice — noop sink versus a
//! live recording sink drained between runs — and prints one
//! `BENCH_obs {...}` JSON line with the relative overhead and an
//! `overhead_ok` verdict (recording must stay within 5% of noop), which
//! CI greps.
//!
//! Plain `fn main` (`harness = false`): minima over repeated runs are
//! stable enough for a pass/fail gate without Criterion's machinery.

use std::time::Instant;

use decisive::engine::Engine;
use decisive::federation::{json, Value};
use decisive::obs::Telemetry;
use decisive::ssam::architecture::Component;
use decisive::ssam::id::Idx;
use decisive::ssam::model::SsamModel;
use decisive::workload::sets::chain_model;

/// Set2 of the paper's scalability study, the smallest paper-scale set.
const CHAIN: usize = 456;
/// Warm repetitions; the minimum filters scheduler and allocator noise.
const ITERS: usize = 30;

/// Primes the cache once, then returns the fastest warm wall time in ms.
fn min_warm_ms(engine: &mut Engine, model: &SsamModel, top: Idx<Component>) -> f64 {
    engine.analyze_graph(model, top).expect("prime run");
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t = Instant::now();
        engine.analyze_graph(model, top).expect("warm run");
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let (model, top) = chain_model(CHAIN);

    let mut noop_engine = Engine::builder().jobs(4).build().expect("noop engine");
    let noop_ms = min_warm_ms(&mut noop_engine, &model, top);

    let (telemetry, sink) = Telemetry::recording();
    let mut recording_engine =
        Engine::builder().jobs(4).telemetry(telemetry).build().expect("recording engine");
    let recording_ms = min_warm_ms(&mut recording_engine, &model, top);
    let report = sink.drain();

    let overhead_pct = (recording_ms - noop_ms) / noop_ms * 100.0;
    let summary = Value::record([
        ("set", Value::from("chain456")),
        ("elements", Value::Int(model.element_count() as i64)),
        ("warm_noop_ms", Value::Real(noop_ms)),
        ("warm_recording_ms", Value::Real(recording_ms)),
        ("recorded_spans", Value::Int(report.spans.len() as i64)),
        ("recorded_counters", Value::Int(report.counters.len() as i64)),
        ("overhead_pct", Value::Real(overhead_pct)),
        ("overhead_ok", Value::Bool(overhead_pct < 5.0)),
    ]);
    println!("BENCH_obs {}", json::to_string(&summary));
}
