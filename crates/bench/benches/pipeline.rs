//! Bench: the pass-manager pipeline — a full DECISIVE iteration (graph
//! FMEA → FTA → monitors → HARA → assurance) as one DAG — cold, warm, and
//! after a one-component edit, across worker counts.
//!
//! Besides the Criterion groups, the run prints a single
//! `BENCH_pipeline … ` JSON line with one-shot wall times, convenient for
//! dropping into `BENCH_pipeline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use decisive::engine::{Engine, EngineConfig, Pipeline, PipelineInput};
use decisive::federation::{json, Value};
use decisive::ssam::architecture::Fit;
use decisive::ssam::model::SsamModel;
use decisive::workload::sets::chain_model;

/// Set2 of the paper's scalability study (§VI-B) as the headline size,
/// plus a small set for per-pass overhead visibility.
const SETS: [(&str, usize); 2] = [("set1", 57), ("set2", 456)];

/// Worker counts for the scaling sweep.
const JOBS: [usize; 4] = [1, 2, 4, 8];

fn edited_copy(
    n: usize,
) -> (SsamModel, decisive::ssam::id::Idx<decisive::ssam::architecture::Component>) {
    let (mut model, top) = chain_model(n);
    let mid = model.component_by_name(&format!("c{}", n / 2)).expect("mid component");
    model.components[mid].fit = Some(Fit::new(99.0));
    (model, top)
}

fn bench_pipeline(c: &mut Criterion) {
    for (label, n) in SETS {
        let (model, top) = chain_model(n);
        let (edited, edited_top) = edited_copy(n);
        let pipeline = Pipeline::standard(false);

        let mut group = c.benchmark_group(&format!("pipeline/{label}"));
        group.bench_function("cold", |b| {
            b.iter(|| {
                Engine::new(EngineConfig::with_jobs(4))
                    .run_pipeline(&pipeline, black_box(&PipelineInput::for_model(&model, top)))
                    .expect("cold pipeline")
            })
        });
        group.bench_function("warm", |b| {
            let mut engine = Engine::new(EngineConfig::with_jobs(4));
            engine.run_pipeline(&pipeline, &PipelineInput::for_model(&model, top)).expect("prime");
            b.iter(|| {
                engine
                    .run_pipeline(&pipeline, black_box(&PipelineInput::for_model(&model, top)))
                    .expect("warm pipeline")
            })
        });
        group.bench_function("one_edit", |b| {
            let mut engine = Engine::new(EngineConfig::with_jobs(4));
            engine.run_pipeline(&pipeline, &PipelineInput::for_model(&model, top)).expect("prime");
            b.iter(|| {
                engine
                    .run_pipeline(
                        &pipeline,
                        black_box(&PipelineInput::for_model(&edited, edited_top)),
                    )
                    .expect("edited pipeline")
            })
        });
        group.finish();

        let mut group = c.benchmark_group(&format!("pipeline/{label}/scaling"));
        for jobs in JOBS {
            group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
                b.iter(|| {
                    Engine::new(EngineConfig::with_jobs(jobs))
                        .run_pipeline(&pipeline, black_box(&PipelineInput::for_model(&model, top)))
                        .expect("scaling pipeline")
                })
            });
        }
        group.finish();
    }

    print_summary();
}

/// One-shot wall times in a machine-readable line (BENCH_pipeline.json).
fn print_summary() {
    let mut sets = Vec::new();
    for (label, n) in SETS {
        let (model, top) = chain_model(n);
        let (edited, edited_top) = edited_copy(n);
        let pipeline = Pipeline::standard(false);

        let mut per_jobs = Vec::new();
        for jobs in JOBS {
            let mut engine = Engine::new(EngineConfig::with_jobs(jobs));

            let t = Instant::now();
            engine.run_pipeline(&pipeline, &PipelineInput::for_model(&model, top)).expect("cold");
            let cold_ms = t.elapsed().as_secs_f64() * 1e3;

            let t = Instant::now();
            engine.run_pipeline(&pipeline, &PipelineInput::for_model(&model, top)).expect("warm");
            let warm_ms = t.elapsed().as_secs_f64() * 1e3;

            let t = Instant::now();
            engine
                .run_pipeline(&pipeline, &PipelineInput::for_model(&edited, edited_top))
                .expect("one edit");
            let edit_ms = t.elapsed().as_secs_f64() * 1e3;

            per_jobs.push(Value::record([
                ("jobs", Value::Int(jobs as i64)),
                ("cold_ms", Value::Real(cold_ms)),
                ("warm_ms", Value::Real(warm_ms)),
                ("one_edit_ms", Value::Real(edit_ms)),
            ]));
        }
        sets.push(Value::record([
            ("set", Value::from(label)),
            ("elements", Value::Int(model.element_count() as i64)),
            ("passes", Value::Int(pipeline.passes().len() as i64)),
            ("runs", Value::List(per_jobs)),
        ]));
    }
    println!("BENCH_pipeline {}", json::to_string(&Value::List(sets)));
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
