//! Bench: Table VI — evaluation time versus model size, eager versus
//! indexed model stores. (The full Set4/Set5 runs live in `make_tables`;
//! Criterion sweeps the tractable sizes so the scaling *curve* is visible.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use decisive::federation::store::{scan_count, EagerStore, IndexedStore, SyntheticSource};
use decisive::federation::Value;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6/eager_scan");
    for elements in [109u64, 269, 1_369, 5_689, 56_890, 568_900] {
        group.throughput(Throughput::Elements(elements));
        group.bench_with_input(BenchmarkId::from_parameter(elements), &elements, |b, &n| {
            let store = EagerStore::load(&SyntheticSource::new(n), 8 << 30).expect("fits");
            b.iter(|| {
                scan_count(black_box(&store), |v| {
                    v.get("safety_related") == Some(&Value::Bool(true))
                })
                .expect("scan")
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table6/indexed_scan");
    for elements in [5_689u64, 56_890, 568_900] {
        group.throughput(Throughput::Elements(elements));
        group.bench_with_input(BenchmarkId::from_parameter(elements), &elements, |b, &n| {
            let store = IndexedStore::new(Arc::new(SyntheticSource::new(n)), 4_096, 8);
            b.iter(|| {
                scan_count(black_box(&store), |v| {
                    v.get("safety_related") == Some(&Value::Bool(true))
                })
                .expect("scan")
            })
        });
    }
    group.finish();

    // Eager loading cost itself (what EMF pays before any query runs).
    let mut group = c.benchmark_group("table6/eager_load");
    for elements in [5_689u64, 56_890] {
        group.throughput(Throughput::Elements(elements));
        group.bench_with_input(BenchmarkId::from_parameter(elements), &elements, |b, &n| {
            let source = SyntheticSource::new(n);
            b.iter(|| EagerStore::load(black_box(&source), 8 << 30).expect("fits"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
