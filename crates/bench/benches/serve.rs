//! Bench: daemon request throughput, cold versus warm (ISSUE 6).
//!
//! The serve subsystem's promise is that keeping the engine warm turns
//! repeat analyses into cache reads. This harness drives the daemon
//! in-process through `handle_line` — the same entry the stdio and socket
//! loops use — and measures three regimes on the brown-out case study:
//!
//! - **cold**: the first pipeline request on a fresh daemon (every
//!   artefact computed);
//! - **warm**: repeat requests in the same session (pure overlay hits);
//! - **shared**: a brand-new session per request against the populated
//!   shared store (pure cross-session hits).
//!
//! It prints one `BENCH_serve {...}` JSON line; `warm_ok` (warm beats
//! cold) and `shared_hits > 0` are the CI gates, and the checked-in
//! `BENCH_serve.json` holds the first recorded baseline.
//!
//! Plain `fn main` (`harness = false`), same as the other benches:
//! minima over repeated runs are stable enough without Criterion.

use std::time::Instant;

use decisive::federation::{json, Value};
use decisive::obs::Telemetry;
use decisive::serve::{Daemon, ServeOptions};

/// The pathological brown-out supply (see `data/brownout_threshold.bd`) —
/// small enough to iterate, hard enough that the injection campaign does
/// genuine recovery work on the cold run.
const MODEL: &str = "\
diagram brownout-threshold-supply
block DC1 dc-voltage-source volts=5
block R1 resistor ohms=0.5
block CS1 current-sensor
block MC1 mcu on_amps=3;brownout_volts=2.75;fault_amps=0.1
block GND1 ground
connect DC1.0 -> R1.0
connect R1.1 -> CS1.0
connect CS1.1 -> MC1.0
connect MC1.1 -> GND1.0
connect DC1.1 -> GND1.0
";

/// Warm repetitions; the minimum filters scheduler and allocator noise.
const ITERS: usize = 20;

fn request(session: &str, path: &std::path::Path) -> String {
    format!(r#"{{"op":"pipeline","session":"{session}","path":"{}"}}"#, path.display())
}

fn timed_ok(daemon: &Daemon, line: &str) -> f64 {
    let t = Instant::now();
    let response = daemon.handle_line(line).expect("request answered");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(response.contains(r#""ok":true"#), "bench request failed: {response}");
    ms
}

fn main() {
    // The bench's cwd depends on the runner, so the model goes to a
    // self-owned scratch path instead of relying on `data/`.
    let dir = std::env::temp_dir().join(format!("decisive-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let model = dir.join("brownout.bd");
    std::fs::write(&model, MODEL).expect("model written");

    let daemon = Daemon::new(ServeOptions::default(), Telemetry::noop()).expect("daemon builds");

    let cold_ms = timed_ok(&daemon, &request("bench", &model));

    let mut warm_ms = f64::INFINITY;
    for _ in 0..ITERS {
        warm_ms = warm_ms.min(timed_ok(&daemon, &request("bench", &model)));
    }

    // Fresh session every request: served from the shared store alone.
    let mut shared_ms = f64::INFINITY;
    for i in 0..ITERS {
        shared_ms = shared_ms.min(timed_ok(&daemon, &request(&format!("s{i}"), &model)));
    }
    let shared_hits = daemon.shared().shared_hits();

    let summary = Value::record([
        ("model", Value::from("brownout-threshold-supply")),
        ("cold_ms", Value::Real(cold_ms)),
        ("warm_ms", Value::Real(warm_ms)),
        ("shared_session_ms", Value::Real(shared_ms)),
        ("warm_requests_per_sec", Value::Real(1e3 / warm_ms)),
        ("shared_requests_per_sec", Value::Real(1e3 / shared_ms)),
        ("speedup_cold_over_warm", Value::Real(cold_ms / warm_ms)),
        ("shared_hits", Value::Int(shared_hits as i64)),
        ("warm_ok", Value::Bool(warm_ms < cold_ms && shared_hits > 0)),
    ]);
    println!("BENCH_serve {}", json::to_string(&summary));
    std::fs::remove_dir_all(&dir).ok();
}
