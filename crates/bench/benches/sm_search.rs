//! Bench (ablation): the three safety-mechanism search strategies —
//! exhaustive enumeration, greedy, and the dynamic-programming Pareto
//! front — on the case study and on System B.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use decisive::core::fmea::graph::{self, GraphConfig};
use decisive::core::fmea::injection::{self, InjectionConfig};
use decisive::core::mechanism::{search, MechanismCatalog};
use decisive::core::{case_study, reliability::ReliabilityDb};
use decisive::workload::systems::system_b;

fn bench_search(c: &mut Criterion) {
    // Case study: tiny space, all strategies apply.
    let (model, top) = case_study::ssam_model();
    let table = graph::run(&model, top, &GraphConfig::default()).expect("fmea");
    let catalog = MechanismCatalog::paper_table_iii();
    let _ = ReliabilityDb::paper_table_ii();

    let mut group = c.benchmark_group("search/case_study");
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            search::exhaustive(black_box(&table), black_box(&catalog), 0.90).expect("small space")
        })
    });
    group.bench_function("greedy", |b| {
        b.iter(|| search::greedy(black_box(&table), black_box(&catalog), 0.90))
    });
    group.bench_function("pareto_dp", |b| {
        b.iter(|| search::pareto_front(black_box(&table), black_box(&catalog)).expect("dp"))
    });
    group.finish();

    // System B: combinatorial space — exhaustive is infeasible by design;
    // greedy and the DP front handle it.
    let subject = system_b();
    let table_b =
        injection::run(&subject.diagram, &subject.reliability, &InjectionConfig::default())
            .expect("fmea");
    let mut group = c.benchmark_group("search/system_b");
    for (label, target) in [("greedy@0.90", 0.90), ("greedy@0.97", 0.97)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &target, |b, &t| {
            b.iter(|| search::greedy(black_box(&table_b), black_box(&subject.catalog), t))
        });
    }
    group.bench_function("pareto_dp", |b| {
        b.iter(|| {
            search::pareto_front(black_box(&table_b), black_box(&subject.catalog)).expect("dp")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
