//! Bench: the sparse MNA kernel with factorization reuse versus the dense
//! oracle, at System-B scale (ISSUE 9).
//!
//! The workload generator's System B carries the paper's published 230
//! *design* elements, but most are scope taps and software blocks with no
//! electrical footprint — its MNA matrix is tiny. This bench builds a
//! System-B-sized subject whose 230 blocks are **all electrical**: 32
//! power rails (source → diode → inductor → sensor → MCU load, with a
//! filter capacitor) cross-tied and shunted by resistors, lowering to an
//! MNA system of a couple hundred unknowns — the matrix size the sparse
//! kernel exists for.
//!
//! Three measurements, both kernels:
//!
//! * the healthy DC operating point (min over repeats),
//! * the full single-fault injection campaign, on one worker so the
//!   comparison is pure solver cost, with the same iteration budget for
//!   both kernels (an uneven cap would bias the wall-clock), and
//! * the marginal per-injection cost of the sparse campaign.
//!
//! It prints one `BENCH_solver {...}` JSON line; `solver_ok` (the sparse
//! campaign beats the dense one by the acceptance criterion's ≥5×, with
//! identical verdicts) is the CI gate, and the checked-in
//! `BENCH_solver.json` holds the first recorded baseline.
//!
//! Plain `fn main` (`harness = false`), same as the other benches:
//! minima over repeated runs are stable enough without Criterion.

use std::time::Instant;

use decisive::blocks::{to_circuit, BlockDiagram, BlockId, BlockKind, Port};
use decisive::circuit::{SolverKernel, SolverOptions};
use decisive::core::campaign::CampaignConfig;
use decisive::core::fmea::injection::{self, InjectionConfig};
use decisive::core::reliability::ReliabilityDb;
use decisive::federation::{json, Value};

/// Power rails in the subject; 32 rails + ties + shunts = 230 blocks.
const RAILS: usize = 32;
/// Healthy-solve repetitions; the minimum filters allocator/cache noise.
const HEALTHY_ITERS: usize = 5;
/// Campaign repetitions per kernel (each campaign is hundreds of solves,
/// so the per-case noise is already averaged out).
const CAMPAIGN_ITERS: usize = 2;

/// One power rail, same mix as the workload generator's: `source → diode
/// → inductor → sensor → MCU load`, filter capacitor across the source.
/// Returns the MCU block (the rail's output net).
fn add_rail(d: &mut BlockDiagram, prefix: &str, gnd: BlockId) -> BlockId {
    let ok = "static bench wiring";
    let dc = d.add_block(format!("{prefix}_DC"), BlockKind::DcVoltageSource { volts: 5.0 });
    let diode = d.add_block(format!("{prefix}_D"), BlockKind::Diode);
    let ind = d.add_block(format!("{prefix}_L"), BlockKind::Inductor { henries: 1e-3 });
    let cap = d.add_block(format!("{prefix}_C"), BlockKind::Capacitor { farads: 10e-6 });
    let cs = d.add_block(format!("{prefix}_CS"), BlockKind::CurrentSensor);
    let mc = d.add_block(
        format!("{prefix}_MC"),
        BlockKind::Mcu { on_amps: 0.1, brownout_volts: 3.0, fault_amps: 0.02 },
    );
    d.connect(dc, Port(0), diode, Port(0)).expect(ok);
    d.connect(diode, Port(1), ind, Port(0)).expect(ok);
    d.connect(ind, Port(1), cs, Port(0)).expect(ok);
    d.connect(cs, Port(1), mc, Port(0)).expect(ok);
    d.connect(mc, Port(1), gnd, Port(0)).expect(ok);
    d.connect(dc, Port(1), gnd, Port(0)).expect(ok);
    d.connect(cap, Port(0), dc, Port(0)).expect(ok);
    d.connect(cap, Port(1), gnd, Port(0)).expect(ok);
    mc
}

/// The all-electrical System-B-scale subject: 230 blocks, every one with
/// an MNA stamp. Cross-ties between adjacent rail outputs couple the
/// rails (off-tridiagonal structure → LU fill-in), shunt resistors on the
/// first rails bring the block count to exactly 230.
fn electrical_system_b() -> BlockDiagram {
    let ok = "static bench wiring";
    let mut d = BlockDiagram::new("System B (electrical)");
    let gnd = d.add_block("GND", BlockKind::Ground);
    let mcs: Vec<BlockId> = (0..RAILS).map(|i| add_rail(&mut d, &format!("R{i}"), gnd)).collect();
    for i in 0..RAILS - 1 {
        let tie = d.add_block(format!("TIE{i}"), BlockKind::Resistor { ohms: 10.0 });
        d.connect(tie, Port(0), mcs[i], Port(0)).expect(ok);
        d.connect(tie, Port(1), mcs[i + 1], Port(0)).expect(ok);
    }
    let mut shunts = 0;
    while d.blocks().count() < 230 {
        let shunt = d.add_block(format!("SH{shunts}"), BlockKind::Resistor { ohms: 470.0 });
        d.connect(shunt, Port(0), mcs[shunts], Port(0)).expect(ok);
        d.connect(shunt, Port(1), gnd, Port(0)).expect(ok);
        shunts += 1;
    }
    d
}

/// Reliability data covering every electrical block type of the subject.
fn reliability() -> ReliabilityDb {
    ReliabilityDb::from_csv_str(
        "Component,FIT,Failure_Mode,Distribution\n\
         Diode,10,Open,0.3\n\
         Diode,10,Short,0.7\n\
         Capacitor,2,Open,0.3\n\
         Capacitor,2,Short,0.7\n\
         Inductor,15,Open,0.3\n\
         Inductor,15,Short,0.7\n\
         Resistor,5,Open,0.3\n\
         Resistor,5,Short,0.7\n\
         MC,300,RAM Failure,1.0\n",
    )
    .expect("static reliability model parses")
}

fn config(kernel: SolverKernel) -> InjectionConfig {
    InjectionConfig {
        parallelism: 1,
        campaign: CampaignConfig {
            solver: SolverOptions { kernel, ..SolverOptions::default() },
            ..CampaignConfig::default()
        },
        ..InjectionConfig::default()
    }
}

fn main() {
    let diagram = electrical_system_b();
    let db = reliability();
    let lowered = to_circuit(&diagram).expect("subject lowers");
    let nodes = lowered.circuit.node_count();

    // Healthy operating point, each kernel.
    let mut healthy_ms = [f64::INFINITY; 2];
    for (slot, kernel) in [(0, SolverKernel::Sparse), (1, SolverKernel::Dense)] {
        let opts = SolverOptions { kernel, ..SolverOptions::default() };
        for _ in 0..HEALTHY_ITERS {
            let t = Instant::now();
            lowered.circuit.dc_with_options(&opts).expect("healthy subject solves");
            healthy_ms[slot] = healthy_ms[slot].min(t.elapsed().as_secs_f64() * 1e3);
        }
    }

    // Full single-fault campaign, each kernel. Verdict identity is part
    // of the gate: a fast kernel that flips a safety classification is a
    // regression, not a speedup.
    let mut campaign_s = [f64::INFINITY; 2];
    let mut outcomes = Vec::new();
    for (slot, kernel) in [(0, SolverKernel::Sparse), (1, SolverKernel::Dense)] {
        let cfg = config(kernel);
        let mut last = None;
        for _ in 0..CAMPAIGN_ITERS {
            let t = Instant::now();
            let (table, health) =
                injection::run_supervised(&diagram, &db, &cfg).expect("campaign completes");
            campaign_s[slot] = campaign_s[slot].min(t.elapsed().as_secs_f64());
            last = Some((table, health));
        }
        outcomes.push(last.expect("at least one campaign ran"));
    }
    let (sparse_table, sparse_health) = &outcomes[0];
    let (dense_table, dense_health) = &outcomes[1];
    let verdicts_identical = sparse_table.disagreement(dense_table) == 0.0
        && sparse_health.converged == dense_health.converged
        && sparse_health.recovered == dense_health.recovered
        && sparse_health.unsolvable == dense_health.unsolvable;

    let cases = sparse_health.total;
    let marginal_ms = campaign_s[0] * 1e3 / cases.max(1) as f64;
    let speedup = campaign_s[1] / campaign_s[0];
    let solver_ok = speedup >= 5.0 && verdicts_identical;

    let summary = Value::record([
        ("blocks", Value::Int(diagram.blocks().count() as i64)),
        ("nodes", Value::Int(nodes as i64)),
        ("cases", Value::Int(cases as i64)),
        ("healthy_sparse_ms", Value::Real(healthy_ms[0])),
        ("healthy_dense_ms", Value::Real(healthy_ms[1])),
        ("campaign_sparse_s", Value::Real(campaign_s[0])),
        ("campaign_dense_s", Value::Real(campaign_s[1])),
        ("marginal_injection_ms", Value::Real(marginal_ms)),
        ("speedup_sparse_over_dense", Value::Real(speedup)),
        ("verdicts_identical", Value::Bool(verdicts_identical)),
        ("solver_ok", Value::Bool(solver_ok)),
    ]);
    println!("BENCH_solver {}", json::to_string(&summary));
}
