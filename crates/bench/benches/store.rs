//! Bench: warm start through the segmented store versus the wholesale
//! v3 JSON load (ISSUE 7).
//!
//! The store's promise is O(touched-artifacts) warm start: opening is
//! one checksummed index scan (no JSON parsing of values), and values
//! decode lazily on first hit. The old path parsed and validated the
//! entire `cache.json` before the first artefact could be served. This
//! harness builds the same 10k-artifact corpus in both formats and
//! measures, for each, the time from cold process to "the first hundred
//! artefacts are served".
//!
//! It prints one `BENCH_store {...}` JSON line; `warm_ok` (the store
//! beats the JSON load by the acceptance criterion's ≥5× at ≥10k
//! artifacts, with every entry intact) is the CI gate, and the
//! checked-in `BENCH_store.json` holds the first recorded baseline.
//!
//! Plain `fn main` (`harness = false`), same as the other benches:
//! minima over repeated runs are stable enough without Criterion.

use std::time::Instant;

use decisive::engine::{ArtifactKind, CacheStore, Fingerprint, SegmentStore, StoreOptions};
use decisive::federation::{json, Value};
use decisive::obs::Telemetry;

/// Corpus size — the acceptance criterion's floor.
const ARTIFACTS: u64 = 10_000;
/// Artefacts a warm run actually touches before its first result.
const TOUCHED: u64 = 100;
/// Repetitions; the minimum filters filesystem-cache and allocator noise.
const ITERS: usize = 5;

/// A plausible FMEA-row-shaped payload: eight floats and a label.
fn row(i: u64) -> Vec<f64> {
    (0..8).map(|j| (i * 8 + j) as f64 * 0.125).collect()
}

fn key(i: u64) -> Fingerprint {
    Fingerprint(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn main() {
    let dir = std::env::temp_dir().join(format!("decisive-bench-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let json_dir = dir.join("json");
    let store_dir = dir.join("store");

    // One corpus, persisted both ways.
    let mut cache = CacheStore::new();
    for i in 0..ARTIFACTS {
        cache.put(ArtifactKind::GraphRow, key(i), "bench", &row(i)).expect("seed put");
    }
    cache.save(&json_dir).expect("json save");
    {
        let (log, _) = SegmentStore::open(&store_dir, StoreOptions::default(), Telemetry::noop())
            .expect("store open");
        let imported = log.import(&cache).expect("store import");
        assert_eq!(imported as u64, ARTIFACTS);
    }

    // Old path: parse the whole cache.json, then read TOUCHED entries.
    let mut json_ms = f64::INFINITY;
    for _ in 0..ITERS {
        let t = Instant::now();
        let loaded = CacheStore::load(&json_dir).expect("json load");
        for i in 0..TOUCHED {
            assert!(
                loaded.get::<Vec<f64>>(ArtifactKind::GraphRow, key(i)).is_some(),
                "json path serves artefact {i}"
            );
        }
        json_ms = json_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(loaded.len() as u64, ARTIFACTS);
    }

    // New path: index scan, then decode only the TOUCHED entries.
    let mut store_ms = f64::INFINITY;
    let mut recovered = 0usize;
    for _ in 0..ITERS {
        let t = Instant::now();
        let (log, recovery) =
            SegmentStore::open(&store_dir, StoreOptions::default(), Telemetry::noop())
                .expect("store warm open");
        assert!(recovery.is_clean(), "clean corpus recovers clean");
        for i in 0..TOUCHED {
            assert!(
                log.get(ArtifactKind::GraphRow, key(i)).is_some(),
                "store path serves artefact {i}"
            );
        }
        store_ms = store_ms.min(t.elapsed().as_secs_f64() * 1e3);
        recovered = log.len();
    }
    assert_eq!(recovered as u64, ARTIFACTS, "no committed artefact lost");

    let speedup = json_ms / store_ms;
    let summary = Value::record([
        ("artifacts", Value::Int(ARTIFACTS as i64)),
        ("touched", Value::Int(TOUCHED as i64)),
        ("json_load_ms", Value::Real(json_ms)),
        ("store_open_ms", Value::Real(store_ms)),
        ("speedup_json_over_store", Value::Real(speedup)),
        ("recovered", Value::Int(recovered as i64)),
        ("warm_ok", Value::Bool(speedup >= 5.0 && recovered as u64 == ARTIFACTS)),
    ]);
    println!("BENCH_store {}", json::to_string(&summary));
    std::fs::remove_dir_all(&dir).ok();
}
