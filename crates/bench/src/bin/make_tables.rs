//! `make_tables` — regenerates every table and figure of the DECISIVE paper
//! (DAC 2022) from this reproduction.
//!
//! ```text
//! cargo run -p decisive-bench --release --bin make_tables            # everything
//! cargo run -p decisive-bench --release --bin make_tables -- --table 4
//! cargo run -p decisive-bench --release --bin make_tables -- --rq 3
//! cargo run -p decisive-bench --release --bin make_tables -- --figure 1
//! ```

use std::sync::Arc;
use std::time::Instant;

use decisive::blocks::{coverage, gallery, to_ssam};
use decisive::core::fmea::graph::{self, GraphConfig};
use decisive::core::fmea::injection::{self, InjectionConfig};

use decisive::core::mechanism::{DeployedMechanism, Deployment, MechanismCatalog};
use decisive::core::process::{DecisiveProcess, DesignModel, SystemDefinition};
use decisive::core::reliability::ReliabilityDb;
use decisive::core::{case_study, metrics};
use decisive::federation::store::{scan_count, EagerStore, IndexedStore, ModelStore};
use decisive::federation::Value;
use decisive::ssam::architecture::Coverage;
use decisive::workload::analyst::{
    automated_design_run, automated_fmea, manual_design_run, manual_fmea, AnalystProfile,
};
use decisive::workload::sets::SCALABILITY_SETS;
use decisive::workload::systems::{system_a, system_b};
use decisive_bench::render_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |what: &str, n: &str| -> bool {
        args.is_empty()
            || args == ["--all"]
            || args.windows(2).any(|w| w[0] == format!("--{what}") && w[1] == n)
    };
    if run("table", "1") {
        table_1();
    }
    if run("table", "2") {
        table_2();
    }
    if run("table", "3") {
        table_3();
    }
    if run("table", "4") {
        table_4();
    }
    if run("table", "5") || run("rq", "3") {
        table_5();
    }
    if run("table", "6") || run("rq", "4") {
        table_6();
    }
    if run("rq", "1") {
        rq_1();
    }
    if run("rq", "2") {
        rq_2();
    }
    if run("figure", "1") {
        figure_1();
    }
    if run("figure", "2") {
        figure_2();
    }
    if run("figure", "7") {
        figure_7();
    }
    if run("figure", "10") {
        figure_10();
    }
    if run("figure", "11") {
        figure_11();
    }
}

/// Table I: FMEDA on a Phase Locked Loop.
fn table_1() {
    println!("\n=== Table I: FMEDA on Phase Locked Loop (PLL) ===");
    // The Table I PLL as a real SSAM model: modes, effect-based impact
    // classification and mechanisms all flow through the graph engine.
    let (model, top) = case_study::pll_model();
    let deployment = Deployment::from_ssam(&model);
    let fmeda = graph::run(&model, top, &GraphConfig::default())
        .expect("graph FMEA")
        .with_deployment(&deployment);
    let rendered: Vec<Vec<String>> = fmeda
        .rows
        .iter()
        .map(|r| {
            vec![
                "safety-critical".into(),
                r.failure_mode.clone(),
                r.impact.map(|i| i.to_string()).unwrap_or_default(),
                format!("{:.1}%", r.distribution * 100.0),
                r.mechanism.clone().unwrap_or_else(|| "N/A".into()),
                format!("{:.0}%", r.coverage.value() * 100.0),
            ]
        })
        .collect();
    print!("{}", render_table(&["Char.", "FM", "Impact", "Dist", "SMs", "Cov."], &rendered));
    println!(
        "LFM {:.1}% (uncovered IVF share) — paper: lower 40.1% wd 70% | higher 28.7% N/A | jitter 31.2% lockstep 99%",
        fmeda.lfm() * 100.0
    );
}

/// Table II: the example component reliability model.
fn table_2() {
    println!("\n=== Table II: Example component reliability model ===");
    let db = ReliabilityDb::paper_table_ii();
    let value = db.to_value();
    let rows: Vec<Vec<String>> = value
        .as_list()
        .unwrap_or(&[])
        .iter()
        .map(|r| {
            vec![
                r.get("Component").and_then(Value::as_str).unwrap_or("").to_owned(),
                format!("{}", r.get("FIT").and_then(Value::as_f64).unwrap_or(0.0)),
                r.get("Failure_Mode").and_then(Value::as_str).unwrap_or("").to_owned(),
                format!(
                    "{:.0}%",
                    r.get("Distribution").and_then(Value::as_f64).unwrap_or(0.0) * 100.0
                ),
            ]
        })
        .collect();
    print!("{}", render_table(&["Component", "FIT", "Failure_Mode", "Distribution"], &rows));
    // Persist the CSV artefact the case study imports (DECISIVE Step 3).
    if std::fs::create_dir_all("data").is_ok() {
        let _ =
            std::fs::write("data/reliability.csv", decisive::federation::csv::to_string(&value));
        println!("(written to data/reliability.csv)");
    }
}

/// Table III: the example safety mechanism model.
fn table_3() {
    println!("\n=== Table III: Example safety mechanism model ===");
    let catalog = MechanismCatalog::paper_table_iii();
    let rows: Vec<Vec<String>> = catalog
        .entries()
        .iter()
        .map(|e| {
            vec![
                e.component_type.clone(),
                e.failure_mode.clone(),
                e.name.clone(),
                format!("{:.0}%", e.coverage.value() * 100.0),
                format!("{:.1}", e.cost_hours),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["Component", "Failure_Mode", "Safety_Mechanism", "Cov.", "Cost(hrs)"],
            &rows
        )
    );
}

/// Table IV: the generated FMEDA for the power-supply case study.
fn table_4() {
    println!("\n=== Table IV: Generated FMEDA (power-supply case study) ===");
    let (diagram, _) = gallery::sensor_power_supply();
    let table =
        injection::run(&diagram, &ReliabilityDb::paper_table_ii(), &InjectionConfig::default())
            .expect("injection FMEA");
    println!("SPFM before refinement: {:5.2}%  (paper: 5.38%)", table.spfm() * 100.0);
    let mut deployment = Deployment::new();
    deployment.deploy(
        "MC1",
        "RAM Failure",
        DeployedMechanism { name: "ECC".into(), coverage: Coverage::new(0.99), cost_hours: 2.0 },
    );
    let fmeda = table.with_deployment(&deployment);
    let rows: Vec<Vec<String>> = fmeda
        .rows
        .iter()
        .filter(|r| ["D1", "L1", "MC1"].contains(&r.component.as_str()))
        .map(|r| {
            vec![
                r.component.clone(),
                format!("{}", r.fit.value()),
                if r.safety_related { "Yes".into() } else { "No".into() },
                r.failure_mode.clone(),
                format!("{:.0}%", r.distribution * 100.0),
                r.mechanism.clone().unwrap_or_else(|| "No SM".into()),
                if r.coverage.value() > 0.0 {
                    format!("{:.0}%", r.coverage.value() * 100.0)
                } else {
                    String::new()
                },
                if r.safety_related {
                    format!("{} FIT", (r.residual_fit().value() * 1e9).round() / 1e9)
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "Component",
                "FIT",
                "Safety_Related",
                "Failure_Mode",
                "Distribution",
                "Safety_Mechanism",
                "SM_Coverage",
                "Single_Point_Failure_Rate",
            ],
            &rows
        )
    );
    println!(
        "SPFM after ECC: {:5.2}% -> {}  (paper: 96.77% -> ASIL-B)",
        fmeda.spfm() * 100.0,
        metrics::achieved_asil(fmeda.spfm())
    );
}

/// Table V: the efficiency experiment (manual vs DECISIVE-with-SAME).
fn table_5() {
    println!("\n=== Table V: Efficiency experiment (RQ3) ===");
    let a = AnalystProfile::participant_a();
    let b = AnalystProfile::participant_b();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |system: &str, run: &decisive::workload::analyst::DesignRun| {
        rows.push(vec![
            system.into(),
            format!(
                "{}({})",
                if run.analyst.ends_with('A') { "A" } else { "B" },
                if run.automated { "Auto." } else { "Man." }
            ),
            format!("{:.0}", run.minutes),
            format!("{}", run.iterations),
        ]);
    };
    let sys_a = system_a();
    let sys_b = system_b();
    // Setting 1: A manual, B automated.
    push("A", &manual_design_run(&a, &sys_a, 0.90).expect("run"));
    push("A", &automated_design_run(&b, &sys_a, 0.90).expect("run"));
    push("B", &manual_design_run(&a, &sys_b, 0.90).expect("run"));
    push("B", &automated_design_run(&b, &sys_b, 0.90).expect("run"));
    // Setting 2: roles swapped.
    push("A", &automated_design_run(&a, &sys_a, 0.90).expect("run"));
    push("A", &manual_design_run(&b, &sys_a, 0.90).expect("run"));
    push("B", &automated_design_run(&a, &sys_b, 0.90).expect("run"));
    push("B", &manual_design_run(&b, &sys_b, 0.90).expect("run"));
    print!(
        "{}",
        render_table(&["System", "Participant", "Time spent (minutes)", "No. Iterations"], &rows)
    );
    println!("paper: A 505/62, B 1143/105 (setting 1); A 57/497, B 110/1166 (setting 2) — ~10x");
}

/// Table VI: the scalability experiment.
fn table_6() {
    println!("\n=== Table VI: Scalability (RQ4) ===");
    let heap = 4u64 << 30;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for set in &SCALABILITY_SETS {
        let start = Instant::now();
        let outcome = EagerStore::load(&set.source(), heap).map(|store| {
            scan_count(&store, |v| v.get("safety_related") == Some(&Value::Bool(true)))
                .expect("scan succeeds")
        });
        let cell = match outcome {
            Ok(_) => format!("{:.2}", start.elapsed().as_secs_f64()),
            Err(_) => "N/A (memory overflow)".to_owned(),
        };
        rows.push(vec![set.name.into(), set.elements.to_string(), cell]);
    }
    print!(
        "{}",
        render_table(&["Model", "No. of Model Elements", "Time taken for Evaluation(sec)"], &rows)
    );
    println!("paper: 0.1 / 0.2 / 0.8 / 4.1 / 48.3 / N/A (memory overflow)");
    // The scalable-store remedy the paper points to (Hawk-style indexing):
    let set5 = &SCALABILITY_SETS[5];
    let indexed = IndexedStore::new(Arc::new(set5.source()), 4_096, 8);
    let start = Instant::now();
    let mut hits = 0u64;
    for i in (0..set5.elements).step_by((set5.elements / 10_000) as usize) {
        if indexed.get(i).expect("indexed access").get("safety_related") == Some(&Value::Bool(true))
        {
            hits += 1;
        }
    }
    println!(
        "indexed store samples 10,000 of Set5's {} elements in {:.2}s ({} safety-related) within {} MiB",
        set5.elements,
        start.elapsed().as_secs_f64(),
        hits,
        indexed.resident_bytes() >> 20
    );
}

/// RQ1: correctness of the automated FMEA against the (simulated) manual one.
fn rq_1() {
    println!("\n=== RQ1: Correctness ===");
    for (subject, profile) in [
        (system_a(), AnalystProfile::participant_a()),
        (system_b(), AnalystProfile::participant_b()),
    ] {
        let automated = automated_fmea(&subject).expect("automated FMEA");
        let manual = manual_fmea(&profile, &automated);
        let difference = automated.disagreement(&manual) * 100.0;
        let sr_match = automated.safety_related_components() == manual.safety_related_components();
        println!(
            "{}: manual-vs-automated difference {:.2}% — safety-related components {} (paper: {}%)",
            subject.name,
            difference,
            if sr_match { "all identified correctly" } else { "MISMATCH" },
            if subject.name.ends_with('A') { "1.5" } else { "2.67" },
        );
    }
}

/// RQ2: block coverage of the analysis pipeline.
fn rq_2() {
    println!("\n=== RQ2: Coverage ===");
    for subject in [system_a(), system_b()] {
        let report = coverage::census(&subject.diagram);
        println!(
            "{}: {} analysable blocks — {} native, {} via the annotated-subsystem workaround -> {:.0}% coverage",
            subject.name,
            report.analysable,
            report.native,
            report.workaround,
            report.coverage() * 100.0
        );
    }
    println!("paper: 100% of both subjects covered with the workaround solution");
}

/// Figure 1: the DECISIVE process artefact trace.
fn figure_1() {
    println!("\n=== Figure 1: DECISIVE stages and key artefacts ===");
    let (diagram, _) = gallery::sensor_power_supply();
    let hazard_log = case_study::hazard_log();
    println!(
        "Step 1  system definition + HARA -> hazard log ({} event(s))",
        hazard_log.events().len()
    );
    println!("Step 2  system architectural design ({} elements)", diagram.element_count());
    let mut process = DecisiveProcess::new(
        SystemDefinition::new("power-supply", "sensor supply"),
        hazard_log,
        DesignModel::Diagram(diagram),
    )
    .with_reliability(ReliabilityDb::paper_table_ii())
    .with_catalog(MechanismCatalog::paper_table_iii());
    println!("Step 3  reliability data aggregated (Table II)");
    let concept = process.run_to_target(10).expect("converges");
    for record in &concept.iterations {
        println!(
            "Step 4  iteration {}: SPFM {:.2}% ({}), {} mechanism(s), {:.1} h",
            record.number,
            record.spfm * 100.0,
            record.achieved,
            record.mechanisms_deployed,
            record.deployment_cost
        );
    }
    println!(
        "Step 5  safety concept: {} allocation(s), final SPFM {:.2}%",
        concept.allocations.len(),
        concept.spfm * 100.0
    );
}

/// Figures 2–6: the metamodel census.
fn figure_2() {
    println!("\n=== Figures 2-6: SSAM metamodel inventory (case-study model) ===");
    let (model, _) = case_study::ssam_model();
    println!("{}", decisive::ssam::render::metamodel_inventory(&model));
}

/// Figures 7–9/12: the editors, substituted by renderers.
fn figure_7() {
    println!("\n=== Figures 7-9/12: model views (editor substitute) ===");
    let (model, top) = case_study::ssam_model();
    println!("{}", decisive::ssam::render::ascii_tree(&model));
    println!("{}", decisive::ssam::render::dot_graph(&model, top));
}

/// Figure 10: the two working-process paths.
fn figure_10() {
    println!("\n=== Figure 10: SAME working process ===");
    let (diagram, _) = gallery::sensor_power_supply();
    let db = ReliabilityDb::paper_table_ii();
    let injected = injection::run(&diagram, &db, &InjectionConfig::default()).expect("injection");
    let (model, top) = case_study::ssam_model();
    let graphed = graph::run(&model, top, &GraphConfig::default()).expect("graph");
    println!(
        "block-diagram path (fault injection): {} rows, SPFM {:.2}%",
        injected.rows.len(),
        injected.spfm() * 100.0
    );
    println!(
        "SSAM path (Algorithm 1):             {} rows, SPFM {:.2}%",
        graphed.rows.len(),
        graphed.spfm() * 100.0
    );
    println!(
        "row-level disagreement between the paths: {:.1}%",
        injected.disagreement(&graphed) * 100.0
    );
    let transformed = to_ssam(&diagram);
    println!(
        "transformation: {} blocks -> {} SSAM components (lossless: {})",
        diagram.block_count(),
        transformed.components.len() - 1,
        decisive::blocks::from_ssam(&transformed).map(|d| d == diagram).unwrap_or(false)
    );
}

/// Figure 11: the case-study design itself.
fn figure_11() {
    println!("\n=== Figure 11: sensor power-supply design ===");
    let (diagram, _) = gallery::sensor_power_supply();
    for (_, block) in diagram.blocks() {
        println!("  {:8} {}", block.name, block.kind.tag());
    }
    println!("  {} connections", diagram.connections().len());
}
