//! Shared helpers for the DECISIVE benchmark harness.

#![warn(missing_docs)]

/// Renders an ASCII table with padded columns.
///
/// # Examples
///
/// ```
/// let text = decisive_bench::render_table(
///     &["Component", "FIT"],
///     &[vec!["D1".into(), "10".into()], vec!["MC1".into(), "300".into()]],
/// );
/// assert!(text.contains("| D1"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let rule: String = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let fmt_row = |cells: &[String]| -> String {
        let mut s = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            s.push_str(&format!(" {cell:<w$} |"));
        }
        s
    };
    let mut out = String::new();
    out.push_str(&rule);
    out.push('\n');
    out.push_str(&fmt_row(&headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pads_columns() {
        let t = render_table(&["a", "long"], &[vec!["xxxx".into(), "y".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("| a    | long |"));
        assert!(lines[3].contains("| xxxx | y    |"));
    }

    #[test]
    fn handles_short_rows() {
        let t = render_table(&["a", "b"], &[vec!["only".into()]]);
        assert!(t.contains("| only |"));
    }
}
