//! Block types for block-diagram system models — the Simulink/Simscape
//! authoring layer of this reproduction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle to a block inside a [`BlockDiagram`](crate::BlockDiagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// Raw index in insertion order.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A port of a block, numbered from 0.
///
/// Two-terminal electrical blocks use port 0 as `+` and port 1 as `-`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Port(pub u8);

/// The kind (and parameters) of a block.
///
/// Mirrors the subset of Simulink's Simscape Foundation electrical library
/// the paper analyses, plus the simulation-infrastructure blocks present in
/// Fig. 11 (`SolverConfig`, `Scope`, `Workspace`) and the *annotated
/// subsystem* workaround for parts outside the library (paper §VI-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BlockKind {
    /// DC voltage source (Fig. 11 `DC1`).
    DcVoltageSource {
        /// Source voltage in volts.
        volts: f64,
    },
    /// DC current source.
    DcCurrentSource {
        /// Source current in amperes.
        amps: f64,
    },
    /// Resistor.
    Resistor {
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Capacitor (Fig. 11 `C1`, `C2`).
    Capacitor {
        /// Capacitance in farads.
        farads: f64,
    },
    /// Inductor (Fig. 11 `L1`).
    Inductor {
        /// Inductance in henries.
        henries: f64,
    },
    /// Diode (Fig. 11 `D1`).
    Diode,
    /// Ideal switch.
    Switch {
        /// `true` if conducting.
        closed: bool,
    },
    /// Ground reference (Fig. 11 `GND1`). One port.
    Ground,
    /// Series current sensor (Fig. 11 `CS1`).
    CurrentSensor,
    /// Parallel voltage sensor.
    VoltageSensor,
    /// Microcontroller — an annotated subsystem behaving as a brown-out
    /// load electrically (Fig. 11 `MC1`).
    Mcu {
        /// Operating supply current in amperes.
        on_amps: f64,
        /// Brown-out threshold in volts.
        brownout_volts: f64,
        /// Supply current when functionally faulted (e.g. RAM failure).
        fault_amps: f64,
    },
    /// A software component — transformable to SSAM but not electrical.
    Software,
    /// Solver configuration (Fig. 11 `S1`) — simulation infrastructure.
    SolverConfig,
    /// Signal scope (Fig. 11 `Scope1`) — simulation infrastructure.
    Scope,
    /// Workspace writer (Fig. 11 `Out1`) — simulation infrastructure.
    Workspace,
    /// An annotated subsystem outside the supported library: the paper's
    /// coverage workaround ("we create subsystems in Simulink and annotate
    /// them to be the desired elements").
    AnnotatedSubsystem {
        /// The annotation naming what the subsystem stands for.
        annotation: String,
    },
}

impl BlockKind {
    /// The reliability-model lookup key for this block kind
    /// (Table II `Component` column), when one applies.
    pub fn type_key(&self) -> Option<&str> {
        match self {
            BlockKind::DcVoltageSource { .. } => Some("DCSource"),
            BlockKind::DcCurrentSource { .. } => Some("CurrentSource"),
            BlockKind::Resistor { .. } => Some("Resistor"),
            BlockKind::Capacitor { .. } => Some("Capacitor"),
            BlockKind::Inductor { .. } => Some("Inductor"),
            BlockKind::Diode => Some("Diode"),
            BlockKind::Switch { .. } => Some("Switch"),
            BlockKind::CurrentSensor => Some("CurrentSensor"),
            BlockKind::VoltageSensor => Some("VoltageSensor"),
            BlockKind::Mcu { .. } => Some("MC"),
            BlockKind::Software => Some("Software"),
            BlockKind::AnnotatedSubsystem { annotation } => Some(annotation),
            BlockKind::Ground
            | BlockKind::SolverConfig
            | BlockKind::Scope
            | BlockKind::Workspace => None,
        }
    }

    /// `true` for blocks that exist only to configure or observe the
    /// simulation (Fig. 11: "All other blocks are related to simulation").
    pub fn is_simulation_infrastructure(&self) -> bool {
        matches!(self, BlockKind::SolverConfig | BlockKind::Scope | BlockKind::Workspace)
    }

    /// `true` for blocks that lower to circuit elements.
    pub fn is_electrical(&self) -> bool {
        matches!(
            self,
            BlockKind::DcVoltageSource { .. }
                | BlockKind::DcCurrentSource { .. }
                | BlockKind::Resistor { .. }
                | BlockKind::Capacitor { .. }
                | BlockKind::Inductor { .. }
                | BlockKind::Diode
                | BlockKind::Switch { .. }
                | BlockKind::Ground
                | BlockKind::CurrentSensor
                | BlockKind::VoltageSensor
                | BlockKind::Mcu { .. }
        )
    }

    /// Number of ports this block exposes.
    pub fn port_count(&self) -> u8 {
        match self {
            BlockKind::Ground => 1,
            BlockKind::SolverConfig => 1,
            BlockKind::Scope | BlockKind::Workspace => 1,
            BlockKind::Software => 2,
            _ => 2,
        }
    }

    /// A short tag for rendering and coverage reports.
    pub fn tag(&self) -> &'static str {
        match self {
            BlockKind::DcVoltageSource { .. } => "dc-voltage-source",
            BlockKind::DcCurrentSource { .. } => "dc-current-source",
            BlockKind::Resistor { .. } => "resistor",
            BlockKind::Capacitor { .. } => "capacitor",
            BlockKind::Inductor { .. } => "inductor",
            BlockKind::Diode => "diode",
            BlockKind::Switch { .. } => "switch",
            BlockKind::Ground => "ground",
            BlockKind::CurrentSensor => "current-sensor",
            BlockKind::VoltageSensor => "voltage-sensor",
            BlockKind::Mcu { .. } => "mcu",
            BlockKind::Software => "software",
            BlockKind::SolverConfig => "solver-config",
            BlockKind::Scope => "scope",
            BlockKind::Workspace => "workspace",
            BlockKind::AnnotatedSubsystem { .. } => "annotated-subsystem",
        }
    }
}

/// A named block instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Instance name, e.g. `"D1"`.
    pub name: String,
    /// Kind and parameters.
    pub kind: BlockKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_keys_match_reliability_table() {
        assert_eq!(BlockKind::Diode.type_key(), Some("Diode"));
        assert_eq!(BlockKind::Capacitor { farads: 1e-6 }.type_key(), Some("Capacitor"));
        assert_eq!(BlockKind::Inductor { henries: 1e-3 }.type_key(), Some("Inductor"));
        assert_eq!(
            BlockKind::Mcu { on_amps: 0.1, brownout_volts: 3.0, fault_amps: 0.02 }.type_key(),
            Some("MC")
        );
        assert_eq!(BlockKind::Ground.type_key(), None);
    }

    #[test]
    fn simulation_infrastructure_is_flagged() {
        assert!(BlockKind::SolverConfig.is_simulation_infrastructure());
        assert!(BlockKind::Scope.is_simulation_infrastructure());
        assert!(!BlockKind::Diode.is_simulation_infrastructure());
    }

    #[test]
    fn electrical_classification() {
        assert!(BlockKind::Diode.is_electrical());
        assert!(
            BlockKind::Mcu { on_amps: 0.1, brownout_volts: 3.0, fault_amps: 0.0 }.is_electrical()
        );
        assert!(!BlockKind::Software.is_electrical());
        assert!(!BlockKind::Scope.is_electrical());
    }

    #[test]
    fn port_counts() {
        assert_eq!(BlockKind::Ground.port_count(), 1);
        assert_eq!(BlockKind::Diode.port_count(), 2);
    }

    #[test]
    fn annotated_subsystem_carries_its_annotation() {
        let k = BlockKind::AnnotatedSubsystem { annotation: "PLL".to_owned() };
        assert_eq!(k.type_key(), Some("PLL"));
        assert_eq!(k.tag(), "annotated-subsystem");
    }
}
