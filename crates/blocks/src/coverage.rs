//! Block-type coverage census — the measurement behind the paper's RQ2
//! ("Does SAME cover all of Simulink's system design blocks?").

use std::collections::BTreeMap;

use crate::block::BlockKind;
use crate::diagram::BlockDiagram;

/// How a block kind is handled by the analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Support {
    /// Lowered natively to a simulator element.
    Native,
    /// Handled through the annotated-subsystem workaround (paper §VI-B).
    Workaround,
    /// Simulation infrastructure — present in the model but not analysed.
    Infrastructure,
}

/// The per-diagram coverage census.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Count of blocks per `(tag, support)` class.
    pub census: BTreeMap<(String, Support), usize>,
    /// Blocks needing analysis (everything but infrastructure).
    pub analysable: usize,
    /// Blocks covered natively.
    pub native: usize,
    /// Blocks covered via the workaround.
    pub workaround: usize,
}

impl CoverageReport {
    /// Fraction of analysable blocks covered (native + workaround); the
    /// paper reports 100% for its evaluation subjects.
    pub fn coverage(&self) -> f64 {
        if self.analysable == 0 {
            1.0
        } else {
            (self.native + self.workaround) as f64 / self.analysable as f64
        }
    }
}

/// Classifies a block kind.
pub fn support_of(kind: &BlockKind) -> Support {
    if kind.is_simulation_infrastructure() {
        Support::Infrastructure
    } else if matches!(
        kind,
        BlockKind::Mcu { .. } | BlockKind::AnnotatedSubsystem { .. } | BlockKind::Software
    ) {
        Support::Workaround
    } else {
        Support::Native
    }
}

/// Computes the coverage census of `diagram`.
///
/// # Examples
///
/// ```
/// use decisive_blocks::{BlockDiagram, BlockKind, coverage};
///
/// let mut d = BlockDiagram::new("c");
/// d.add_block("D1", BlockKind::Diode);
/// d.add_block("S1", BlockKind::SolverConfig);
/// let report = coverage::census(&d);
/// assert_eq!(report.coverage(), 1.0);
/// assert_eq!(report.analysable, 1);
/// ```
pub fn census(diagram: &BlockDiagram) -> CoverageReport {
    let mut report =
        CoverageReport { census: BTreeMap::new(), analysable: 0, native: 0, workaround: 0 };
    for (_, block) in diagram.blocks() {
        let support = support_of(&block.kind);
        *report.census.entry((block.kind.tag().to_owned(), support)).or_insert(0) += 1;
        match support {
            Support::Native => {
                report.native += 1;
                report.analysable += 1;
            }
            Support::Workaround => {
                report.workaround += 1;
                report.analysable += 1;
            }
            Support::Infrastructure => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_and_coverage() {
        let mut d = BlockDiagram::new("c");
        d.add_block("D1", BlockKind::Diode);
        d.add_block("D2", BlockKind::Diode);
        d.add_block("MC1", BlockKind::Mcu { on_amps: 0.1, brownout_volts: 3.0, fault_amps: 0.0 });
        d.add_block("S1", BlockKind::SolverConfig);
        let r = census(&d);
        assert_eq!(r.analysable, 3);
        assert_eq!(r.native, 2);
        assert_eq!(r.workaround, 1);
        assert_eq!(r.coverage(), 1.0);
        assert_eq!(r.census[&("diode".to_owned(), Support::Native)], 2);
    }

    #[test]
    fn empty_diagram_is_fully_covered() {
        let r = census(&BlockDiagram::new("empty"));
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn support_classification() {
        assert_eq!(support_of(&BlockKind::Resistor { ohms: 1.0 }), Support::Native);
        assert_eq!(support_of(&BlockKind::Software), Support::Workaround);
        assert_eq!(support_of(&BlockKind::Scope), Support::Infrastructure);
        assert_eq!(
            support_of(&BlockKind::AnnotatedSubsystem { annotation: "PLL".into() }),
            Support::Workaround
        );
    }
}
