//! The [`BlockDiagram`] container: blocks, connections and net extraction.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::block::{Block, BlockId, BlockKind, Port};

/// Errors produced while building or transforming block diagrams.
#[derive(Debug, Clone, PartialEq)]
pub enum DiagramError {
    /// A connection referenced a block the diagram does not contain.
    UnknownBlock {
        /// The offending block id.
        block: u32,
    },
    /// A connection referenced a port the block does not expose.
    UnknownPort {
        /// The block name.
        block: String,
        /// The offending port index.
        port: u8,
    },
    /// The diagram cannot be lowered to a circuit.
    NotLowerable {
        /// Why lowering failed.
        message: String,
    },
}

impl fmt::Display for DiagramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagramError::UnknownBlock { block } => write!(f, "unknown block b{block}"),
            DiagramError::UnknownPort { block, port } => {
                write!(f, "block `{block}` has no port {port}")
            }
            DiagramError::NotLowerable { message } => write!(f, "diagram not lowerable: {message}"),
        }
    }
}

impl std::error::Error for DiagramError {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, DiagramError>;

/// A directed connection between two block ports.
///
/// Electrically a connection just merges two nets; the direction records the
/// author's signal-flow intent, which the SSAM transformation preserves so
/// the graph-based FMEA can reason about paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Connection {
    /// Source block.
    pub from: BlockId,
    /// Source port.
    pub from_port: Port,
    /// Target block.
    pub to: BlockId,
    /// Target port.
    pub to_port: Port,
}

/// A block-diagram system model.
///
/// # Examples
///
/// ```
/// use decisive_blocks::{BlockDiagram, BlockKind, Port};
///
/// # fn main() -> Result<(), decisive_blocks::DiagramError> {
/// let mut d = BlockDiagram::new("demo");
/// let src = d.add_block("DC1", BlockKind::DcVoltageSource { volts: 5.0 });
/// let gnd = d.add_block("GND1", BlockKind::Ground);
/// d.connect(src, Port(1), gnd, Port(0))?;
/// assert_eq!(d.block_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockDiagram {
    name: String,
    blocks: Vec<Block>,
    connections: Vec<Connection>,
}

impl BlockDiagram {
    /// Creates an empty diagram.
    pub fn new(name: impl Into<String>) -> Self {
        BlockDiagram { name: name.into(), blocks: Vec::new(), connections: Vec::new() }
    }

    /// The diagram name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a block and returns its handle.
    pub fn add_block(&mut self, name: impl Into<String>, kind: BlockKind) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block { name: name.into(), kind });
        id
    }

    /// Connects `from.from_port → to.to_port`.
    ///
    /// # Errors
    ///
    /// Returns [`DiagramError::UnknownBlock`] / [`DiagramError::UnknownPort`]
    /// for dangling endpoints.
    pub fn connect(
        &mut self,
        from: BlockId,
        from_port: Port,
        to: BlockId,
        to_port: Port,
    ) -> Result<()> {
        for (id, port) in [(from, from_port), (to, to_port)] {
            let block =
                self.blocks.get(id.0 as usize).ok_or(DiagramError::UnknownBlock { block: id.0 })?;
            if port.0 >= block.kind.port_count() {
                return Err(DiagramError::UnknownPort { block: block.name.clone(), port: port.0 });
            }
        }
        self.connections.push(Connection { from, from_port, to, to_port });
        Ok(())
    }

    /// The block with the given handle.
    ///
    /// # Errors
    ///
    /// Returns [`DiagramError::UnknownBlock`] for out-of-range handles.
    pub fn block(&self, id: BlockId) -> Result<&Block> {
        self.blocks.get(id.0 as usize).ok_or(DiagramError::UnknownBlock { block: id.0 })
    }

    /// Iterates `(id, block)` in insertion order.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// The connections in insertion order.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Finds a block by instance name (first match).
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.name == name).map(|i| BlockId(i as u32))
    }

    /// Total element count (blocks + connections), the granularity the
    /// paper uses to size models ("102 elements in the design").
    pub fn element_count(&self) -> usize {
        self.blocks.len() + self.connections.len()
    }

    /// Computes the electrical nets of the diagram: every port is assigned
    /// a net id; connected ports share one. Returns `nets[block][port]`.
    pub(crate) fn nets(&self) -> Vec<Vec<usize>> {
        // Union-find over a flat port numbering.
        let offsets: Vec<usize> = {
            let mut acc = 0usize;
            self.blocks
                .iter()
                .map(|b| {
                    let o = acc;
                    acc += b.kind.port_count() as usize;
                    o
                })
                .collect()
        };
        let total: usize = self.blocks.iter().map(|b| b.kind.port_count() as usize).sum();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for c in &self.connections {
            let a = offsets[c.from.0 as usize] + c.from_port.0 as usize;
            let b = offsets[c.to.0 as usize] + c.to_port.0 as usize;
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        // Renumber roots densely.
        let mut net_of_root = std::collections::HashMap::new();
        let mut next = 0usize;
        let mut result = Vec::with_capacity(self.blocks.len());
        for (i, b) in self.blocks.iter().enumerate() {
            let mut ports = Vec::with_capacity(b.kind.port_count() as usize);
            for p in 0..b.kind.port_count() as usize {
                let root = find(&mut parent, offsets[i] + p);
                let net = *net_of_root.entry(root).or_insert_with(|| {
                    let n = next;
                    next += 1;
                    n
                });
                ports.push(net);
            }
            result.push(ports);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_validates_endpoints() {
        let mut d = BlockDiagram::new("t");
        let a = d.add_block("A", BlockKind::Resistor { ohms: 1.0 });
        let g = d.add_block("G", BlockKind::Ground);
        assert!(d.connect(a, Port(1), g, Port(0)).is_ok());
        assert!(matches!(d.connect(a, Port(2), g, Port(0)), Err(DiagramError::UnknownPort { .. })));
        assert!(matches!(
            d.connect(BlockId(9), Port(0), g, Port(0)),
            Err(DiagramError::UnknownBlock { .. })
        ));
    }

    #[test]
    fn nets_merge_connected_ports() {
        let mut d = BlockDiagram::new("t");
        let v = d.add_block("V", BlockKind::DcVoltageSource { volts: 5.0 });
        let r = d.add_block("R", BlockKind::Resistor { ohms: 1.0 });
        let g = d.add_block("G", BlockKind::Ground);
        d.connect(v, Port(0), r, Port(0)).unwrap();
        d.connect(r, Port(1), g, Port(0)).unwrap();
        d.connect(v, Port(1), g, Port(0)).unwrap();
        let nets = d.nets();
        assert_eq!(nets[v.0 as usize][0], nets[r.0 as usize][0]);
        assert_eq!(nets[r.0 as usize][1], nets[g.0 as usize][0]);
        assert_eq!(nets[v.0 as usize][1], nets[g.0 as usize][0]);
        assert_ne!(nets[v.0 as usize][0], nets[v.0 as usize][1]);
    }

    #[test]
    fn element_count_includes_connections() {
        let mut d = BlockDiagram::new("t");
        let a = d.add_block("A", BlockKind::Resistor { ohms: 1.0 });
        let g = d.add_block("G", BlockKind::Ground);
        d.connect(a, Port(1), g, Port(0)).unwrap();
        assert_eq!(d.element_count(), 3);
    }

    #[test]
    fn lookup_by_name() {
        let mut d = BlockDiagram::new("t");
        let a = d.add_block("D1", BlockKind::Diode);
        assert_eq!(d.block_by_name("D1"), Some(a));
        assert_eq!(d.block_by_name("X"), None);
        assert_eq!(d.block(a).unwrap().name, "D1");
    }
}
