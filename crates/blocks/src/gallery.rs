//! Ready-made diagrams, including the paper's case study.

use crate::block::{BlockId, BlockKind, Port};
use crate::diagram::BlockDiagram;

/// Handles to the named blocks of the [`sensor_power_supply`] diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerSupplyBlocks {
    /// 5 V DC source.
    pub dc1: BlockId,
    /// Series diode.
    pub d1: BlockId,
    /// Series inductor.
    pub l1: BlockId,
    /// Input filter capacitor (10 µF).
    pub c1: BlockId,
    /// Input decoupling capacitor (100 nF).
    pub c2: BlockId,
    /// Ground reference.
    pub gnd1: BlockId,
    /// Microcontroller load.
    pub mc1: BlockId,
    /// Current sensor in the load branch.
    pub cs1: BlockId,
}

/// Builds the sensor power-supply system of the paper's case study
/// (Fig. 11): `DC1` (5 V) feeding `MC1` through `D1` and `L1`, with `CS1`
/// sensing the load current, `C1`/`C2` as input filter capacitors, and the
/// simulation-infrastructure blocks `S1`, `Scope1` and `Out1`.
///
/// The filter capacitors sit across the source, consistent with the paper's
/// analysis assumption that "DC1 is stable (i.e. over-voltage and
/// under-voltage are not considered)": faults masked by the stiff source do
/// not disturb the reading at `CS1` (see EXPERIMENTS.md, Table IV).
///
/// # Examples
///
/// ```
/// use decisive_blocks::gallery;
///
/// let (d, blocks) = gallery::sensor_power_supply();
/// assert!(d.block_by_name("D1").is_some());
/// assert_eq!(d.block_by_name("CS1"), Some(blocks.cs1));
/// ```
pub fn sensor_power_supply() -> (BlockDiagram, PowerSupplyBlocks) {
    let mut d = BlockDiagram::new("sensor-power-supply");
    let dc1 = d.add_block("DC1", BlockKind::DcVoltageSource { volts: 5.0 });
    let d1 = d.add_block("D1", BlockKind::Diode);
    let l1 = d.add_block("L1", BlockKind::Inductor { henries: 1e-3 });
    let c1 = d.add_block("C1", BlockKind::Capacitor { farads: 10e-6 });
    let c2 = d.add_block("C2", BlockKind::Capacitor { farads: 100e-9 });
    let gnd1 = d.add_block("GND1", BlockKind::Ground);
    let mc1 =
        d.add_block("MC1", BlockKind::Mcu { on_amps: 0.1, brownout_volts: 3.0, fault_amps: 0.02 });
    let cs1 = d.add_block("CS1", BlockKind::CurrentSensor);
    let s1 = d.add_block("S1", BlockKind::SolverConfig);
    let scope1 = d.add_block("Scope1", BlockKind::Scope);
    let out1 = d.add_block("Out1", BlockKind::Workspace);

    let ok = "gallery wiring is static";
    // Power path: DC1+ → D1 → L1 → CS1 → MC1 → ground.
    d.connect(dc1, Port(0), d1, Port(0)).expect(ok);
    d.connect(d1, Port(1), l1, Port(0)).expect(ok);
    d.connect(l1, Port(1), cs1, Port(0)).expect(ok);
    d.connect(cs1, Port(1), mc1, Port(0)).expect(ok);
    d.connect(mc1, Port(1), gnd1, Port(0)).expect(ok);
    d.connect(dc1, Port(1), gnd1, Port(0)).expect(ok);
    // Input filter across the (stable) source.
    d.connect(c1, Port(0), dc1, Port(0)).expect(ok);
    d.connect(c1, Port(1), gnd1, Port(0)).expect(ok);
    d.connect(c2, Port(0), dc1, Port(0)).expect(ok);
    d.connect(c2, Port(1), gnd1, Port(0)).expect(ok);
    // Simulation infrastructure (Fig. 11: S1, Scope1, Out1).
    d.connect(s1, Port(0), dc1, Port(0)).expect(ok);
    d.connect(scope1, Port(0), cs1, Port(1)).expect(ok);
    d.connect(out1, Port(0), cs1, Port(1)).expect(ok);

    (d, PowerSupplyBlocks { dc1, d1, l1, c1, c2, gnd1, mc1, cs1 })
}

/// Handles to the named blocks of the [`redundant_power_supply`] diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundantSupplyBlocks {
    /// Primary 5 V source.
    pub dc_a: BlockId,
    /// Secondary 5 V source.
    pub dc_b: BlockId,
    /// Primary OR-ing diode.
    pub d_a: BlockId,
    /// Secondary OR-ing diode.
    pub d_b: BlockId,
    /// Load current sensor.
    pub cs1: BlockId,
    /// Microcontroller load.
    pub mc1: BlockId,
}

/// A diode-OR redundant supply: two independent 5 V rails feed the load
/// through OR-ing diodes, so no single rail component is a single point of
/// failure — the classic 1oo2 arrangement behind SSAM's
/// [`ToleranceType::OneOutOfTwo`](decisive_ssam::architecture::ToleranceType).
///
/// # Examples
///
/// ```
/// use decisive_blocks::{gallery, to_circuit};
/// use decisive_circuit::Fault;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (d, blocks) = gallery::redundant_power_supply();
/// let lowered = to_circuit(&d)?;
/// let cs = lowered.element(blocks.cs1).expect("CS1");
/// // Losing one diode leaves the load powered by the other rail.
/// let faulted = lowered.circuit.with_fault(lowered.element(blocks.d_a).unwrap(), Fault::Open)?;
/// let reading = faulted.sensor_reading(&faulted.dc()?, cs)?;
/// assert!((reading - 0.1).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn redundant_power_supply() -> (BlockDiagram, RedundantSupplyBlocks) {
    let ok = "gallery wiring is static";
    let mut d = BlockDiagram::new("redundant-power-supply");
    let gnd = d.add_block("GND1", BlockKind::Ground);
    let dc_a = d.add_block("DC_A", BlockKind::DcVoltageSource { volts: 5.0 });
    let dc_b = d.add_block("DC_B", BlockKind::DcVoltageSource { volts: 5.0 });
    let d_a = d.add_block("D_A", BlockKind::Diode);
    let d_b = d.add_block("D_B", BlockKind::Diode);
    let cs1 = d.add_block("CS1", BlockKind::CurrentSensor);
    let mc1 =
        d.add_block("MC1", BlockKind::Mcu { on_amps: 0.1, brownout_volts: 3.0, fault_amps: 0.02 });
    // Rail A and rail B OR onto the common node feeding CS1 → MC1 → gnd.
    d.connect(dc_a, Port(0), d_a, Port(0)).expect(ok);
    d.connect(dc_b, Port(0), d_b, Port(0)).expect(ok);
    d.connect(d_a, Port(1), cs1, Port(0)).expect(ok);
    d.connect(d_b, Port(1), cs1, Port(0)).expect(ok);
    d.connect(cs1, Port(1), mc1, Port(0)).expect(ok);
    d.connect(mc1, Port(1), gnd, Port(0)).expect(ok);
    d.connect(dc_a, Port(1), gnd, Port(0)).expect(ok);
    d.connect(dc_b, Port(1), gnd, Port(0)).expect(ok);
    (d, RedundantSupplyBlocks { dc_a, dc_b, d_a, d_b, cs1, mc1 })
}

/// Handles to the named blocks of the [`brownout_threshold_supply`]
/// diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutSupplyBlocks {
    /// 5 V DC source.
    pub dc1: BlockId,
    /// Series resistor (0.5 Ω nominal).
    pub r1: BlockId,
    /// Load current sensor.
    pub cs1: BlockId,
    /// High-current load biased near its brown-out knee.
    pub mc1: BlockId,
}

/// A supply whose load sits close to its brown-out threshold: a 5 V source
/// feeds a 3 A load (brown-out knee at 2.75 V) through a 0.5 Ω series
/// resistor. Nominally the load node rests at 3.5 V — comfortably above
/// the knee — but a *drifted* series resistor (2× its nominal value) moves
/// the operating point onto the knee itself, where the undamped
/// step-limited Newton iteration locks into a limit cycle and only the
/// recovery ladder finds the genuine operating point (~2.8 V, ~2.2 A).
///
/// This is the checked-in pathological circuit for the
/// convergence-recovery regression suite; `data/brownout_threshold.bd`
/// holds its text form.
///
/// # Examples
///
/// ```
/// use decisive_blocks::{gallery, to_circuit};
///
/// let (d, blocks) = gallery::brownout_threshold_supply();
/// let lowered = to_circuit(&d).unwrap();
/// let cs = lowered.element(blocks.cs1).expect("CS1");
/// let nominal = lowered.circuit.sensor_reading(&lowered.circuit.dc().unwrap(), cs).unwrap();
/// assert!((nominal - 3.0).abs() < 1e-3);
/// ```
pub fn brownout_threshold_supply() -> (BlockDiagram, BrownoutSupplyBlocks) {
    let ok = "gallery wiring is static";
    let mut d = BlockDiagram::new("brownout-threshold-supply");
    let dc1 = d.add_block("DC1", BlockKind::DcVoltageSource { volts: 5.0 });
    let r1 = d.add_block("R1", BlockKind::Resistor { ohms: 0.5 });
    let cs1 = d.add_block("CS1", BlockKind::CurrentSensor);
    let mc1 =
        d.add_block("MC1", BlockKind::Mcu { on_amps: 3.0, brownout_volts: 2.75, fault_amps: 0.1 });
    let gnd1 = d.add_block("GND1", BlockKind::Ground);
    d.connect(dc1, Port(0), r1, Port(0)).expect(ok);
    d.connect(r1, Port(1), cs1, Port(0)).expect(ok);
    d.connect(cs1, Port(1), mc1, Port(0)).expect(ok);
    d.connect(mc1, Port(1), gnd1, Port(0)).expect(ok);
    d.connect(dc1, Port(1), gnd1, Port(0)).expect(ok);
    (d, BrownoutSupplyBlocks { dc1, r1, cs1, mc1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_circuit::to_circuit;

    #[test]
    fn power_supply_nominal_reading_is_100ma() {
        let (d, blocks) = sensor_power_supply();
        let lowered = to_circuit(&d).unwrap();
        let cs = lowered.element(blocks.cs1).unwrap();
        let sol = lowered.circuit.dc().unwrap();
        let reading = lowered.circuit.sensor_reading(&sol, cs).unwrap();
        assert!((reading - 0.1).abs() < 1e-4, "MC1 draws 100 mA nominally, got {reading}");
    }

    #[test]
    fn power_supply_element_census_matches_fig11() {
        let (d, _) = sensor_power_supply();
        assert_eq!(d.block_count(), 11);
        let names: Vec<_> = d.blocks().map(|(_, b)| b.name.as_str()).collect();
        for expected in
            ["DC1", "D1", "L1", "C1", "C2", "GND1", "MC1", "CS1", "S1", "Scope1", "Out1"]
        {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn open_diode_starves_the_load() {
        let (d, blocks) = sensor_power_supply();
        let lowered = to_circuit(&d).unwrap();
        let d1 = lowered.element(blocks.d1).unwrap();
        let cs = lowered.element(blocks.cs1).unwrap();
        let faulted = lowered.circuit.with_fault(d1, decisive_circuit::Fault::Open).unwrap();
        let reading = faulted.sensor_reading(&faulted.dc().unwrap(), cs).unwrap();
        assert!(reading < 1e-4, "open D1 must cut the supply, got {reading}");
    }

    #[test]
    fn redundant_supply_survives_single_rail_faults() {
        let (d, blocks) = redundant_power_supply();
        let lowered = to_circuit(&d).unwrap();
        let cs = lowered.element(blocks.cs1).unwrap();
        let nominal = lowered.circuit.sensor_reading(&lowered.circuit.dc().unwrap(), cs).unwrap();
        assert!((nominal - 0.1).abs() < 1e-3);
        // Any single rail-side fault is tolerated…
        for target in [blocks.dc_a, blocks.d_a, blocks.dc_b, blocks.d_b] {
            let element = lowered.element(target).unwrap();
            let faulted =
                lowered.circuit.with_fault(element, decisive_circuit::Fault::Open).unwrap();
            let reading = faulted.sensor_reading(&faulted.dc().unwrap(), cs).unwrap();
            assert!((reading - nominal).abs() / nominal < 0.05, "single fault must be masked");
        }
        // …but losing both diodes kills the load.
        let both = lowered
            .circuit
            .with_fault(lowered.element(blocks.d_a).unwrap(), decisive_circuit::Fault::Open)
            .unwrap()
            .with_fault(lowered.element(blocks.d_b).unwrap(), decisive_circuit::Fault::Open)
            .unwrap();
        let reading = both.sensor_reading(&both.dc().unwrap(), cs).unwrap();
        assert!(reading < 1e-4, "dual fault must not be masked, got {reading}");
    }

    #[test]
    fn shorted_filter_cap_is_masked_by_the_stiff_source() {
        let (d, blocks) = sensor_power_supply();
        let lowered = to_circuit(&d).unwrap();
        let c1 = lowered.element(blocks.c1).unwrap();
        let cs = lowered.element(blocks.cs1).unwrap();
        let faulted = lowered.circuit.with_fault(c1, decisive_circuit::Fault::Short).unwrap();
        let reading = faulted.sensor_reading(&faulted.dc().unwrap(), cs).unwrap();
        assert!((reading - 0.1).abs() < 1e-3, "stable DC1 masks the shorted cap, got {reading}");
    }
}
