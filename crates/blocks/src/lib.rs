//! # decisive-blocks
//!
//! Block-diagram system models — the Simulink authoring layer of the
//! DECISIVE reproduction — with:
//!
//! * [`BlockDiagram`] building and net extraction,
//! * lossless transformation to SSAM and back ([`to_ssam`], [`from_ssam`]),
//!   reproducing the paper's Simulink→SSAM transformation contribution,
//! * lowering to simulator netlists ([`to_circuit`]), and
//! * the block-type [`coverage`] census behind the paper's RQ2.
//!
//! The paper's case-study model (Fig. 11) ships in [`gallery`].
//!
//! ## Example
//!
//! ```
//! use decisive_blocks::{gallery, to_ssam, from_ssam, to_circuit};
//!
//! # fn main() -> Result<(), decisive_blocks::DiagramError> {
//! let (diagram, _) = gallery::sensor_power_supply();
//! // Lossless transformation (paper: "without information loss").
//! let model = to_ssam(&diagram);
//! assert_eq!(from_ssam(&model)?, diagram);
//! // And the same diagram lowers to a simulatable netlist.
//! let lowered = to_circuit(&diagram)?;
//! assert!(lowered.circuit.element_count() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod block;
pub mod coverage;
mod diagram;
pub mod gallery;
pub mod text;
mod to_circuit;
mod to_ssam;

pub use block::{Block, BlockId, BlockKind, Port};
pub use diagram::{BlockDiagram, Connection, DiagramError, Result};
pub use to_circuit::{to_circuit, LoweredCircuit};
pub use to_ssam::{from_ssam, to_ssam};
