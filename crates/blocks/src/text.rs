//! A plain-text block-diagram format (`.bd`) — the import/export surface
//! standing in for reading "system architecture defined in arbitrary tools"
//! (paper §IV-B6's import function).
//!
//! The format is line-oriented:
//!
//! ```text
//! diagram sensor-power-supply
//! block DC1 dc-voltage-source volts=5
//! block D1 diode
//! block GND1 ground
//! connect DC1.0 -> D1.0
//! connect DC1.1 -> GND1.0
//! ```
//!
//! Blank lines and `#` comments are ignored. Parameters use the same
//! `key=value;key=value` encoding as the SSAM transformation, so the two
//! serialisations stay consistent.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::block::BlockId;
use crate::diagram::{BlockDiagram, DiagramError, Result};
use crate::to_ssam::{kind_from, params_string};
use crate::Port;

/// Serialises a diagram to the `.bd` text format.
pub fn to_text(diagram: &BlockDiagram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "diagram {}", diagram.name());
    for (_, block) in diagram.blocks() {
        let params = params_string(&block.kind);
        if params.is_empty() {
            let _ = writeln!(out, "block {} {}", block.name, block.kind.tag());
        } else {
            let _ = writeln!(out, "block {} {} {}", block.name, block.kind.tag(), params);
        }
    }
    for connection in diagram.connections() {
        let name = |id: BlockId| diagram.block(id).map(|b| b.name.clone()).unwrap_or_default();
        let _ = writeln!(
            out,
            "connect {}.{} -> {}.{}",
            name(connection.from),
            connection.from_port.0,
            name(connection.to),
            connection.to_port.0
        );
    }
    out
}

/// Parses a `.bd` document.
///
/// # Errors
///
/// Returns [`DiagramError::NotLowerable`] with a line-tagged message for
/// malformed input, unknown block kinds or dangling connection endpoints.
pub fn from_text(text: &str) -> Result<BlockDiagram> {
    let bad = |line_no: usize, message: String| DiagramError::NotLowerable {
        message: format!("line {line_no}: {message}"),
    };
    let mut diagram: Option<BlockDiagram> = None;
    let mut by_name: HashMap<String, BlockId> = HashMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("diagram") => {
                let name =
                    words.next().ok_or_else(|| bad(line_no, "missing diagram name".into()))?;
                if diagram.is_some() {
                    return Err(bad(line_no, "duplicate `diagram` line".into()));
                }
                diagram = Some(BlockDiagram::new(name));
            }
            Some("block") => {
                let d = diagram
                    .as_mut()
                    .ok_or_else(|| bad(line_no, "`block` before `diagram`".into()))?;
                let name = words.next().ok_or_else(|| bad(line_no, "missing block name".into()))?;
                let tag = words.next().ok_or_else(|| bad(line_no, "missing block kind".into()))?;
                let params = words.next().unwrap_or("");
                let kind = kind_from(tag, params).ok_or_else(|| {
                    bad(line_no, format!("unknown block kind `{tag}` or bad parameters `{params}`"))
                })?;
                if by_name.contains_key(name) {
                    return Err(bad(line_no, format!("duplicate block name `{name}`")));
                }
                let id = d.add_block(name, kind);
                by_name.insert(name.to_owned(), id);
            }
            Some("connect") => {
                let d = diagram
                    .as_mut()
                    .ok_or_else(|| bad(line_no, "`connect` before `diagram`".into()))?;
                let from =
                    words.next().ok_or_else(|| bad(line_no, "missing source endpoint".into()))?;
                let arrow = words.next();
                if arrow != Some("->") {
                    return Err(bad(line_no, "expected `->` between endpoints".into()));
                }
                let to =
                    words.next().ok_or_else(|| bad(line_no, "missing target endpoint".into()))?;
                let parse_endpoint = |endpoint: &str| -> Result<(BlockId, Port)> {
                    let (name, port) = endpoint.rsplit_once('.').ok_or_else(|| {
                        bad(line_no, format!("endpoint `{endpoint}` must be `block.port`"))
                    })?;
                    let id = by_name
                        .get(name)
                        .copied()
                        .ok_or_else(|| bad(line_no, format!("unknown block `{name}`")))?;
                    let port = port
                        .parse::<u8>()
                        .map_err(|_| bad(line_no, format!("bad port number `{port}`")))?;
                    Ok((id, Port(port)))
                };
                let (from_id, from_port) = parse_endpoint(from)?;
                let (to_id, to_port) = parse_endpoint(to)?;
                d.connect(from_id, from_port, to_id, to_port)
                    .map_err(|e| bad(line_no, e.to_string()))?;
            }
            Some(other) => return Err(bad(line_no, format!("unknown directive `{other}`"))),
            None => unreachable!("blank lines are skipped"),
        }
    }
    diagram.ok_or_else(|| DiagramError::NotLowerable { message: "no `diagram` line".into() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;

    #[test]
    fn case_study_roundtrips_through_text() {
        let (diagram, _) = gallery::sensor_power_supply();
        let text = to_text(&diagram);
        let back = from_text(&text).unwrap();
        assert_eq!(back, diagram);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let d = from_text(
            "# a comment\n\
             diagram demo\n\
             \n\
             block V dc-voltage-source volts=5\n\
             block G ground\n\
             connect V.1 -> G.0\n",
        )
        .unwrap();
        assert_eq!(d.block_count(), 2);
        assert_eq!(d.connections().len(), 1);
        assert_eq!(d.name(), "demo");
    }

    #[test]
    fn reports_errors_with_line_numbers() {
        let check = |text: &str, needle: &str| {
            let err = from_text(text).unwrap_err().to_string();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        };
        check("block X diode\n", "before `diagram`");
        check("diagram d\nblock X nosuchkind\n", "unknown block kind");
        check("diagram d\nblock X diode\nblock X diode\n", "duplicate block name");
        check("diagram d\nconnect A.0 -> B.0\n", "unknown block `A`");
        check("diagram d\nblock A diode\nconnect A.0 A.1\n", "expected `->`");
        check("diagram d\nblock A diode\nconnect A.x -> A.1\n", "bad port number");
        check("diagram d\nfrobnicate\n", "unknown directive");
        check("", "no `diagram` line");
        check("diagram d\nblock A diode\nconnect A.7 -> A.0\n", "line 3");
    }

    #[test]
    fn imported_diagram_is_analysable() {
        let (original, blocks) = gallery::sensor_power_supply();
        let imported = from_text(&to_text(&original)).unwrap();
        let lowered = crate::to_circuit(&imported).unwrap();
        let cs1 = imported.block_by_name("CS1").unwrap();
        let sensor = lowered.element(cs1).unwrap();
        let reading =
            lowered.circuit.sensor_reading(&lowered.circuit.dc().unwrap(), sensor).unwrap();
        assert!((reading - 0.1).abs() < 1e-4);
        let _ = blocks;
    }
}
