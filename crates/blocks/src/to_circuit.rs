//! Lowering a [`BlockDiagram`] to a [`Circuit`] netlist — what happens when
//! SAME hands the Simulink model to the simulator.

use std::collections::HashMap;

use decisive_circuit::{Circuit, ElementId, ElementKind, NodeId};

use crate::block::{BlockId, BlockKind};
use crate::diagram::{BlockDiagram, DiagramError, Result};

/// A lowered circuit plus the block → element correspondence, so fault
/// injection driven from the block model can find its electrical target.
#[derive(Debug, Clone)]
pub struct LoweredCircuit {
    /// The netlist.
    pub circuit: Circuit,
    /// Which circuit element each electrical block became.
    pub element_of: HashMap<BlockId, ElementId>,
}

impl LoweredCircuit {
    /// The circuit element backing `block`, if the block was electrical.
    pub fn element(&self, block: BlockId) -> Option<ElementId> {
        self.element_of.get(&block).copied()
    }
}

/// Lowers `diagram` to a circuit netlist.
///
/// Nets are derived from the connections (union-find over ports); any net
/// touching a [`BlockKind::Ground`] port becomes the ground node.
/// Simulation-infrastructure and software blocks do not lower.
///
/// # Errors
///
/// Returns [`DiagramError::NotLowerable`] when the diagram has electrical
/// blocks but no ground reference.
pub fn to_circuit(diagram: &BlockDiagram) -> Result<LoweredCircuit> {
    let nets = diagram_nets(diagram);
    let has_electrical = diagram.blocks().any(|(_, b)| b.kind.is_electrical());
    // Identify ground nets.
    let mut ground_nets = std::collections::HashSet::new();
    for (id, b) in diagram.blocks() {
        if matches!(b.kind, BlockKind::Ground) {
            ground_nets.insert(nets[id.raw() as usize][0]);
        }
    }
    if has_electrical && ground_nets.is_empty() {
        return Err(DiagramError::NotLowerable {
            message: "no ground reference block in an electrical diagram".to_owned(),
        });
    }
    let mut circuit = Circuit::new(diagram.name());
    let mut node_of_net: HashMap<usize, NodeId> = HashMap::new();
    let mut node_for = |net: usize, circuit: &mut Circuit| -> NodeId {
        if ground_nets.contains(&net) {
            return NodeId::GROUND;
        }
        *node_of_net.entry(net).or_insert_with(|| circuit.node())
    };
    let mut element_of = HashMap::new();
    for (id, block) in diagram.blocks() {
        let kind = match &block.kind {
            BlockKind::DcVoltageSource { volts } => ElementKind::VoltageSource { volts: *volts },
            BlockKind::DcCurrentSource { amps } => ElementKind::CurrentSource { amps: *amps },
            BlockKind::Resistor { ohms } => ElementKind::Resistor { ohms: *ohms },
            BlockKind::Capacitor { farads } => ElementKind::Capacitor { farads: *farads },
            BlockKind::Inductor { henries } => ElementKind::Inductor { henries: *henries },
            BlockKind::Diode => ElementKind::Diode(decisive_circuit::DiodeParams::default()),
            BlockKind::Switch { closed } => ElementKind::Switch { closed: *closed },
            BlockKind::CurrentSensor => ElementKind::CurrentSensor,
            BlockKind::VoltageSensor => ElementKind::VoltageSensor,
            BlockKind::Mcu { on_amps, brownout_volts, fault_amps } => ElementKind::Load {
                on_amps: *on_amps,
                brownout_volts: *brownout_volts,
                fault_amps: *fault_amps,
                faulted: false,
            },
            // Ground nodes were handled through the net mapping.
            BlockKind::Ground
            | BlockKind::Software
            | BlockKind::SolverConfig
            | BlockKind::Scope
            | BlockKind::Workspace
            | BlockKind::AnnotatedSubsystem { .. } => continue,
        };
        let block_nets = &nets[id.raw() as usize];
        let plus = node_for(block_nets[0], &mut circuit);
        let minus = node_for(block_nets[1], &mut circuit);
        let element = circuit.add(block.name.clone(), plus, minus, kind).map_err(|e| {
            DiagramError::NotLowerable { message: format!("block `{}`: {e}", block.name) }
        })?;
        element_of.insert(id, element);
    }
    Ok(LoweredCircuit { circuit, element_of })
}

fn diagram_nets(diagram: &BlockDiagram) -> Vec<Vec<usize>> {
    diagram.nets()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Port;

    fn divider() -> (BlockDiagram, BlockId, BlockId) {
        let mut d = BlockDiagram::new("div");
        let v = d.add_block("V1", BlockKind::DcVoltageSource { volts: 10.0 });
        let r1 = d.add_block("R1", BlockKind::Resistor { ohms: 1_000.0 });
        let r2 = d.add_block("R2", BlockKind::Resistor { ohms: 1_000.0 });
        let vs = d.add_block("VS1", BlockKind::VoltageSensor);
        let g = d.add_block("GND1", BlockKind::Ground);
        d.connect(v, Port(0), r1, Port(0)).unwrap();
        d.connect(r1, Port(1), r2, Port(0)).unwrap();
        d.connect(r2, Port(1), g, Port(0)).unwrap();
        d.connect(v, Port(1), g, Port(0)).unwrap();
        d.connect(vs, Port(0), r2, Port(0)).unwrap();
        d.connect(vs, Port(1), g, Port(0)).unwrap();
        (d, r1, vs)
    }

    #[test]
    fn lowered_divider_simulates_correctly() {
        let (d, _, vs) = divider();
        let lowered = to_circuit(&d).unwrap();
        let sensor = lowered.element(vs).unwrap();
        let sol = lowered.circuit.dc().unwrap();
        let v = lowered.circuit.sensor_reading(&sol, sensor).unwrap();
        assert!((v - 5.0).abs() < 1e-3, "divider midpoint, got {v}");
    }

    #[test]
    fn block_element_mapping_is_complete_for_electrical_blocks() {
        let (d, r1, _) = divider();
        let lowered = to_circuit(&d).unwrap();
        assert!(lowered.element(r1).is_some());
        let gnd = d.block_by_name("GND1").unwrap();
        assert!(lowered.element(gnd).is_none(), "ground is a node, not an element");
    }

    #[test]
    fn missing_ground_is_rejected() {
        let mut d = BlockDiagram::new("nognd");
        let v = d.add_block("V1", BlockKind::DcVoltageSource { volts: 5.0 });
        let r = d.add_block("R1", BlockKind::Resistor { ohms: 1.0 });
        d.connect(v, Port(0), r, Port(0)).unwrap();
        d.connect(v, Port(1), r, Port(1)).unwrap();
        assert!(matches!(to_circuit(&d), Err(DiagramError::NotLowerable { .. })));
    }

    #[test]
    fn non_electrical_blocks_are_skipped() {
        let (mut d, _, _) = divider();
        d.add_block("S1", BlockKind::SolverConfig);
        d.add_block("SW1", BlockKind::Software);
        let lowered = to_circuit(&d).unwrap();
        assert_eq!(lowered.circuit.element_count(), 4, "V1, R1, R2, VS1");
    }
}
