//! The lossless block-diagram → SSAM model-to-model transformation and its
//! inverse (paper contribution: "a tested transformation algorithm to
//! transform Simulink models to SSAM without information loss").
//!
//! Block parameters survive in an inline [`ExternalReference`] on each
//! generated component, so [`from_ssam`] can reconstruct the original
//! diagram exactly — the round-trip is the "no information loss" test.

use decisive_ssam::architecture::{Component, ComponentKind, IoDirection};
use decisive_ssam::base::{ExternalModelKind, ExternalReference};
use decisive_ssam::id::Idx;
use decisive_ssam::model::SsamModel;

use crate::block::{BlockKind, Port};
use crate::diagram::{BlockDiagram, DiagramError, Result};

/// Metadata location marking a component as transformed from a block.
const INLINE_LOCATION: &str = "inline:block-params";

/// Transforms `diagram` into an SSAM model.
///
/// The diagram becomes a top-level `System` component; every block becomes
/// a child component carrying its parameters in an inline external
/// reference; every connection becomes a port-pinned relationship. Boundary
/// relationships `top → source` and `sensor → top` orient the paper's
/// input→output path analysis (Algorithm 1).
pub fn to_ssam(diagram: &BlockDiagram) -> SsamModel {
    let mut model = SsamModel::new(diagram.name());
    let mut top_component = Component::new(diagram.name(), ComponentKind::System);
    top_component.type_key = Some("BlockDiagram".to_owned());
    let top = model.add_component(top_component);

    let mut component_of: Vec<Idx<Component>> = Vec::with_capacity(diagram.block_count());
    for (_, block) in diagram.blocks() {
        let kind = match block.kind {
            BlockKind::Software => ComponentKind::Software,
            _ => ComponentKind::Hardware,
        };
        let mut c = Component::new(block.name.clone(), kind);
        c.type_key = block.kind.type_key().map(str::to_owned);
        c.core.external_refs.push(
            ExternalReference::new(INLINE_LOCATION, ExternalModelKind::BlockDiagram)
                .with_metadata("tag", block.kind.tag())
                .with_metadata("params", params_string(&block.kind)),
        );
        let idx = model.add_child_component(top, c);
        component_of.push(idx);
    }

    // Ports: one IO node per block port, named p0/p1, direction from use.
    let port_node = |model: &mut SsamModel, comp: Idx<Component>, port: Port, dir: IoDirection| {
        let name = format!("p{}", port.0);
        let existing = model.components[comp]
            .io_nodes
            .iter()
            .copied()
            .find(|&n| model.io_nodes[n].core.name.value() == name);
        match existing {
            Some(n) => n,
            None => model.add_io_node(comp, name, dir),
        }
    };

    for conn in diagram.connections() {
        let from = component_of[conn.from.raw() as usize];
        let to = component_of[conn.to.raw() as usize];
        let from_port = port_node(&mut model, from, conn.from_port, IoDirection::Output);
        let to_port = port_node(&mut model, to, conn.to_port, IoDirection::Input);
        model.connect_ports(from, from_port, to, to_port);
    }

    // Boundary orientation for path analysis.
    for (id, block) in diagram.blocks() {
        match block.kind {
            BlockKind::DcVoltageSource { .. } | BlockKind::DcCurrentSource { .. } => {
                model.connect(top, component_of[id.raw() as usize]);
            }
            BlockKind::CurrentSensor | BlockKind::VoltageSensor => {
                model.connect(component_of[id.raw() as usize], top);
            }
            _ => {}
        }
    }
    model
}

/// Reconstructs the block diagram from a model produced by [`to_ssam`] —
/// the inverse transformation used to verify losslessness.
///
/// # Errors
///
/// Returns [`DiagramError::NotLowerable`] when the model was not produced
/// by [`to_ssam`] (missing top component or block parameters).
pub fn from_ssam(model: &SsamModel) -> Result<BlockDiagram> {
    let (top, _) = model
        .components
        .iter()
        .find(|(_, c)| c.parent.is_none() && c.type_key.as_deref() == Some("BlockDiagram"))
        .ok_or_else(|| DiagramError::NotLowerable {
            message: "model has no top-level BlockDiagram component".to_owned(),
        })?;
    let mut diagram = BlockDiagram::new(model.components[top].core.name.value());
    let children = model.components[top].children.clone();
    let mut block_of = std::collections::HashMap::new();
    for (i, &child) in children.iter().enumerate() {
        let c = &model.components[child];
        let params =
            c.core.external_refs.iter().find(|r| r.location == INLINE_LOCATION).ok_or_else(
                || DiagramError::NotLowerable {
                    message: format!("component `{}` carries no block parameters", c.core.name),
                },
            )?;
        let tag = params.metadata_value("tag").unwrap_or_default();
        let body = params.metadata_value("params").unwrap_or_default();
        let kind = kind_from(tag, body).ok_or_else(|| DiagramError::NotLowerable {
            message: format!(
                "component `{}` has unparseable block parameters `{tag}: {body}`",
                c.core.name
            ),
        })?;
        let id = diagram.add_block(c.core.name.value(), kind);
        debug_assert_eq!(id.raw() as usize, i);
        block_of.insert(child, id);
    }
    for (_, rel) in model.relationships.iter() {
        // Skip the boundary relationships that involve the top component.
        if rel.from == top || rel.to == top {
            continue;
        }
        let (Some(&from), Some(&to)) = (block_of.get(&rel.from), block_of.get(&rel.to)) else {
            continue;
        };
        let from_port = port_of(model, rel.from_port)?;
        let to_port = port_of(model, rel.to_port)?;
        diagram
            .connect(from, from_port, to, to_port)
            .map_err(|e| DiagramError::NotLowerable { message: e.to_string() })?;
    }
    Ok(diagram)
}

fn port_of(
    model: &SsamModel,
    node: Option<Idx<decisive_ssam::architecture::IoNode>>,
) -> Result<Port> {
    let node = node.ok_or_else(|| DiagramError::NotLowerable {
        message: "relationship without pinned ports".to_owned(),
    })?;
    let name = model.io_nodes[node].core.name.value();
    name.strip_prefix('p')
        .and_then(|n| n.parse::<u8>().ok())
        .map(Port)
        .ok_or_else(|| DiagramError::NotLowerable { message: format!("bad port name `{name}`") })
}

/// Serialises the parameters of a block kind as `key=value` pairs.
pub(crate) fn params_string(kind: &BlockKind) -> String {
    match kind {
        BlockKind::DcVoltageSource { volts } => format!("volts={volts}"),
        BlockKind::DcCurrentSource { amps } => format!("amps={amps}"),
        BlockKind::Resistor { ohms } => format!("ohms={ohms}"),
        BlockKind::Capacitor { farads } => format!("farads={farads}"),
        BlockKind::Inductor { henries } => format!("henries={henries}"),
        BlockKind::Switch { closed } => format!("closed={closed}"),
        BlockKind::Mcu { on_amps, brownout_volts, fault_amps } => {
            format!("on_amps={on_amps};brownout_volts={brownout_volts};fault_amps={fault_amps}")
        }
        BlockKind::AnnotatedSubsystem { annotation } => format!("annotation={annotation}"),
        BlockKind::Diode
        | BlockKind::Ground
        | BlockKind::CurrentSensor
        | BlockKind::VoltageSensor
        | BlockKind::Software
        | BlockKind::SolverConfig
        | BlockKind::Scope
        | BlockKind::Workspace => String::new(),
    }
}

pub(crate) fn kind_from(tag: &str, params: &str) -> Option<BlockKind> {
    let field = |key: &str| -> Option<&str> {
        params
            .split(';')
            .find_map(|pair| pair.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
    };
    let num = |key: &str| field(key).and_then(|v| v.parse::<f64>().ok());
    Some(match tag {
        "dc-voltage-source" => BlockKind::DcVoltageSource { volts: num("volts")? },
        "dc-current-source" => BlockKind::DcCurrentSource { amps: num("amps")? },
        "resistor" => BlockKind::Resistor { ohms: num("ohms")? },
        "capacitor" => BlockKind::Capacitor { farads: num("farads")? },
        "inductor" => BlockKind::Inductor { henries: num("henries")? },
        "diode" => BlockKind::Diode,
        "switch" => BlockKind::Switch { closed: field("closed")?.parse().ok()? },
        "ground" => BlockKind::Ground,
        "current-sensor" => BlockKind::CurrentSensor,
        "voltage-sensor" => BlockKind::VoltageSensor,
        "mcu" => BlockKind::Mcu {
            on_amps: num("on_amps")?,
            brownout_volts: num("brownout_volts")?,
            fault_amps: num("fault_amps")?,
        },
        "software" => BlockKind::Software,
        "solver-config" => BlockKind::SolverConfig,
        "scope" => BlockKind::Scope,
        "workspace" => BlockKind::Workspace,
        "annotated-subsystem" => {
            BlockKind::AnnotatedSubsystem { annotation: field("annotation")?.to_owned() }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockId;
    use crate::diagram::BlockDiagram;

    fn all_kinds() -> Vec<BlockKind> {
        vec![
            BlockKind::DcVoltageSource { volts: 5.0 },
            BlockKind::DcCurrentSource { amps: 0.1 },
            BlockKind::Resistor { ohms: 47.5 },
            BlockKind::Capacitor { farads: 1e-6 },
            BlockKind::Inductor { henries: 2e-3 },
            BlockKind::Diode,
            BlockKind::Switch { closed: true },
            BlockKind::Ground,
            BlockKind::CurrentSensor,
            BlockKind::VoltageSensor,
            BlockKind::Mcu { on_amps: 0.1, brownout_volts: 3.0, fault_amps: 0.02 },
            BlockKind::Software,
            BlockKind::SolverConfig,
            BlockKind::Scope,
            BlockKind::Workspace,
            BlockKind::AnnotatedSubsystem { annotation: "PLL".to_owned() },
        ]
    }

    #[test]
    fn params_roundtrip_for_every_kind() {
        for kind in all_kinds() {
            let back = kind_from(kind.tag(), &params_string(&kind))
                .unwrap_or_else(|| panic!("no roundtrip for {kind:?}"));
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn transformation_roundtrip_is_lossless() {
        let mut d = BlockDiagram::new("rt");
        let mut prev: Option<BlockId> = None;
        for (i, kind) in all_kinds().into_iter().enumerate() {
            let id = d.add_block(format!("B{i}"), kind);
            if let Some(p) = prev {
                // Wire a chain through port 0/whatever exists.
                let from_port = Port(0);
                let to_port = Port(0);
                d.connect(p, from_port, id, to_port).unwrap();
            }
            prev = Some(id);
        }
        let model = to_ssam(&d);
        let back = from_ssam(&model).unwrap();
        assert_eq!(back, d, "round-trip must preserve every block and connection");
    }

    #[test]
    fn to_ssam_creates_boundary_relationships() {
        let mut d = BlockDiagram::new("b");
        let v = d.add_block("V1", BlockKind::DcVoltageSource { volts: 5.0 });
        let cs = d.add_block("CS1", BlockKind::CurrentSensor);
        d.connect(v, Port(0), cs, Port(0)).unwrap();
        let model = to_ssam(&d);
        let top = model.component_by_name("b").unwrap();
        let v_c = model.component_by_name("V1").unwrap();
        let cs_c = model.component_by_name("CS1").unwrap();
        let rels: Vec<_> = model.relationships.iter().map(|(_, r)| (r.from, r.to)).collect();
        assert!(rels.contains(&(top, v_c)), "top → source boundary edge");
        assert!(rels.contains(&(cs_c, top)), "sensor → top boundary edge");
        assert!(rels.contains(&(v_c, cs_c)), "authored connection preserved");
    }

    #[test]
    fn type_keys_survive_transformation() {
        let mut d = BlockDiagram::new("k");
        d.add_block("D1", BlockKind::Diode);
        let model = to_ssam(&d);
        let c = model.component_by_name("D1").unwrap();
        assert_eq!(model.components[c].type_key.as_deref(), Some("Diode"));
    }

    #[test]
    fn from_ssam_rejects_foreign_models() {
        let model = SsamModel::new("not-a-diagram");
        assert!(from_ssam(&model).is_err());
    }

    #[test]
    fn ssam_model_is_valid() {
        let mut d = BlockDiagram::new("v");
        let v = d.add_block("V1", BlockKind::DcVoltageSource { volts: 5.0 });
        let g = d.add_block("G", BlockKind::Ground);
        d.connect(v, Port(1), g, Port(0)).unwrap();
        let model = to_ssam(&d);
        assert!(decisive_ssam::validate::is_valid(&model));
    }
}
