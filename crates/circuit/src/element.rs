//! Circuit element types — the analogue of Simulink's Simscape Foundation
//! electrical library (paper §VI-B).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A circuit node. Node `0` is always the ground reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The ground reference node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of the node (`0` = ground).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ground() {
            f.write_str("gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Handle to an element inside a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ElementId(pub(crate) u32);

impl ElementId {
    /// Raw index of the element in insertion order.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Shockley diode parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiodeParams {
    /// Saturation current in amperes.
    pub saturation_current: f64,
    /// Emission coefficient (ideality factor).
    pub emission: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        // A generic silicon diode: ~0.7 V drop at 100 mA.
        DiodeParams { saturation_current: 2e-13, emission: 1.0 }
    }
}

/// The body of a circuit element.
///
/// Each variant mirrors a Simscape Foundation block. The behavioural
/// [`ElementKind::Load`] stands in for complex parts (e.g. microcontrollers)
/// exactly like the paper's "create subsystems in Simulink and annotate them
/// to be the desired elements" workaround (paper §VI-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ElementKind {
    /// Ideal DC voltage source from `minus` to `plus`.
    VoltageSource {
        /// Source voltage in volts.
        volts: f64,
    },
    /// Ideal DC current source pushing current out of `plus`.
    CurrentSource {
        /// Source current in amperes.
        amps: f64,
    },
    /// Linear resistor.
    Resistor {
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Capacitor — an open circuit at DC, companion-modelled in transient.
    Capacitor {
        /// Capacitance in farads.
        farads: f64,
    },
    /// Inductor — a short circuit at DC, companion-modelled in transient.
    Inductor {
        /// Inductance in henries.
        henries: f64,
    },
    /// Shockley diode, anode = `plus`, cathode = `minus`.
    Diode(DiodeParams),
    /// Ideal switch.
    Switch {
        /// `true` if the switch conducts.
        closed: bool,
    },
    /// Series current sensor (an ideal 0 V source whose branch current is
    /// the reading). Mirrors Simscape's current sensor block.
    CurrentSensor,
    /// Voltage sensor measuring `v(plus) - v(minus)` without loading the
    /// circuit.
    VoltageSensor,
    /// Behavioural load with a brown-out threshold: draws `on_amps` whenever
    /// its terminal voltage exceeds `brownout_volts` (smoothly interpolated
    /// for Newton convergence) and shuts down below it. `fault_amps` is the
    /// current drawn when a *functional* fault (e.g. an MCU RAM failure) is
    /// injected.
    Load {
        /// Nominal operating current in amperes.
        on_amps: f64,
        /// Minimum supply voltage for operation, in volts.
        brownout_volts: f64,
        /// Current drawn when functionally faulted.
        fault_amps: f64,
        /// `true` once a functional fault has been injected.
        faulted: bool,
    },
}

impl ElementKind {
    /// A short human-readable tag, e.g. `"resistor"`.
    pub fn tag(&self) -> &'static str {
        match self {
            ElementKind::VoltageSource { .. } => "vsource",
            ElementKind::CurrentSource { .. } => "isource",
            ElementKind::Resistor { .. } => "resistor",
            ElementKind::Capacitor { .. } => "capacitor",
            ElementKind::Inductor { .. } => "inductor",
            ElementKind::Diode(_) => "diode",
            ElementKind::Switch { .. } => "switch",
            ElementKind::CurrentSensor => "current-sensor",
            ElementKind::VoltageSensor => "voltage-sensor",
            ElementKind::Load { .. } => "load",
        }
    }

    /// `true` if the element is a (current or voltage) sensor.
    pub fn is_sensor(&self) -> bool {
        matches!(self, ElementKind::CurrentSensor | ElementKind::VoltageSensor)
    }
}

/// A named two-terminal element instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Element {
    /// Instance name (e.g. `"D1"`).
    pub name: String,
    /// Positive terminal.
    pub plus: NodeId,
    /// Negative terminal.
    pub minus: NodeId,
    /// Element body.
    pub kind: ElementKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display() {
        assert_eq!(NodeId::GROUND.to_string(), "gnd");
        assert_eq!(NodeId(3).to_string(), "n3");
        assert!(NodeId::GROUND.is_ground());
    }

    #[test]
    fn kind_tags_and_sensor_check() {
        assert_eq!(ElementKind::CurrentSensor.tag(), "current-sensor");
        assert!(ElementKind::CurrentSensor.is_sensor());
        assert!(ElementKind::VoltageSensor.is_sensor());
        assert!(!ElementKind::Resistor { ohms: 1.0 }.is_sensor());
    }

    #[test]
    fn default_diode_params_are_physical() {
        let p = DiodeParams::default();
        assert!(p.saturation_current > 0.0);
        assert!(p.emission >= 1.0);
    }
}
