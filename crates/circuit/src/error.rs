//! Error types for circuit construction and simulation.

use std::fmt;

/// Errors produced while building or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The nodal matrix is singular — typically a floating subcircuit or a
    /// loop of ideal voltage sources.
    SingularMatrix {
        /// The pivot row at which elimination failed.
        row: usize,
    },
    /// Newton iteration failed to converge within the iteration budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// The final residual (max |Δv|).
        residual: f64,
    },
    /// An element references a node the circuit does not contain.
    UnknownNode {
        /// The offending node index.
        node: u32,
    },
    /// An operation referenced an element that does not exist.
    UnknownElement {
        /// The offending element index.
        element: u32,
    },
    /// A sensor reading was requested from a non-sensor element.
    NotASensor {
        /// Name of the element that is not a sensor.
        name: String,
    },
    /// A parameter was out of its physical range.
    InvalidParameter {
        /// Description of the violation.
        message: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::SingularMatrix { row } => {
                write!(
                    f,
                    "singular nodal matrix at pivot row {row} (floating node or source loop?)"
                )
            }
            CircuitError::NoConvergence { iterations, residual } => {
                write!(f, "newton iteration did not converge after {iterations} iterations (residual {residual:.3e})")
            }
            CircuitError::UnknownNode { node } => write!(f, "unknown node n{node}"),
            CircuitError::UnknownElement { element } => write!(f, "unknown element e{element}"),
            CircuitError::NotASensor { name } => write!(f, "element `{name}` is not a sensor"),
            CircuitError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// Convenient result alias for circuit operations.
pub type Result<T> = std::result::Result<T, CircuitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = CircuitError::SingularMatrix { row: 3 };
        assert!(e.to_string().contains("row 3"));
        let e = CircuitError::NoConvergence { iterations: 50, residual: 1.0 };
        assert!(e.to_string().contains("50"));
        let e = CircuitError::NotASensor { name: "R1".into() };
        assert!(e.to_string().contains("R1"));
    }
}
