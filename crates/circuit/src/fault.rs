//! Fault injection — the core primitive behind the paper's automated FMEA
//! (§IV-D1: "the failure injection is performed automatically based on the
//! failure modes of the components in the system design").

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::element::{ElementId, ElementKind};
use crate::error::{CircuitError, Result};
use crate::netlist::Circuit;

/// Resistance substituted for an *open* element, in ohms.
pub const OPEN_OHMS: f64 = 1e12;
/// Resistance substituted for a *shorted* element, in ohms.
pub const SHORT_OHMS: f64 = 1e-3;

/// A fault that can be injected into a circuit element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// The element becomes an open circuit (loss of function).
    Open,
    /// The element becomes a short circuit.
    Short,
    /// The element's primary parameter is scaled by the given factor
    /// (drift faults, e.g. a resistor doubling in value).
    ParamScale(f64),
    /// A functional (non-electrical) fault, e.g. an MCU RAM failure.
    /// Only behavioural loads accept it.
    Functional,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Open => f.write_str("open"),
            Fault::Short => f.write_str("short"),
            Fault::ParamScale(s) => write!(f, "param×{s}"),
            Fault::Functional => f.write_str("functional"),
        }
    }
}

impl Circuit {
    /// Returns a copy of the circuit with `fault` injected into `target`.
    ///
    /// Open/short faults replace the element with an extreme resistance, so
    /// the node set and all other element ids stay stable — readings before
    /// and after injection are directly comparable.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownElement`] for a bad id and
    /// [`CircuitError::InvalidParameter`] if the fault does not apply to the
    /// element kind (e.g. [`Fault::Functional`] on a resistor).
    pub fn with_fault(&self, target: ElementId, fault: Fault) -> Result<Circuit> {
        let mut faulted = self.clone();
        let element = faulted.element_mut(target)?;
        match fault {
            Fault::Open => element.kind = ElementKind::Resistor { ohms: OPEN_OHMS },
            Fault::Short => element.kind = ElementKind::Resistor { ohms: SHORT_OHMS },
            Fault::ParamScale(s) => {
                if !(s.is_finite() && s > 0.0) {
                    return Err(CircuitError::InvalidParameter {
                        message: format!("parameter scale must be positive and finite, got {s}"),
                    });
                }
                match &mut element.kind {
                    ElementKind::VoltageSource { volts } => *volts *= s,
                    ElementKind::CurrentSource { amps } => *amps *= s,
                    ElementKind::Resistor { ohms } => *ohms *= s,
                    ElementKind::Capacitor { farads } => *farads *= s,
                    ElementKind::Inductor { henries } => *henries *= s,
                    ElementKind::Load { on_amps, .. } => *on_amps *= s,
                    other => {
                        return Err(CircuitError::InvalidParameter {
                            message: format!("cannot scale parameter of a {}", other.tag()),
                        })
                    }
                }
            }
            Fault::Functional => match &mut element.kind {
                ElementKind::Load { faulted, .. } => *faulted = true,
                other => {
                    return Err(CircuitError::InvalidParameter {
                        message: format!(
                            "functional faults only apply to behavioural loads, not a {}",
                            other.tag()
                        ),
                    })
                }
            },
        }
        Ok(faulted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::NodeId;

    fn series_circuit() -> (Circuit, ElementId, ElementId, ElementId) {
        let mut c = Circuit::new("series");
        let top = c.node();
        let mid = c.node();
        let out = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 5.0).unwrap();
        let r1 = c.add_resistor("R1", top, mid, 10.0).unwrap();
        let cs = c.add_current_sensor("CS", mid, out).unwrap();
        let load = c.add_load("MC", out, NodeId::GROUND, 0.1, 3.0, 0.02).unwrap();
        (c, r1, cs, load)
    }

    #[test]
    fn open_fault_kills_the_reading() {
        let (c, r1, cs, _) = series_circuit();
        let nominal = c.sensor_reading(&c.dc().unwrap(), cs).unwrap();
        assert!((nominal - 0.1).abs() < 1e-4);
        let faulted = c.with_fault(r1, Fault::Open).unwrap();
        let after = faulted.sensor_reading(&faulted.dc().unwrap(), cs).unwrap();
        assert!(after.abs() < 1e-6, "open series resistor must cut the current, got {after}");
    }

    #[test]
    fn short_fault_keeps_regulated_load_current() {
        let (c, r1, cs, _) = series_circuit();
        let faulted = c.with_fault(r1, Fault::Short).unwrap();
        let after = faulted.sensor_reading(&faulted.dc().unwrap(), cs).unwrap();
        assert!((after - 0.1).abs() < 1e-4, "regulated load hides the short, got {after}");
    }

    #[test]
    fn functional_fault_changes_load_draw() {
        let (c, _, cs, load) = series_circuit();
        let faulted = c.with_fault(load, Fault::Functional).unwrap();
        let after = faulted.sensor_reading(&faulted.dc().unwrap(), cs).unwrap();
        assert!((after - 0.02).abs() < 1e-4, "faulted MCU draws fault_amps, got {after}");
    }

    #[test]
    fn functional_fault_rejected_on_passives() {
        let (c, r1, _, _) = series_circuit();
        assert!(matches!(
            c.with_fault(r1, Fault::Functional),
            Err(CircuitError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn param_scale_fault() {
        let (c, r1, cs, _) = series_circuit();
        // Scaling a series resistor by 1000x starves the regulated load below
        // its brown-out threshold.
        let faulted = c.with_fault(r1, Fault::ParamScale(1_000.0)).unwrap();
        let after = faulted.sensor_reading(&faulted.dc().unwrap(), cs).unwrap();
        assert!(after < 0.01, "starved load shuts down, got {after}");
        assert!(c.with_fault(r1, Fault::ParamScale(-1.0)).is_err());
    }

    #[test]
    fn injection_does_not_mutate_original() {
        let (c, r1, _, _) = series_circuit();
        let before = c.clone();
        let _ = c.with_fault(r1, Fault::Open).unwrap();
        assert_eq!(c, before);
    }

    #[test]
    fn fault_display() {
        assert_eq!(Fault::Open.to_string(), "open");
        assert_eq!(Fault::Short.to_string(), "short");
        assert_eq!(Fault::Functional.to_string(), "functional");
        assert_eq!(Fault::ParamScale(2.0).to_string(), "param×2");
    }

    #[test]
    fn unknown_element_rejected() {
        let (c, ..) = series_circuit();
        assert!(c.with_fault(ElementId(99), Fault::Open).is_err());
    }
}
