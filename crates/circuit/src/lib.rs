//! # decisive-circuit
//!
//! An analog circuit simulator with first-class **fault injection** — the
//! Matlab/Simulink + Simscape substitute used by the DECISIVE reproduction.
//!
//! The paper's automated FMEA invokes Simulink's `simulate()` before and
//! after injecting each failure mode and compares the sensor readings
//! (§IV-D1). This crate provides exactly that observable:
//!
//! * a block/netlist model covering the Simscape Foundation electrical
//!   blocks the paper analyses (sources, R/L/C, diode, switch, sensors) plus
//!   a behavioural load standing in for annotated subsystems such as
//!   microcontrollers,
//! * a Modified-Nodal-Analysis **DC operating point** solver with Newton
//!   iteration for the nonlinear elements,
//! * a backward-Euler **transient** solver, and
//! * [`Fault`] injection that preserves node/element identity so readings
//!   stay comparable.
//!
//! ## Example
//!
//! Inject an open fault into a series diode and watch the sensor reading
//! collapse:
//!
//! ```
//! use decisive_circuit::{Circuit, Fault, NodeId};
//!
//! # fn main() -> Result<(), decisive_circuit::CircuitError> {
//! let mut c = Circuit::new("rail");
//! let vin = c.node();
//! let vout = c.node();
//! let sense = c.node();
//! c.add_voltage_source("DC1", vin, NodeId::GROUND, 5.0)?;
//! let d1 = c.add_diode("D1", vin, vout)?;
//! let cs1 = c.add_current_sensor("CS1", vout, sense)?;
//! c.add_resistor("RL", sense, NodeId::GROUND, 43.0)?;
//! let nominal = c.sensor_reading(&c.dc()?, cs1)?;
//! let faulted = c.with_fault(d1, Fault::Open)?;
//! let after = faulted.sensor_reading(&faulted.dc()?, cs1)?;
//! assert!(after.abs() < 0.01 * nominal.abs());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod element;
mod error;
mod fault;
mod mna;
mod netlist;
mod recovery;
mod solve;
mod sparse;
mod transient;
mod workspace;

pub use element::{DiodeParams, Element, ElementId, ElementKind, NodeId};
pub use error::{CircuitError, Result};
pub use fault::{Fault, OPEN_OHMS, SHORT_OHMS};
pub use mna::DcSolution;
pub use netlist::Circuit;
pub use recovery::{SolveDiagnostics, SolveStrategy, SolverKernel, SolverOptions};
pub use transient::TransientSolution;
pub use workspace::SolverWorkspace;
