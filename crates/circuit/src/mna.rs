//! Modified Nodal Analysis: matrix stamping, Newton iteration and the DC
//! operating-point solution.
//!
//! The unknown vector is `[v_1 … v_N, i_b1 … i_bM]` — node voltages
//! (excluding ground) followed by branch currents for elements that need
//! one (voltage sources, current sensors, and inductors at DC, where they
//! behave as 0 V sources).

use std::collections::HashMap;

use crate::element::{DiodeParams, ElementId, ElementKind, NodeId};
use crate::error::{CircuitError, Result};
use crate::netlist::Circuit;
use crate::solve::Dense;

/// Thermal voltage kT/q at ~300 K, in volts.
pub(crate) const VT: f64 = 0.025852;
/// Minimum conductance from every node to ground, keeping floating nodes
/// solvable (standard SPICE practice).
pub(crate) const GMIN: f64 = 1e-9;
/// Conductance of a shorted element / closed switch.
pub(crate) const G_SHORT: f64 = 1e6;
/// Conductance of an open element / open switch.
pub(crate) const G_OPEN: f64 = 1e-12;
/// Smoothing width of the behavioural load's brown-out transition, in volts.
const LOAD_SMOOTH: f64 = 0.05;

pub(crate) const MAX_NEWTON: usize = 400;
pub(crate) const V_TOL: f64 = 1e-9;

/// Tunable knobs of a single Newton run.
///
/// The recovery ladder in [`crate::recovery`] differs from the plain solver
/// only through these settings: a relaxed `gmin`, a scaled-down source
/// vector, or a damped junction update. With [`NewtonSettings::plain`] the
/// iteration is bitwise identical to the historical solver.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NewtonSettings {
    /// Iteration budget for this run.
    pub(crate) max_iterations: usize,
    /// Conductance stamped from every node to ground.
    pub(crate) gmin: f64,
    /// Scale factor applied to every independent source (source stepping).
    pub(crate) source_scale: f64,
    /// Junction-update relaxation in `(0, 1]`; `1.0` applies the full
    /// limited step.
    pub(crate) damping: f64,
}

impl NewtonSettings {
    /// The historical solver configuration: nominal gmin, full sources,
    /// undamped updates.
    pub(crate) fn plain(max_iterations: usize) -> NewtonSettings {
        NewtonSettings { max_iterations, gmin: GMIN, source_scale: 1.0, damping: 1.0 }
    }
}

/// Result of one Newton run under a given [`NewtonSettings`].
pub(crate) enum NewtonOutcome {
    /// Converged to the unknown vector `x`.
    Converged { x: Vec<f64>, iterations: usize, residual: f64 },
    /// Spent the whole iteration budget without converging; `junctions`
    /// retains the final linearization state for warm-started retries.
    Exhausted { iterations: usize, residual: f64 },
    /// The linear solve failed hard (e.g. a singular matrix). Retrying with
    /// different settings cannot help — this is a structural modelling bug.
    Failed(CircuitError),
}

/// Which analysis the layout is built for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Mode {
    /// DC operating point: capacitors open, inductors short (0 V sources).
    Dc,
    /// Backward-Euler transient step: reactive elements use companions.
    Transient,
}

/// Variable layout of the MNA system for a given circuit and mode.
#[derive(Debug, Clone)]
pub(crate) struct Layout {
    pub(crate) n_nodes: usize,
    pub(crate) dim: usize,
    branch: HashMap<ElementId, usize>,
}

impl Layout {
    pub(crate) fn build(circuit: &Circuit, mode: Mode) -> Layout {
        let n_nodes = circuit.node_count() - 1; // exclude ground
        let mut branch = HashMap::new();
        let mut next = n_nodes;
        for (id, e) in circuit.elements() {
            let needs_branch = matches!(e.kind, ElementKind::VoltageSource { .. })
                || matches!(e.kind, ElementKind::CurrentSensor)
                || (mode == Mode::Dc && matches!(e.kind, ElementKind::Inductor { .. }));
            if needs_branch {
                branch.insert(id, next);
                next += 1;
            }
        }
        Layout { n_nodes, dim: next, branch }
    }

    pub(crate) fn branch_of(&self, id: ElementId) -> Option<usize> {
        self.branch.get(&id).copied()
    }

    pub(crate) fn branch_map(&self) -> &HashMap<ElementId, usize> {
        &self.branch
    }
}

/// Companion-model inputs for a backward-Euler transient step.
pub(crate) struct Companions<'a> {
    /// Step size in seconds.
    pub(crate) h: f64,
    /// Node voltages (index 0 = ground) at the previous time point.
    pub(crate) prev_v: &'a [f64],
    /// Inductor branch currents at the previous time point.
    pub(crate) inductor_i: &'a HashMap<ElementId, f64>,
}

fn exp_lim(x: f64) -> f64 {
    x.min(70.0).exp()
}

fn diode_iv(p: &DiodeParams, v: f64) -> (f64, f64) {
    let nvt = p.emission * VT;
    let e = exp_lim(v / nvt);
    let i = p.saturation_current * (e - 1.0);
    let g = (p.saturation_current / nvt * e).max(GMIN);
    (i, g)
}

fn load_iv(
    on_amps: f64,
    brownout_volts: f64,
    fault_amps: f64,
    faulted: bool,
    v: f64,
) -> (f64, f64) {
    let amps = if faulted { fault_amps } else { on_amps };
    let s = 1.0 / (1.0 + exp_lim(-(v - brownout_volts) / LOAD_SMOOTH));
    let i = amps * s;
    let g = (amps * s * (1.0 - s) / LOAD_SMOOTH).max(GMIN);
    (i, g)
}

/// SPICE3-style junction voltage limiting, preventing Newton overshoot on
/// the diode exponential.
fn pnjlim(vnew: f64, vold: f64, vt: f64, vcrit: f64) -> f64 {
    if vnew > vcrit && (vnew - vold).abs() > 2.0 * vt {
        if vold > 0.0 {
            let arg = 1.0 + (vnew - vold) / vt;
            if arg > 0.0 {
                vold + vt * arg.ln()
            } else {
                vcrit
            }
        } else {
            vt * (vnew / vt).max(1e-30).ln()
        }
    } else {
        vnew
    }
}

fn vcrit(p: &DiodeParams) -> f64 {
    let nvt = p.emission * VT;
    nvt * (nvt / (std::f64::consts::SQRT_2 * p.saturation_current)).ln()
}

/// Destination of matrix stamps. The same stamping code serves the dense
/// oracle ([`Dense`]), symbolic pattern recording ([`PatternRecorder`]),
/// and slot-indexed sparse assembly ([`SlotSink`]) — which is what makes
/// the recorded pattern provably consistent with later numeric stamps.
pub(crate) trait MatSink {
    fn add(&mut self, r: usize, c: usize, v: f64);
}

/// Records the `(row, col)` coordinate sequence of an assembly without
/// touching values: the input to [`crate::sparse::CscPattern::build`].
struct PatternRecorder {
    triplets: Vec<(u32, u32)>,
}

impl MatSink for PatternRecorder {
    #[inline]
    fn add(&mut self, r: usize, c: usize, _v: f64) {
        self.triplets.push((r as u32, c as u32));
    }
}

/// Accumulates stamps straight into a CSC value vector through the
/// `slot_of` map, replaying the exact stamp order the pattern was built
/// from. The cursor is repositioned per element so linear-only and
/// nonlinear-only passes stay aligned with the recorded sequence.
struct SlotSink<'a> {
    values: &'a mut [f64],
    slot_of: &'a [u32],
    cursor: usize,
}

impl MatSink for SlotSink<'_> {
    #[inline]
    fn add(&mut self, _r: usize, _c: usize, v: f64) {
        let slot = self.slot_of[self.cursor];
        self.cursor += 1;
        self.values[slot as usize] += v;
    }
}

struct Stamper<'a, M: MatSink> {
    a: &'a mut M,
    b: &'a mut [f64],
}

impl<M: MatSink> Stamper<'_, M> {
    fn var(node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.raw() as usize - 1)
        }
    }

    fn conductance(&mut self, plus: NodeId, minus: NodeId, g: f64) {
        if let Some(p) = Self::var(plus) {
            self.a.add(p, p, g);
        }
        if let Some(m) = Self::var(minus) {
            self.a.add(m, m, g);
        }
        if let (Some(p), Some(m)) = (Self::var(plus), Self::var(minus)) {
            self.a.add(p, m, -g);
            self.a.add(m, p, -g);
        }
    }

    /// Current source of `i` amps flowing from `plus` through the element to
    /// `minus`.
    fn current(&mut self, plus: NodeId, minus: NodeId, i: f64) {
        if let Some(p) = Self::var(plus) {
            self.b[p] -= i;
        }
        if let Some(m) = Self::var(minus) {
            self.b[m] += i;
        }
    }

    fn voltage_source(&mut self, plus: NodeId, minus: NodeId, branch: usize, volts: f64) {
        if let Some(p) = Self::var(plus) {
            self.a.add(p, branch, 1.0);
            self.a.add(branch, p, 1.0);
        }
        if let Some(m) = Self::var(minus) {
            self.a.add(m, branch, -1.0);
            self.a.add(branch, m, -1.0);
        }
        self.b[branch] += volts;
    }
}

/// Junction linearization points for the nonlinear elements, indexed by
/// element id.
pub(crate) type Junctions = HashMap<ElementId, f64>;

/// Stamps one element. Shared verbatim by the dense assembly, the pattern
/// recording pass, and the sparse linear/nonlinear passes — the stamp
/// *sequence* for a given element is a pure function of its kind shape and
/// node connectivity, never of parameter values, which is what lets one
/// recorded pattern serve every Newton iteration and same-structure fault
/// injection.
fn stamp_element<M: MatSink>(
    st: &mut Stamper<'_, M>,
    id: ElementId,
    e: &crate::element::Element,
    layout: &Layout,
    junctions: &Junctions,
    companions: Option<&Companions<'_>>,
    settings: &NewtonSettings,
) {
    match &e.kind {
        ElementKind::VoltageSource { volts } => {
            let br = layout.branch_of(id).expect("vsource has a branch var");
            st.voltage_source(e.plus, e.minus, br, volts * settings.source_scale);
        }
        ElementKind::CurrentSensor => {
            let br = layout.branch_of(id).expect("sensor has a branch var");
            st.voltage_source(e.plus, e.minus, br, 0.0);
        }
        ElementKind::CurrentSource { amps } => {
            st.current(e.plus, e.minus, amps * settings.source_scale);
        }
        ElementKind::Resistor { ohms } => st.conductance(e.plus, e.minus, 1.0 / ohms),
        ElementKind::Switch { closed } => {
            st.conductance(e.plus, e.minus, if *closed { G_SHORT } else { G_OPEN });
        }
        ElementKind::VoltageSensor => {} // does not load the circuit
        ElementKind::Capacitor { farads } => {
            if let Some(c) = companions {
                let g = farads / c.h;
                let v_prev = node_v(c.prev_v, e.plus) - node_v(c.prev_v, e.minus);
                st.conductance(e.plus, e.minus, g);
                st.current(e.plus, e.minus, -g * v_prev);
            }
            // DC: open circuit — only gmin applies.
        }
        ElementKind::Inductor { henries } => {
            if let Some(c) = companions {
                let g = c.h / henries;
                let i_prev = c.inductor_i.get(&id).copied().unwrap_or(0.0);
                st.conductance(e.plus, e.minus, g);
                st.current(e.plus, e.minus, i_prev);
            } else {
                let br = layout.branch_of(id).expect("dc inductor has a branch var");
                st.voltage_source(e.plus, e.minus, br, 0.0);
            }
        }
        ElementKind::Diode(p) => {
            let v0 = junctions.get(&id).copied().unwrap_or(0.0);
            let (i0, g) = diode_iv(p, v0);
            let ieq = i0 - g * v0;
            st.conductance(e.plus, e.minus, g);
            st.current(e.plus, e.minus, ieq);
        }
        ElementKind::Load { on_amps, brownout_volts, fault_amps, faulted } => {
            let v0 = junctions.get(&id).copied().unwrap_or(0.0);
            let (i0, g) = load_iv(*on_amps, *brownout_volts, *fault_amps, *faulted, v0);
            let ieq = i0 - g * v0;
            st.conductance(e.plus, e.minus, g);
            st.current(e.plus, e.minus, ieq);
        }
    }
}

/// Whether an element is re-linearized (and therefore re-stamped) every
/// Newton iteration.
pub(crate) fn is_nonlinear(kind: &ElementKind) -> bool {
    matches!(kind, ElementKind::Diode(_) | ElementKind::Load { .. })
}

fn assemble(
    circuit: &Circuit,
    layout: &Layout,
    junctions: &Junctions,
    companions: Option<&Companions<'_>>,
    settings: &NewtonSettings,
) -> (Dense, Vec<f64>) {
    let mut a = Dense::new(layout.dim);
    let mut b = vec![0.0; layout.dim];
    let mut st = Stamper { a: &mut a, b: &mut b };
    // gmin on every non-ground node.
    for n in 0..layout.n_nodes {
        st.a.add(n, n, settings.gmin);
    }
    for (id, e) in circuit.elements() {
        stamp_element(&mut st, id, e, layout, junctions, companions, settings);
    }
    (a, b)
}

/// The symbolic side of the sparse kernel: the CSC nonzero pattern of a
/// netlist structure plus the maps needed to refill it — `slot_of` (k-th
/// stamp in the assembly sequence → CSC value slot) and per-element stamp
/// ranges. Computed once per structure and shared by every Newton
/// iteration, ladder rung, and same-shape fault injection.
#[derive(Debug, Clone)]
pub(crate) struct MatrixLayout {
    pub(crate) pattern: crate::sparse::CscPattern,
    slot_of: Vec<u32>,
    /// Triplet-index range of each element, by insertion position.
    elem_ranges: Vec<(u32, u32)>,
    pub(crate) dim: usize,
    /// Fill-reducing symmetric permutation (`perm[original] = permuted`):
    /// the pattern and value slots live in permuted coordinates, so the
    /// solve boundary permutes the RHS in and the solution back out.
    pub(crate) perm: Vec<u32>,
}

/// Records the stamp pattern of `circuit` under `mode`. Values are
/// irrelevant: the recorder sees the same `add` sequence the numeric
/// passes will emit.
pub(crate) fn build_matrix_layout(circuit: &Circuit, layout: &Layout, mode: Mode) -> MatrixLayout {
    // Dummy companions so the transient stamp sequence is exercised; the
    // values never reach the pattern.
    let zeros = vec![0.0; circuit.node_count()];
    let no_currents = HashMap::new();
    let dummy = Companions { h: 1.0, prev_v: &zeros, inductor_i: &no_currents };
    let companions = match mode {
        Mode::Dc => None,
        Mode::Transient => Some(&dummy),
    };
    let settings = NewtonSettings::plain(1);
    let junctions = Junctions::new();
    let mut rec = PatternRecorder { triplets: Vec::new() };
    let mut b = vec![0.0; layout.dim];
    {
        let st = Stamper { a: &mut rec, b: &mut b };
        for n in 0..layout.n_nodes {
            st.a.add(n, n, GMIN);
        }
    }
    let mut elem_ranges = Vec::new();
    for (id, e) in circuit.elements() {
        let start = rec.triplets.len() as u32;
        let mut st = Stamper { a: &mut rec, b: &mut b };
        stamp_element(&mut st, id, e, layout, &junctions, companions, &settings);
        elem_ranges.push((start, rec.triplets.len() as u32));
    }
    // Remap the stamp coordinates through a fill-reducing ordering before
    // building the pattern: `slot_of` then scatters straight into permuted
    // space and the numeric passes never see the permutation.
    let perm = crate::sparse::rcm_order(layout.dim, &rec.triplets);
    let permuted: Vec<(u32, u32)> =
        rec.triplets.iter().map(|&(r, c)| (perm[r as usize], perm[c as usize])).collect();
    let (pattern, slot_of) = crate::sparse::CscPattern::build(layout.dim, &permuted);
    MatrixLayout { pattern, slot_of, elem_ranges, dim: layout.dim, perm }
}

/// Assembles the *linear* part of the system (everything except diodes and
/// loads) into the CSC value vector + RHS: the per-rung baseline that each
/// Newton iteration copies and tops up with [`restamp_nonlinear`].
pub(crate) fn assemble_sparse_linear(
    circuit: &Circuit,
    layout: &Layout,
    ml: &MatrixLayout,
    companions: Option<&Companions<'_>>,
    settings: &NewtonSettings,
    values: &mut [f64],
    b: &mut [f64],
) {
    values.fill(0.0);
    b.fill(0.0);
    let junctions = Junctions::new();
    {
        let mut sink = SlotSink { values, slot_of: &ml.slot_of, cursor: 0 };
        let st = Stamper { a: &mut sink, b };
        for n in 0..layout.n_nodes {
            st.a.add(n, n, settings.gmin);
        }
    }
    for (idx, (id, e)) in circuit.elements().enumerate() {
        if is_nonlinear(&e.kind) {
            continue;
        }
        let mut sink =
            SlotSink { values, slot_of: &ml.slot_of, cursor: ml.elem_ranges[idx].0 as usize };
        let mut st = Stamper { a: &mut sink, b };
        stamp_element(&mut st, id, e, layout, &junctions, companions, settings);
    }
}

/// Stamps only the nonlinear elements at their current linearization
/// points on top of a copied linear baseline. Together with the copy this
/// executes the same per-slot accumulation the full assembly would,
/// restricted to the stamps that actually change between iterations.
#[allow(clippy::too_many_arguments)] // Mirrors `assemble_sparse_linear`'s stamping context.
pub(crate) fn restamp_nonlinear(
    circuit: &Circuit,
    layout: &Layout,
    ml: &MatrixLayout,
    junctions: &Junctions,
    companions: Option<&Companions<'_>>,
    settings: &NewtonSettings,
    values: &mut [f64],
    b: &mut [f64],
) {
    for (idx, (id, e)) in circuit.elements().enumerate() {
        if !is_nonlinear(&e.kind) {
            continue;
        }
        let mut sink =
            SlotSink { values, slot_of: &ml.slot_of, cursor: ml.elem_ranges[idx].0 as usize };
        let mut st = Stamper { a: &mut sink, b };
        stamp_element(&mut st, id, e, layout, junctions, companions, settings);
    }
}

fn node_v(full_v: &[f64], node: NodeId) -> f64 {
    full_v[node.raw() as usize]
}

/// Cold-start junction linearization points for a fresh Newton run.
pub(crate) fn initial_junctions(circuit: &Circuit) -> Junctions {
    let mut junctions: Junctions = HashMap::new();
    // Warm-start diodes near their conduction knee.
    for (id, e) in circuit.elements() {
        match &e.kind {
            ElementKind::Diode(p) => {
                junctions.insert(id, vcrit(p).min(0.8));
            }
            ElementKind::Load { .. } => {
                junctions.insert(id, 0.0);
            }
            _ => {}
        }
    }
    junctions
}

/// Relaxes a limited junction update: full step when `damping >= 1.0`
/// (bitwise identical to the undamped solver), partial step otherwise.
#[inline]
fn damp(vold: f64, vlim: f64, damping: f64) -> f64 {
    if damping >= 1.0 {
        vlim
    } else {
        vold + damping * (vlim - vold)
    }
}

/// One linearize-assemble-solve step of the Newton iteration, abstracted
/// over the kernel: the dense oracle re-stamps and re-factorizes from
/// scratch each call, the sparse stage (in [`crate::workspace`]) refills a
/// shared pattern and replays its factorization.
pub(crate) trait LinearStage {
    fn assemble_and_solve(
        &mut self,
        circuit: &Circuit,
        layout: &Layout,
        junctions: &Junctions,
        companions: Option<&Companions<'_>>,
        settings: &NewtonSettings,
    ) -> Result<Vec<f64>>;
}

/// The historical dense path, kept as the differential-testing oracle.
pub(crate) struct DenseStage;

impl LinearStage for DenseStage {
    fn assemble_and_solve(
        &mut self,
        circuit: &Circuit,
        layout: &Layout,
        junctions: &Junctions,
        companions: Option<&Companions<'_>>,
        settings: &NewtonSettings,
    ) -> Result<Vec<f64>> {
        let (a, b) = assemble(circuit, layout, junctions, companions, settings);
        a.solve(b)
    }
}

/// Runs one Newton loop for one operating point (DC or one transient step)
/// under the given settings, mutating `junctions` in place so callers can
/// warm-start follow-up runs.
pub(crate) fn newton_iterate(
    circuit: &Circuit,
    layout: &Layout,
    companions: Option<&Companions<'_>>,
    settings: &NewtonSettings,
    junctions: &mut Junctions,
    stage: &mut dyn LinearStage,
) -> NewtonOutcome {
    let mut last_x: Option<Vec<f64>> = None;
    let mut residual = f64::INFINITY;
    for iteration in 0..settings.max_iterations {
        let x = match stage.assemble_and_solve(circuit, layout, junctions, companions, settings) {
            Ok(x) => x,
            Err(e) => return NewtonOutcome::Failed(e),
        };
        let mut max_delta: f64 = 0.0;
        for (id, e) in circuit.elements() {
            let vd = x_node(&x, e.plus) - x_node(&x, e.minus);
            match &e.kind {
                ElementKind::Diode(p) => {
                    let vold = junctions[&id];
                    let vlim = pnjlim(vd, vold, p.emission * VT, vcrit(p));
                    let vnew = damp(vold, vlim, settings.damping);
                    max_delta = max_delta.max((vnew - vold).abs());
                    junctions.insert(id, vnew);
                }
                ElementKind::Load { .. } => {
                    // Limit the linearization step: the brown-out sigmoid is
                    // nearly flat away from its threshold, so an unlimited
                    // Newton step oscillates between the on and off plateaus.
                    let vold = junctions[&id];
                    let vlim = vold + (vd - vold).clamp(-0.5, 0.5);
                    let vnew = damp(vold, vlim, settings.damping);
                    max_delta = max_delta.max((vnew - vold).abs());
                    junctions.insert(id, vnew);
                }
                _ => {}
            }
        }
        if let Some(prev) = &last_x {
            for (a, b) in prev.iter().zip(x.iter()) {
                max_delta = max_delta.max((a - b).abs());
            }
        }
        // The residual reported to diagnostics is the last update magnitude:
        // how far the iteration still was from its fixed point.
        residual = max_delta;
        let converged = last_x.is_some() && max_delta < V_TOL;
        last_x = Some(x);
        if converged {
            return NewtonOutcome::Converged {
                x: last_x.expect("just set"),
                iterations: iteration + 1,
                residual,
            };
        }
    }
    NewtonOutcome::Exhausted { iterations: settings.max_iterations, residual }
}

fn x_node(x: &[f64], node: NodeId) -> f64 {
    if node.is_ground() {
        0.0
    } else {
        x[node.raw() as usize - 1]
    }
}

/// A solved operating point: node voltages and branch currents.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    n_nodes: usize,
    x: Vec<f64>,
    branch: HashMap<ElementId, usize>,
}

impl DcSolution {
    pub(crate) fn new(layout: &Layout, x: Vec<f64>) -> Self {
        DcSolution { n_nodes: layout.n_nodes, x, branch: layout.branch_map().clone() }
    }

    /// Voltage of `node` relative to ground.
    pub fn voltage(&self, node: NodeId) -> f64 {
        x_node(&self.x, node)
    }

    /// All node voltages including ground at index 0.
    pub fn node_voltages(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.n_nodes + 1);
        v.push(0.0);
        v.extend_from_slice(&self.x[..self.n_nodes]);
        v
    }

    pub(crate) fn branch_current(&self, id: ElementId) -> Option<f64> {
        self.branch.get(&id).map(|&i| self.x[i])
    }
}

impl Circuit {
    /// Computes the DC operating point (capacitors open, inductors short).
    ///
    /// Plain Newton is tried first; if it fails to converge, the full
    /// recovery ladder of [`Circuit::dc_with_options`] is walked with the
    /// default [`crate::SolverOptions`] before giving up.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularMatrix`] for ill-posed circuits and
    /// [`CircuitError::NoConvergence`] if every rung of the recovery ladder
    /// fails.
    pub fn dc(&self) -> Result<DcSolution> {
        self.dc_with_diagnostics().map(|(sol, _)| sol)
    }

    /// Current through element `id` at the given operating point, measured
    /// from `plus` to `minus` through the element.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownElement`] for out-of-range ids.
    pub fn element_current(&self, sol: &DcSolution, id: ElementId) -> Result<f64> {
        let e = self.element(id)?;
        let vd = sol.voltage(e.plus) - sol.voltage(e.minus);
        Ok(match &e.kind {
            ElementKind::VoltageSource { .. } | ElementKind::CurrentSensor => {
                sol.branch_current(id).unwrap_or(0.0)
            }
            ElementKind::Inductor { .. } => sol.branch_current(id).unwrap_or(0.0),
            ElementKind::CurrentSource { amps } => *amps,
            ElementKind::Resistor { ohms } => vd / ohms,
            ElementKind::Capacitor { .. } => 0.0,
            ElementKind::Switch { closed } => vd * if *closed { G_SHORT } else { G_OPEN },
            ElementKind::VoltageSensor => 0.0,
            ElementKind::Diode(p) => diode_iv(p, vd).0,
            ElementKind::Load { on_amps, brownout_volts, fault_amps, faulted } => {
                load_iv(*on_amps, *brownout_volts, *fault_amps, *faulted, vd).0
            }
        })
    }

    /// The reading of a sensor element: branch current for current sensors,
    /// terminal voltage difference for voltage sensors.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotASensor`] if `id` is not a sensor.
    pub fn sensor_reading(&self, sol: &DcSolution, id: ElementId) -> Result<f64> {
        let e = self.element(id)?;
        match e.kind {
            ElementKind::CurrentSensor => Ok(sol.branch_current(id).unwrap_or(0.0)),
            ElementKind::VoltageSensor => Ok(sol.voltage(e.plus) - sol.voltage(e.minus)),
            _ => Err(CircuitError::NotASensor { name: e.name.clone() }),
        }
    }

    /// Readings of every sensor in the circuit, in insertion order.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Circuit::sensor_reading`].
    pub fn all_sensor_readings(&self, sol: &DcSolution) -> Result<Vec<(ElementId, f64)>> {
        self.sensors().map(|(id, _)| self.sensor_reading(sol, id).map(|r| (id, r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::NodeId;

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new("div");
        let top = c.node();
        let mid = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 12.0).unwrap();
        c.add_resistor("R1", top, mid, 2_000.0).unwrap();
        c.add_resistor("R2", mid, NodeId::GROUND, 1_000.0).unwrap();
        let sol = c.dc().unwrap();
        assert!((sol.voltage(top) - 12.0).abs() < 1e-6);
        assert!((sol.voltage(mid) - 4.0).abs() < 1e-4);
    }

    #[test]
    fn vsource_current_is_negative_when_delivering() {
        let mut c = Circuit::new("src");
        let top = c.node();
        let v = c.add_voltage_source("V1", top, NodeId::GROUND, 10.0).unwrap();
        c.add_resistor("R", top, NodeId::GROUND, 1_000.0).unwrap();
        let sol = c.dc().unwrap();
        let i = c.element_current(&sol, v).unwrap();
        assert!(
            (i + 0.01).abs() < 1e-6,
            "SPICE convention: delivering source has negative current, got {i}"
        );
    }

    #[test]
    fn current_sensor_reads_series_current() {
        let mut c = Circuit::new("cs");
        let top = c.node();
        let mid = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 5.0).unwrap();
        let cs = c.add_current_sensor("CS1", top, mid).unwrap();
        c.add_resistor("R", mid, NodeId::GROUND, 50.0).unwrap();
        let sol = c.dc().unwrap();
        let reading = c.sensor_reading(&sol, cs).unwrap();
        assert!((reading - 0.1).abs() < 1e-6);
    }

    #[test]
    fn diode_drops_about_700mv() {
        let mut c = Circuit::new("d");
        let top = c.node();
        let out = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 5.0).unwrap();
        c.add_diode("D1", top, out).unwrap();
        c.add_resistor("R", out, NodeId::GROUND, 43.0).unwrap();
        let sol = c.dc().unwrap();
        let drop = sol.voltage(top) - sol.voltage(out);
        assert!((0.5..0.95).contains(&drop), "diode drop {drop} outside silicon range");
    }

    #[test]
    fn reverse_diode_blocks() {
        let mut c = Circuit::new("rev");
        let top = c.node();
        let out = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 5.0).unwrap();
        c.add_diode("D1", out, top).unwrap(); // reversed
        c.add_resistor("R", out, NodeId::GROUND, 100.0).unwrap();
        let sol = c.dc().unwrap();
        assert!(
            sol.voltage(out).abs() < 1e-3,
            "reverse diode should block, out = {}",
            sol.voltage(out)
        );
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut c = Circuit::new("l");
        let top = c.node();
        let mid = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 5.0).unwrap();
        let l = c.add_inductor("L1", top, mid, 1e-3).unwrap();
        c.add_resistor("R", mid, NodeId::GROUND, 100.0).unwrap();
        let sol = c.dc().unwrap();
        assert!((sol.voltage(mid) - 5.0).abs() < 1e-6);
        let i = c.element_current(&sol, l).unwrap();
        assert!((i - 0.05).abs() < 1e-6);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut c = Circuit::new("c");
        let top = c.node();
        let mid = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 5.0).unwrap();
        c.add_resistor("R", top, mid, 1_000.0).unwrap();
        c.add_capacitor("C1", mid, NodeId::GROUND, 1e-6).unwrap();
        let sol = c.dc().unwrap();
        // No DC path to ground except gmin: mid floats to the source voltage.
        assert!((sol.voltage(mid) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn brownout_load_draws_nominal_current_when_powered() {
        let mut c = Circuit::new("load");
        let top = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 5.0).unwrap();
        let load = c.add_load("MC1", top, NodeId::GROUND, 0.1, 3.0, 0.02).unwrap();
        let sol = c.dc().unwrap();
        let i = c.element_current(&sol, load).unwrap();
        assert!((i - 0.1).abs() < 1e-6, "load current {i}");
    }

    #[test]
    fn brownout_load_shuts_down_below_threshold() {
        let mut c = Circuit::new("bo");
        let top = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 1.0).unwrap();
        let load = c.add_load("MC1", top, NodeId::GROUND, 0.1, 3.0, 0.02).unwrap();
        let sol = c.dc().unwrap();
        let i = c.element_current(&sol, load).unwrap();
        assert!(i < 1e-6, "load should be off at 1 V, draws {i}");
    }

    #[test]
    fn floating_node_is_kept_solvable_by_gmin() {
        let mut c = Circuit::new("float");
        let a = c.node();
        let b = c.node();
        c.add_voltage_source("V1", a, NodeId::GROUND, 5.0).unwrap();
        c.add_resistor("R", a, b, 1_000.0).unwrap();
        // b is otherwise floating.
        let sol = c.dc().unwrap();
        assert!((sol.voltage(b) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn voltage_sensor_does_not_load() {
        let mut c = Circuit::new("vs");
        let top = c.node();
        let mid = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 10.0).unwrap();
        c.add_resistor("R1", top, mid, 1_000.0).unwrap();
        c.add_resistor("R2", mid, NodeId::GROUND, 1_000.0).unwrap();
        let vs = c.add_voltage_sensor("VS1", mid, NodeId::GROUND).unwrap();
        let sol = c.dc().unwrap();
        assert!((c.sensor_reading(&sol, vs).unwrap() - 5.0).abs() < 1e-4);
    }

    #[test]
    fn sensor_reading_rejects_non_sensor() {
        let mut c = Circuit::new("ns");
        let top = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 1.0).unwrap();
        let r = c.add_resistor("R", top, NodeId::GROUND, 1.0).unwrap();
        let sol = c.dc().unwrap();
        assert!(matches!(c.sensor_reading(&sol, r), Err(CircuitError::NotASensor { .. })));
    }

    #[test]
    fn source_loop_is_singular() {
        let mut c = Circuit::new("loop");
        let a = c.node();
        c.add_voltage_source("V1", a, NodeId::GROUND, 5.0).unwrap();
        c.add_voltage_source("V2", a, NodeId::GROUND, 3.0).unwrap();
        assert!(matches!(c.dc(), Err(CircuitError::SingularMatrix { .. })));
    }
}
