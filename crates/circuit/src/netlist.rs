//! The [`Circuit`] netlist: nodes, elements and the builder API.

use serde::{Deserialize, Serialize};

use crate::element::{DiodeParams, Element, ElementId, ElementKind, NodeId};
use crate::error::{CircuitError, Result};

/// A flat netlist of two-terminal elements over a set of nodes.
///
/// Node [`NodeId::GROUND`] exists from the start; create further nodes with
/// [`Circuit::node`].
///
/// # Examples
///
/// A resistive divider:
///
/// ```
/// use decisive_circuit::{Circuit, NodeId};
///
/// # fn main() -> Result<(), decisive_circuit::CircuitError> {
/// let mut c = Circuit::new("divider");
/// let top = c.node();
/// let mid = c.node();
/// c.add_voltage_source("V1", top, NodeId::GROUND, 10.0)?;
/// c.add_resistor("R1", top, mid, 1_000.0)?;
/// c.add_resistor("R2", mid, NodeId::GROUND, 1_000.0)?;
/// let sol = c.dc()?;
/// assert!((sol.voltage(mid) - 5.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    node_count: u32,
    elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit { name: name.into(), node_count: 1, elements: Vec::new() }
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Allocates a fresh node.
    pub fn node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        id
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count as usize
    }

    /// Adds an element between `plus` and `minus`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if either terminal was not
    /// created by this circuit, and [`CircuitError::InvalidParameter`] for
    /// non-physical parameters (negative resistance, …).
    pub fn add(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        kind: ElementKind,
    ) -> Result<ElementId> {
        for n in [plus, minus] {
            if n.0 >= self.node_count {
                return Err(CircuitError::UnknownNode { node: n.0 });
            }
        }
        validate_kind(&kind)?;
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element { name: name.into(), plus, minus, kind });
        Ok(id)
    }

    /// Adds an ideal DC voltage source.
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_voltage_source(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        volts: f64,
    ) -> Result<ElementId> {
        self.add(name, plus, minus, ElementKind::VoltageSource { volts })
    }

    /// Adds an ideal DC current source pushing current out of `plus`.
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_current_source(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        amps: f64,
    ) -> Result<ElementId> {
        self.add(name, plus, minus, ElementKind::CurrentSource { amps })
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_resistor(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        ohms: f64,
    ) -> Result<ElementId> {
        self.add(name, plus, minus, ElementKind::Resistor { ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_capacitor(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        farads: f64,
    ) -> Result<ElementId> {
        self.add(name, plus, minus, ElementKind::Capacitor { farads })
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_inductor(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        henries: f64,
    ) -> Result<ElementId> {
        self.add(name, plus, minus, ElementKind::Inductor { henries })
    }

    /// Adds a diode with default silicon parameters (anode = `plus`).
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_diode(
        &mut self,
        name: impl Into<String>,
        anode: NodeId,
        cathode: NodeId,
    ) -> Result<ElementId> {
        self.add(name, anode, cathode, ElementKind::Diode(DiodeParams::default()))
    }

    /// Adds a series current sensor.
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_current_sensor(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
    ) -> Result<ElementId> {
        self.add(name, plus, minus, ElementKind::CurrentSensor)
    }

    /// Adds a non-loading voltage sensor.
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_voltage_sensor(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
    ) -> Result<ElementId> {
        self.add(name, plus, minus, ElementKind::VoltageSensor)
    }

    /// Adds a behavioural brown-out load drawing `on_amps` above
    /// `brownout_volts` and `fault_amps` when functionally faulted.
    ///
    /// # Errors
    ///
    /// See [`Circuit::add`].
    pub fn add_load(
        &mut self,
        name: impl Into<String>,
        plus: NodeId,
        minus: NodeId,
        on_amps: f64,
        brownout_volts: f64,
        fault_amps: f64,
    ) -> Result<ElementId> {
        self.add(
            name,
            plus,
            minus,
            ElementKind::Load { on_amps, brownout_volts, fault_amps, faulted: false },
        )
    }

    /// Returns the element with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownElement`] for out-of-range ids.
    pub fn element(&self, id: ElementId) -> Result<&Element> {
        self.elements.get(id.0 as usize).ok_or(CircuitError::UnknownElement { element: id.0 })
    }

    pub(crate) fn element_mut(&mut self, id: ElementId) -> Result<&mut Element> {
        self.elements.get_mut(id.0 as usize).ok_or(CircuitError::UnknownElement { element: id.0 })
    }

    /// Iterates over `(id, element)` pairs in insertion order.
    pub fn elements(&self) -> impl Iterator<Item = (ElementId, &Element)> {
        self.elements.iter().enumerate().map(|(i, e)| (ElementId(i as u32), e))
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Finds an element by instance name (first match).
    pub fn element_by_name(&self, name: &str) -> Option<ElementId> {
        self.elements.iter().position(|e| e.name == name).map(|i| ElementId(i as u32))
    }

    /// All sensors in the circuit, in insertion order.
    pub fn sensors(&self) -> impl Iterator<Item = (ElementId, &Element)> {
        self.elements().filter(|(_, e)| e.kind.is_sensor())
    }
}

fn validate_kind(kind: &ElementKind) -> Result<()> {
    let bad = |message: String| Err(CircuitError::InvalidParameter { message });
    match kind {
        ElementKind::Resistor { ohms } if *ohms <= 0.0 || !ohms.is_finite() => {
            bad(format!("resistance must be positive and finite, got {ohms}"))
        }
        ElementKind::Capacitor { farads } if *farads <= 0.0 || !farads.is_finite() => {
            bad(format!("capacitance must be positive and finite, got {farads}"))
        }
        ElementKind::Inductor { henries } if *henries <= 0.0 || !henries.is_finite() => {
            bad(format!("inductance must be positive and finite, got {henries}"))
        }
        ElementKind::Diode(p) if p.saturation_current <= 0.0 || p.emission < 1.0 => {
            bad("diode saturation current must be positive and emission >= 1".to_owned())
        }
        ElementKind::Load { on_amps, fault_amps, .. } if *on_amps < 0.0 || *fault_amps < 0.0 => {
            bad("load currents must be non-negative".to_owned())
        }
        ElementKind::VoltageSource { volts } if !volts.is_finite() => {
            bad("source voltage must be finite".to_owned())
        }
        ElementKind::CurrentSource { amps } if !amps.is_finite() => {
            bad("source current must be finite".to_owned())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_sequential_nodes() {
        let mut c = Circuit::new("t");
        let a = c.node();
        let b = c.node();
        assert_eq!(a.raw(), 1);
        assert_eq!(b.raw(), 2);
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn add_rejects_unknown_nodes() {
        let mut c = Circuit::new("t");
        let err = c.add_resistor("R1", NodeId(5), NodeId::GROUND, 1.0).unwrap_err();
        assert_eq!(err, CircuitError::UnknownNode { node: 5 });
    }

    #[test]
    fn add_rejects_nonphysical_parameters() {
        let mut c = Circuit::new("t");
        let n = c.node();
        assert!(c.add_resistor("R", n, NodeId::GROUND, -1.0).is_err());
        assert!(c.add_capacitor("C", n, NodeId::GROUND, 0.0).is_err());
        assert!(c.add_inductor("L", n, NodeId::GROUND, f64::NAN).is_err());
        assert!(c.add_voltage_source("V", n, NodeId::GROUND, f64::INFINITY).is_err());
    }

    #[test]
    fn lookup_by_name_and_id() {
        let mut c = Circuit::new("t");
        let n = c.node();
        let r = c.add_resistor("R1", n, NodeId::GROUND, 10.0).unwrap();
        assert_eq!(c.element_by_name("R1"), Some(r));
        assert_eq!(c.element(r).unwrap().name, "R1");
        assert!(c.element_by_name("nope").is_none());
        assert!(c.element(ElementId(9)).is_err());
    }

    #[test]
    fn sensors_iterator_filters() {
        let mut c = Circuit::new("t");
        let n = c.node();
        c.add_resistor("R1", n, NodeId::GROUND, 10.0).unwrap();
        c.add_current_sensor("CS1", n, NodeId::GROUND).unwrap();
        c.add_voltage_sensor("VS1", n, NodeId::GROUND).unwrap();
        assert_eq!(c.sensors().count(), 2);
    }
}
