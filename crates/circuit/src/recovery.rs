//! Convergence-recovery ladder for the Newton solver.
//!
//! Plain Newton on the MNA system fails on pathological but physically
//! meaningful circuits — a brown-out load biased exactly at its threshold,
//! a stiff diode stack — and production SPICE engines treat that failure as
//! a recoverable event, not a verdict. This module escalates through the
//! classic recovery strategies, each under an explicit work budget:
//!
//! 1. **Plain Newton** — bitwise identical to the historical solver, so
//!    circuits that converged before the ladder existed still produce the
//!    exact same solution.
//! 2. **Damped Newton** — junction updates relaxed by a fixed factor,
//!    trading speed for a contraction that survives limit-cycle
//!    oscillations between linearization plateaus.
//! 3. **gmin stepping** — start with a large node-to-ground conductance and
//!    relax it geometrically to the nominal [`GMIN`], warm-starting every
//!    rung from the previous one; the final rung runs at nominal gmin so
//!    the accepted solution is exact.
//! 4. **Source stepping** — ramp every independent source from a fraction
//!    of its value to nominal, warm-starting each step. Only attempted for
//!    DC operating points (companion models embed history terms that must
//!    not be scaled).
//!
//! Escalation happens only on [`CircuitError::NoConvergence`]; a singular
//! matrix is a structural modelling bug that no amount of stepping fixes
//! and propagates immediately.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

use crate::error::{CircuitError, Result};
use crate::mna::{
    initial_junctions, newton_iterate, Companions, DcSolution, DenseStage, Layout, LinearStage,
    Mode, NewtonOutcome, NewtonSettings, GMIN, MAX_NEWTON,
};
use crate::netlist::Circuit;
use crate::workspace::SolverWorkspace;

/// Relaxation factor of the damped-Newton rung.
const DAMPING: f64 = 0.3;
/// Iteration budget of the damped-Newton rung.
const DAMPED_ITERATIONS: usize = 1_200;
/// First (largest) gmin of the gmin-stepping ladder.
const GMIN_START: f64 = 1e-2;
/// Geometric relaxation factor between gmin rungs.
const GMIN_FACTOR: f64 = 10.0;
/// Number of source-stepping ramp points (the last is the nominal source).
const SOURCE_STEPS: usize = 8;
/// Iteration budget of each gmin / source rung.
const STEP_ITERATIONS: usize = 300;
/// Junction damping inside gmin / source rungs: the intermediate systems
/// can be just as oscillation-prone as the original, so the continuation
/// rungs always run relaxed.
const STEP_DAMPING: f64 = 0.5;

/// The strategy that produced a converged operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolveStrategy {
    /// Plain undamped Newton — the historical fast path.
    Newton,
    /// Damped Newton with relaxed junction updates.
    DampedNewton,
    /// Geometric gmin relaxation with warm starts.
    GminStepping,
    /// Source ramping from a fraction of nominal with warm starts.
    SourceStepping,
}

impl fmt::Display for SolveStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SolveStrategy::Newton => "newton",
            SolveStrategy::DampedNewton => "damped-newton",
            SolveStrategy::GminStepping => "gmin-stepping",
            SolveStrategy::SourceStepping => "source-stepping",
        })
    }
}

/// How a solve went: which rung of the ladder succeeded and what it cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveDiagnostics {
    /// The strategy that converged.
    pub strategy: SolveStrategy,
    /// Ladder rungs attempted after plain Newton (0 for a first-try
    /// convergence).
    pub rungs: usize,
    /// Total Newton iterations spent across all rungs.
    pub iterations: usize,
    /// Final max |Δ| of the converged run.
    pub residual: f64,
}

impl SolveDiagnostics {
    /// `true` when plain Newton failed and a recovery strategy produced the
    /// solution.
    pub fn recovered(&self) -> bool {
        self.strategy != SolveStrategy::Newton
    }
}

/// Which linear kernel backs the Newton iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolverKernel {
    /// Sparse CSC LU with symbolic-layout and factorization reuse — the
    /// default.
    #[default]
    Sparse,
    /// The historical dense Gaussian elimination, re-stamped and
    /// re-factorized from scratch every iteration. Kept as the
    /// differential-testing oracle (`solver=dense` escape hatch).
    Dense,
}

impl SolverKernel {
    /// Stable short name, used in cache keys and CLI flags.
    pub fn tag(&self) -> &'static str {
        match self {
            SolverKernel::Sparse => "sparse",
            SolverKernel::Dense => "dense",
        }
    }
}

impl fmt::Display for SolverKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Which rungs of the recovery ladder are available and how much total work
/// they may spend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverOptions {
    /// Enable the damped-Newton rung.
    pub damped: bool,
    /// Enable the gmin-stepping rungs.
    pub gmin_stepping: bool,
    /// Enable the source-stepping rungs (DC only).
    pub source_stepping: bool,
    /// Total Newton-iteration budget across the entire ladder, including
    /// the initial plain attempt.
    pub budget: usize,
    /// The linear kernel backing every rung.
    pub kernel: SolverKernel,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            damped: true,
            gmin_stepping: true,
            source_stepping: true,
            budget: 12_000,
            kernel: SolverKernel::Sparse,
        }
    }
}

impl SolverOptions {
    /// The pre-ladder behaviour: plain Newton only, historical budget.
    pub fn plain_newton_only() -> SolverOptions {
        SolverOptions {
            damped: false,
            gmin_stepping: false,
            source_stepping: false,
            budget: MAX_NEWTON,
            kernel: SolverKernel::default(),
        }
    }
}

/// Walks the recovery ladder for one operating point, reporting solver
/// iterations, escalations and per-strategy wall time to the
/// thread-current telemetry handle (free when none is installed).
pub(crate) fn solve_operating_point(
    circuit: &Circuit,
    layout: &Layout,
    companions: Option<&Companions<'_>>,
    options: &SolverOptions,
    workspace: &mut SolverWorkspace,
) -> Result<(Vec<f64>, SolveDiagnostics)> {
    // Only pay for the clock when a live telemetry handle will consume it.
    let started = decisive_obs::with_current(|_| Instant::now());
    let result = match options.kernel {
        SolverKernel::Dense => walk_ladder(circuit, layout, companions, options, &mut DenseStage),
        SolverKernel::Sparse => {
            let mode = if companions.is_some() { Mode::Transient } else { Mode::Dc };
            let mut stage = workspace.stage(circuit, layout, mode, started.is_some());
            walk_ladder(circuit, layout, companions, options, &mut stage)
        }
    };
    // Drain the workspace counters every solve: telemetry-off solves must
    // not leak their tallies into the next recorded one.
    let solver = workspace.counters.take();
    if let Some(started) = started {
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        decisive_obs::with_current(|telemetry| {
            telemetry.count("solver.solves", 1);
            if solver.refactorizations > 0 {
                telemetry.count("solver.refactorizations", solver.refactorizations);
            }
            if solver.factor_reuse > 0 {
                telemetry.count("solver.factor_reuse", solver.factor_reuse);
            }
            if solver.stamp_deltas > 0 {
                telemetry.count("solver.stamp_deltas", solver.stamp_deltas);
            }
            if solver.factor_seconds > 0.0 {
                telemetry.duration_ms("solver.factor_ms", solver.factor_seconds * 1e3);
            }
            match &result {
                Ok((_, diagnostics)) => {
                    telemetry.count("solver.iterations", diagnostics.iterations as u64);
                    if diagnostics.recovered() {
                        telemetry.count("solver.recovered", 1);
                    }
                    let strategy = diagnostics.strategy.to_string();
                    telemetry.count(&format!("solver.strategy.{strategy}"), 1);
                    telemetry.duration_ms(&format!("solver.strategy.{strategy}.ms"), wall_ms);
                }
                Err(CircuitError::NoConvergence { iterations, .. }) => {
                    telemetry.count("solver.iterations", *iterations as u64);
                    telemetry.count("solver.unsolvable", 1);
                    telemetry.duration_ms("solver.strategy.unsolvable.ms", wall_ms);
                }
                Err(_) => {
                    telemetry.count("solver.singular", 1);
                }
            }
        });
    }
    result
}

/// The uninstrumented ladder body.
fn walk_ladder(
    circuit: &Circuit,
    layout: &Layout,
    companions: Option<&Companions<'_>>,
    options: &SolverOptions,
    stage: &mut dyn LinearStage,
) -> Result<(Vec<f64>, SolveDiagnostics)> {
    let mut spent = 0usize;
    let mut rungs = 0usize;
    let mut last_residual;

    // Rung 0 — plain Newton, bitwise identical to the pre-ladder solver.
    {
        let mut junctions = initial_junctions(circuit);
        let settings = NewtonSettings::plain(MAX_NEWTON.min(options.budget));
        match newton_iterate(circuit, layout, companions, &settings, &mut junctions, stage) {
            NewtonOutcome::Converged { x, iterations, residual } => {
                let diagnostics = SolveDiagnostics {
                    strategy: SolveStrategy::Newton,
                    rungs: 0,
                    iterations,
                    residual,
                };
                return Ok((x, diagnostics));
            }
            NewtonOutcome::Failed(e) => return Err(e),
            NewtonOutcome::Exhausted { iterations, residual } => {
                spent += iterations;
                last_residual = residual;
            }
        }
    }

    // Rung 1 — damped Newton from a cold start.
    if options.damped && spent < options.budget {
        rungs += 1;
        let mut junctions = initial_junctions(circuit);
        let settings = NewtonSettings {
            max_iterations: DAMPED_ITERATIONS.min(options.budget - spent),
            gmin: GMIN,
            source_scale: 1.0,
            damping: DAMPING,
        };
        match newton_iterate(circuit, layout, companions, &settings, &mut junctions, stage) {
            NewtonOutcome::Converged { x, iterations, residual } => {
                let diagnostics = SolveDiagnostics {
                    strategy: SolveStrategy::DampedNewton,
                    rungs,
                    iterations: spent + iterations,
                    residual,
                };
                return Ok((x, diagnostics));
            }
            NewtonOutcome::Failed(e) => return Err(e),
            NewtonOutcome::Exhausted { iterations, residual } => {
                spent += iterations;
                last_residual = residual;
            }
        }
    }

    // Rungs 2..k — gmin stepping: relax a large gmin geometrically to the
    // nominal value, carrying the junction state from rung to rung.
    if options.gmin_stepping && spent < options.budget {
        let mut junctions = initial_junctions(circuit);
        let mut gmin = GMIN_START;
        loop {
            if spent >= options.budget {
                break;
            }
            // The last rung runs at the nominal gmin so its solution is the
            // true operating point, not a relaxed approximation.
            let nominal_rung = gmin <= GMIN;
            rungs += 1;
            let settings = NewtonSettings {
                max_iterations: STEP_ITERATIONS.min(options.budget - spent),
                gmin: if nominal_rung { GMIN } else { gmin },
                source_scale: 1.0,
                damping: STEP_DAMPING,
            };
            match newton_iterate(circuit, layout, companions, &settings, &mut junctions, stage) {
                NewtonOutcome::Converged { x, iterations, residual } => {
                    spent += iterations;
                    last_residual = residual;
                    if nominal_rung {
                        let diagnostics = SolveDiagnostics {
                            strategy: SolveStrategy::GminStepping,
                            rungs,
                            iterations: spent,
                            residual,
                        };
                        return Ok((x, diagnostics));
                    }
                }
                NewtonOutcome::Failed(e) => return Err(e),
                NewtonOutcome::Exhausted { iterations, residual } => {
                    spent += iterations;
                    last_residual = residual;
                    if nominal_rung {
                        break;
                    }
                    // An unconverged intermediate rung still leaves useful
                    // junction state behind; keep relaxing.
                }
            }
            if nominal_rung {
                break;
            }
            gmin /= GMIN_FACTOR;
        }
    }

    // Rungs k+1.. — source stepping (DC only): ramp sources up from a
    // fraction of nominal, warm-starting each step.
    if options.source_stepping && companions.is_none() && spent < options.budget {
        let mut junctions = initial_junctions(circuit);
        for step in 1..=SOURCE_STEPS {
            if spent >= options.budget {
                break;
            }
            rungs += 1;
            let nominal_rung = step == SOURCE_STEPS;
            let settings = NewtonSettings {
                max_iterations: STEP_ITERATIONS.min(options.budget - spent),
                gmin: GMIN,
                source_scale: step as f64 / SOURCE_STEPS as f64,
                damping: STEP_DAMPING,
            };
            match newton_iterate(circuit, layout, companions, &settings, &mut junctions, stage) {
                NewtonOutcome::Converged { x, iterations, residual } => {
                    spent += iterations;
                    last_residual = residual;
                    if nominal_rung {
                        let diagnostics = SolveDiagnostics {
                            strategy: SolveStrategy::SourceStepping,
                            rungs,
                            iterations: spent,
                            residual,
                        };
                        return Ok((x, diagnostics));
                    }
                }
                NewtonOutcome::Failed(e) => return Err(e),
                NewtonOutcome::Exhausted { iterations, residual } => {
                    spent += iterations;
                    last_residual = residual;
                    // Carry the junction state into the next ramp point.
                }
            }
        }
    }

    Err(CircuitError::NoConvergence { iterations: spent, residual: last_residual })
}

impl Circuit {
    /// Computes the DC operating point with the full recovery ladder and
    /// default [`SolverOptions`], returning [`SolveDiagnostics`] alongside
    /// the solution.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularMatrix`] for ill-posed circuits and
    /// [`CircuitError::NoConvergence`] once every enabled rung is
    /// exhausted.
    pub fn dc_with_diagnostics(&self) -> Result<(DcSolution, SolveDiagnostics)> {
        self.dc_with_options(&SolverOptions::default())
    }

    /// Computes the DC operating point under explicit [`SolverOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularMatrix`] for ill-posed circuits and
    /// [`CircuitError::NoConvergence`] once every enabled rung is
    /// exhausted.
    pub fn dc_with_options(
        &self,
        options: &SolverOptions,
    ) -> Result<(DcSolution, SolveDiagnostics)> {
        SolverWorkspace::new().dc(self, options)
    }
}
