//! Dense linear algebra for the MNA solver.
//!
//! Since the sparse CSC kernel (see [`crate::sparse`]) became the default,
//! this kernel is kept as the differential-testing oracle behind the
//! `SolverKernel::Dense` escape hatch: a deliberately simple Gaussian
//! elimination whose results the sparse path is checked against.

use crate::error::{CircuitError, Result};
use crate::mna::MatSink;

/// Relative pivot threshold shared by the dense and sparse kernels: a
/// column is singular when its best pivot is this many orders of
/// magnitude below the column's largest stamped entry. Relative — not
/// absolute — so a perfectly conditioned circuit stamped in µS/MΩ units
/// (every entry ~1e-6) is not misreported as singular.
pub(crate) const PIVOT_REL_TOL: f64 = 1e-13;

/// A dense square matrix in row-major order.
#[derive(Debug, Clone)]
pub(crate) struct Dense {
    n: usize,
    a: Vec<f64>,
}

impl Dense {
    pub(crate) fn new(n: usize) -> Self {
        Dense { n, a: vec![0.0; n * n] }
    }

    #[inline]
    pub(crate) fn add(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.n + c] += v;
    }

    /// Solves `self * x = b` by Gaussian elimination with partial pivoting,
    /// consuming the matrix.
    pub(crate) fn solve(mut self, mut b: Vec<f64>) -> Result<Vec<f64>> {
        let n = self.n;
        debug_assert_eq!(b.len(), n);
        // Column norms of the matrix as stamped: the singularity test is
        // relative to the column's own scale.
        let mut scale = vec![0.0f64; n];
        for r in 0..n {
            for (c, s) in scale.iter_mut().enumerate() {
                let v = self.a[r * n + c].abs();
                if v > *s {
                    *s = v;
                }
            }
        }
        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = self.a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = self.a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val == 0.0 || pivot_val < PIVOT_REL_TOL * scale[col] {
                return Err(CircuitError::SingularMatrix { row: col });
            }
            if pivot_row != col {
                for c in 0..n {
                    self.a.swap(col * n + c, pivot_row * n + c);
                }
                b.swap(col, pivot_row);
            }
            let pivot = self.a[col * n + col];
            for r in (col + 1)..n {
                let factor = self.a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    self.a[r * n + c] -= factor * self.a[col * n + c];
                }
                b[r] -= factor * b[col];
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for r in (0..n).rev() {
            let mut sum = b[r];
            for (c, &xc) in x.iter().enumerate().take(n).skip(r + 1) {
                sum -= self.a[r * n + c] * xc;
            }
            x[r] = sum / self.a[r * n + r];
        }
        Ok(x)
    }
}

impl MatSink for Dense {
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        Dense::add(self, r, c, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = Dense::new(3);
        for i in 0..3 {
            m.add(i, i, 1.0);
        }
        let x = m.solve(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [5; 10]  => x = [1; 3]
        let mut m = Dense::new(2);
        m.add(0, 0, 2.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 3.0);
        let x = m.solve(vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] => x = [3; 2]
        let mut m = Dense::new(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        let x = m.solve(vec![2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut m = Dense::new(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 1.0);
        let err = m.solve(vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, CircuitError::SingularMatrix { .. }));
    }

    #[test]
    fn microsiemens_scale_system_is_not_misreported_as_singular() {
        // A perfectly conditioned system stamped in µS/MΩ units: every
        // entry sits below the old absolute 1e-13 cutoff, but relative to
        // the column norm the pivots are fine.
        let mut m = Dense::new(2);
        m.add(0, 0, 2e-14);
        m.add(0, 1, 1e-14);
        m.add(1, 0, 1e-14);
        m.add(1, 1, 3e-14);
        let x = m.solve(vec![5e-14, 10e-14]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn relative_test_still_rejects_singular_tiny_scale() {
        let mut m = Dense::new(2);
        m.add(0, 0, 1e-14);
        m.add(0, 1, 1e-14);
        m.add(1, 0, 1e-14);
        m.add(1, 1, 1e-14);
        let err = m.solve(vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, CircuitError::SingularMatrix { .. }));
    }
}
