//! Sparse CSC linear algebra: the default MNA kernel.
//!
//! The MNA matrix of a block-diagram circuit is overwhelmingly sparse —
//! each element touches at most a 2×2 conductance block plus a branch
//! row/column — so the solver stack stamps into a compressed-sparse-column
//! pattern computed **once** per netlist structure and factorizes with a
//! left-looking Gilbert–Peierls LU:
//!
//! * [`CscPattern::build`] turns the stamp-ordered triplet sequence into a
//!   deduplicated CSC pattern and a per-triplet slot map, so every later
//!   assembly is a flat `values[slot] += v` with no searching.
//! * [`SparseLu::factor`] performs the symbolic+numeric factorization with
//!   partial pivoting (diagonal preference) and the same *relative*
//!   singularity test as the dense oracle.
//! * [`SparseLu::refactor`] replays a previous factorization's pivot order
//!   and fill pattern on new values — the Newton-iteration and
//!   recovery-ladder hot path — and is constructed to execute the exact
//!   floating-point operation sequence of the factorization it replays, so
//!   reusing a factorization is bitwise-equal to factoring afresh with the
//!   same pivot order. A per-column stability check falls back to a full
//!   re-pivoted factorization when the values have drifted too far.
//! * [`SparseLu::solve_into`] is non-consuming: one factorization serves
//!   every right-hand side of a Newton iteration sequence.
//!
//! This module is pure linear algebra; the circuit-aware stamping that
//! produces patterns and values lives in `mna.rs`, and the reuse policy
//! (what may be shared across solves) in `workspace.rs`.

use crate::solve::PIVOT_REL_TOL;

/// Pivot-preference tolerance: the natural diagonal is kept as the pivot
/// whenever it is within this factor of the column's best candidate.
/// Diagonal dominance is the common case for MNA conductance stamps, and a
/// stable pivot order is what makes cross-iteration refactorization stick.
const DIAG_PREFERENCE: f64 = 1e-3;

/// Refactorization stability floor: replaying a stored pivot order is
/// accepted only while each pivot stays within this factor of the largest
/// eliminated candidate in its column; otherwise the kernel re-pivots.
const REFACTOR_TOL: f64 = 1e-3;

/// Reverse Cuthill–McKee ordering of the symmetrized pattern graph:
/// breadth-first from minimum-degree seeds, neighbours visited in degree
/// order, then reversed. Returns `perm` with `perm[original] = new`.
///
/// MNA matrices are badly ordered as stamped — branch-current unknowns
/// (voltage sources, inductors, sensors) are appended after all node
/// unknowns, so every branch couples a node column to a column at the far
/// end of the matrix and Gilbert–Peierls elimination in natural order
/// fills the whole band between them. A symmetric RCM permutation pulls
/// each branch next to its nodes and collapses the factor to near the
/// pattern's own nonzero count. Deterministic, so a cached layout keeps
/// the bitwise-reproducibility contract of `refactor`.
pub(crate) fn rcm_order(n: usize, entries: &[(u32, u32)]) -> Vec<u32> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(r, c) in entries {
        if r != c {
            adj[r as usize].push(c);
            adj[c as usize].push(r);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degree: Vec<u32> = adj.iter().map(|l| l.len() as u32).collect();
    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_unstable_by_key(|&i| (degree[i as usize], i));
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut nbrs: Vec<u32> = Vec::new();
    for seed in seeds {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            nbrs.clear();
            nbrs.extend(adj[v as usize].iter().copied().filter(|&w| !visited[w as usize]));
            nbrs.sort_unstable_by_key(|&w| (degree[w as usize], w));
            for &w in &nbrs {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    order.reverse();
    let mut perm = vec![0u32; n];
    for (new, &orig) in order.iter().enumerate() {
        perm[orig as usize] = new as u32;
    }
    perm
}

/// A compressed-sparse-column nonzero pattern, deduplicated and sorted by
/// `(column, row)`. Value-independent: one pattern is shared by every
/// Newton iteration, ladder rung, and same-structure fault injection.
#[derive(Debug, Clone)]
pub(crate) struct CscPattern {
    pub(crate) n: usize,
    pub(crate) col_ptr: Vec<usize>,
    pub(crate) row_idx: Vec<usize>,
}

impl CscPattern {
    /// Builds the pattern from a stamp-ordered `(row, col)` triplet
    /// sequence. Returns the pattern plus, for every input triplet, the
    /// index of the CSC value slot it accumulates into — the `slot_of`
    /// map that turns later assemblies into flat indexed adds.
    pub(crate) fn build(n: usize, triplets: &[(u32, u32)]) -> (CscPattern, Vec<u32>) {
        let mut order: Vec<u32> = (0..triplets.len() as u32).collect();
        order.sort_unstable_by_key(|&k| {
            let (r, c) = triplets[k as usize];
            (u64::from(c) << 32) | u64::from(r)
        });
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut slot_of = vec![0u32; triplets.len()];
        let mut last: Option<(u32, u32)> = None;
        for &k in &order {
            let (r, c) = triplets[k as usize];
            if last != Some((r, c)) {
                row_idx.push(r as usize);
                col_ptr[c as usize + 1] += 1;
                last = Some((r, c));
            }
            slot_of[k as usize] = (row_idx.len() - 1) as u32;
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        (CscPattern { n, col_ptr, row_idx }, slot_of)
    }

    /// Number of structural nonzeros (= value-vector length).
    pub(crate) fn nnz(&self) -> usize {
        self.row_idx.len()
    }
}

/// Reusable scratch for factorization: the dense accumulator column and
/// the DFS state for symbolic reach computation. Owned by the workspace
/// so repeated factorizations allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct LuScratch {
    /// Dense accumulator for the current column (all-zero between columns).
    x: Vec<f64>,
    /// Reach of the current column in topological order, filled from the top.
    xi: Vec<usize>,
    /// DFS node stack.
    stack: Vec<usize>,
    /// DFS per-level resume position into the L column being scanned.
    pstack: Vec<usize>,
    /// Visit marker per row; a generation counter avoids clearing it.
    visited: Vec<u32>,
    generation: u32,
}

impl LuScratch {
    fn reset(&mut self, n: usize) {
        if self.x.len() < n {
            self.x.resize(n, 0.0);
            self.xi.resize(n, 0);
            self.visited.resize(n, 0);
        }
        // `x` is kept all-zero by the column loops; `visited` is epoch-based.
    }
}

/// Outcome of a [`SparseLu::refactor`] replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Refactor {
    /// The stored pivot order absorbed the new values.
    Done,
    /// A pivot fell below the stability floor — run a full `factor`.
    Unstable,
}

/// An LU factorization (`PA = LU`) that survives the solve. `L` holds unit
/// lower-triangular multipliers, `U` the upper factor with its diagonal
/// split out; both are column-compressed in pivoted row coordinates.
#[derive(Debug, Default)]
pub(crate) struct SparseLu {
    n: usize,
    /// L column pointers / pivoted row indices / multipliers.
    lp: Vec<usize>,
    li: Vec<usize>,
    lx: Vec<f64>,
    /// U column pointers / pivoted row indices / values, in the exact
    /// emission (topological) order of the original factorization — the
    /// property `refactor` relies on for bitwise replay.
    up: Vec<usize>,
    ui: Vec<usize>,
    ux: Vec<f64>,
    udiag: Vec<f64>,
    /// Original row -> pivoted position.
    pinv: Vec<i64>,
    valid: bool,
}

impl SparseLu {
    /// Whether a factorization is loaded (pattern + pivot order usable by
    /// `refactor`/`solve_into`).
    pub(crate) fn is_valid(&self) -> bool {
        self.valid
    }

    /// Drops the stored factorization (e.g. when the layout changes).
    pub(crate) fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Full symbolic + numeric factorization with partial pivoting.
    /// Returns the 0-based column index of the first singular column on
    /// failure, using the same relative test as the dense kernel.
    pub(crate) fn factor(
        &mut self,
        pattern: &CscPattern,
        values: &[f64],
        scratch: &mut LuScratch,
    ) -> Result<(), usize> {
        let n = pattern.n;
        debug_assert_eq!(values.len(), pattern.nnz());
        self.n = n;
        self.valid = false;
        self.lp.clear();
        self.lp.resize(n + 1, 0);
        self.up.clear();
        self.up.resize(n + 1, 0);
        self.li.clear();
        self.lx.clear();
        self.ui.clear();
        self.ux.clear();
        self.udiag.clear();
        self.udiag.resize(n, 0.0);
        self.pinv.clear();
        self.pinv.resize(n, -1);
        scratch.reset(n);

        for k in 0..n {
            // Symbolic: reach of column k through the L columns built so
            // far, emitted in topological order into xi[top..n].
            let mut top = n;
            scratch.generation = scratch.generation.wrapping_add(1);
            if scratch.generation == 0 {
                scratch.visited.iter_mut().for_each(|v| *v = 0);
                scratch.generation = 1;
            }
            let generation = scratch.generation;
            for p in pattern.col_ptr[k]..pattern.col_ptr[k + 1] {
                let root = pattern.row_idx[p];
                if scratch.visited[root] == generation {
                    continue;
                }
                scratch.stack.clear();
                scratch.pstack.clear();
                scratch.stack.push(root);
                scratch.pstack.push(0);
                while let Some(&node) = scratch.stack.last() {
                    let depth = scratch.stack.len() - 1;
                    if scratch.visited[node] != generation {
                        scratch.visited[node] = generation;
                        scratch.pstack[depth] = if self.pinv[node] >= 0 {
                            self.lp[self.pinv[node] as usize]
                        } else {
                            0
                        };
                    }
                    let end = if self.pinv[node] >= 0 {
                        self.lp[self.pinv[node] as usize + 1]
                    } else {
                        0
                    };
                    let mut q = scratch.pstack[depth];
                    let mut descended = false;
                    while q < end {
                        // During factor, li holds original row indices.
                        let child = self.li[q];
                        q += 1;
                        if scratch.visited[child] != generation {
                            scratch.pstack[depth] = q;
                            scratch.stack.push(child);
                            scratch.pstack.push(0);
                            descended = true;
                            break;
                        }
                    }
                    if !descended {
                        scratch.stack.pop();
                        scratch.pstack.pop();
                        top -= 1;
                        scratch.xi[top] = node;
                    }
                }
            }

            // Numeric: scatter A(:,k), then eliminate in topological order.
            let col = pattern.col_ptr[k]..pattern.col_ptr[k + 1];
            for (&row, &v) in pattern.row_idx[col.clone()].iter().zip(&values[col]) {
                scratch.x[row] = v;
            }
            for px in top..n {
                let i = scratch.xi[px];
                if self.pinv[i] >= 0 {
                    let pi = self.pinv[i] as usize;
                    let xv = scratch.x[i];
                    self.ui.push(pi);
                    self.ux.push(xv);
                    for q in self.lp[pi]..self.lp[pi + 1] {
                        scratch.x[self.li[q]] -= self.lx[q] * xv;
                    }
                }
            }

            // Pivot: best remaining candidate, with diagonal preference.
            let mut col_max = 0.0f64;
            let mut best = 0.0f64;
            let mut pivot_row = None;
            for px in top..n {
                let i = scratch.xi[px];
                let av = scratch.x[i].abs();
                if av > col_max {
                    col_max = av;
                }
                if self.pinv[i] < 0 && av > best {
                    best = av;
                    pivot_row = Some(i);
                }
            }
            if self.pinv[k] < 0 && scratch.visited[k] == generation {
                let dv = scratch.x[k].abs();
                if dv > 0.0 && dv >= DIAG_PREFERENCE * best {
                    pivot_row = Some(k);
                }
            }
            let singular = |s: &mut LuScratch| {
                for px in top..n {
                    s.x[s.xi[px]] = 0.0;
                }
                Err(k)
            };
            let Some(ip) = pivot_row else {
                return singular(scratch);
            };
            let pivot = scratch.x[ip];
            if pivot == 0.0 || pivot.abs() < PIVOT_REL_TOL * col_max {
                return singular(scratch);
            }
            self.udiag[k] = pivot;
            self.pinv[ip] = k as i64;
            for px in top..n {
                let i = scratch.xi[px];
                if self.pinv[i] < 0 {
                    self.li.push(i);
                    self.lx.push(scratch.x[i] / pivot);
                }
                scratch.x[i] = 0.0;
            }
            self.lp[k + 1] = self.li.len();
            self.up[k + 1] = self.ui.len();
        }

        // Rewrite L's row indices into pivoted coordinates so solve and
        // refactor never consult pinv in their inner loops.
        for row in &mut self.li {
            *row = self.pinv[*row] as usize;
        }
        self.valid = true;
        Ok(())
    }

    /// Numeric-only refactorization: replays the stored pivot order and
    /// fill pattern on new values. Executes the identical floating-point
    /// operation sequence as the `factor` call that produced the pattern,
    /// so its L/U are bitwise-equal to what that factor would compute for
    /// these values — as long as every pivot stays stable.
    pub(crate) fn refactor(
        &mut self,
        pattern: &CscPattern,
        values: &[f64],
        scratch: &mut LuScratch,
    ) -> Refactor {
        debug_assert!(self.valid);
        debug_assert_eq!(pattern.n, self.n);
        let n = self.n;
        scratch.reset(n);
        for k in 0..n {
            let col = pattern.col_ptr[k]..pattern.col_ptr[k + 1];
            for (&row, &v) in pattern.row_idx[col.clone()].iter().zip(&values[col]) {
                scratch.x[self.pinv[row] as usize] = v;
            }
            for q in self.up[k]..self.up[k + 1] {
                let pi = self.ui[q];
                let xv = scratch.x[pi];
                self.ux[q] = xv;
                for r in self.lp[pi]..self.lp[pi + 1] {
                    scratch.x[self.li[r]] -= self.lx[r] * xv;
                }
            }
            let pivot = scratch.x[k];
            let mut candidate_max = pivot.abs();
            for r in self.lp[k]..self.lp[k + 1] {
                candidate_max = candidate_max.max(scratch.x[self.li[r]].abs());
            }
            if pivot == 0.0 || pivot.abs() < REFACTOR_TOL * candidate_max {
                // Values drifted off this pivot order: clear the touched
                // entries and hand control back for a full factor.
                for q in self.up[k]..self.up[k + 1] {
                    scratch.x[self.ui[q]] = 0.0;
                }
                for r in self.lp[k]..self.lp[k + 1] {
                    scratch.x[self.li[r]] = 0.0;
                }
                scratch.x[k] = 0.0;
                return Refactor::Unstable;
            }
            self.udiag[k] = pivot;
            for r in self.lp[k]..self.lp[k + 1] {
                let i = self.li[r];
                self.lx[r] = scratch.x[i] / pivot;
                scratch.x[i] = 0.0;
            }
            for q in self.up[k]..self.up[k + 1] {
                scratch.x[self.ui[q]] = 0.0;
            }
            scratch.x[k] = 0.0;
        }
        Refactor::Done
    }

    /// Solves `A x = b` with the stored factors, writing into `out`.
    /// Non-consuming: one factorization serves any number of right-hand
    /// sides.
    pub(crate) fn solve_into(&self, b: &[f64], out: &mut Vec<f64>) {
        debug_assert!(self.valid);
        let n = self.n;
        debug_assert_eq!(b.len(), n);
        out.clear();
        out.resize(n, 0.0);
        for (i, &bi) in b.iter().enumerate() {
            out[self.pinv[i] as usize] = bi;
        }
        for k in 0..n {
            let xk = out[k];
            for r in self.lp[k]..self.lp[k + 1] {
                out[self.li[r]] -= self.lx[r] * xk;
            }
        }
        for k in (0..n).rev() {
            let xk = out[k] / self.udiag[k];
            out[k] = xk;
            for q in self.up[k]..self.up[k + 1] {
                out[self.ui[q]] -= self.ux[q] * xk;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds pattern+values from dense-style triplets with values.
    fn build(n: usize, entries: &[(u32, u32, f64)]) -> (CscPattern, Vec<f64>) {
        let triplets: Vec<(u32, u32)> = entries.iter().map(|&(r, c, _)| (r, c)).collect();
        let (pattern, slot_of) = CscPattern::build(n, &triplets);
        let mut values = vec![0.0; pattern.nnz()];
        for (k, &(_, _, v)) in entries.iter().enumerate() {
            values[slot_of[k] as usize] += v;
        }
        (pattern, values)
    }

    fn solve(n: usize, entries: &[(u32, u32, f64)], b: &[f64]) -> Result<Vec<f64>, usize> {
        let (pattern, values) = build(n, entries);
        let mut lu = SparseLu::default();
        let mut scratch = LuScratch::default();
        lu.factor(&pattern, &values, &mut scratch)?;
        let mut x = Vec::new();
        lu.solve_into(b, &mut x);
        Ok(x)
    }

    #[test]
    fn pattern_dedups_and_maps_slots() {
        let triplets = vec![(0, 0), (1, 1), (0, 0), (1, 0)];
        let (pattern, slot_of) = CscPattern::build(2, &triplets);
        assert_eq!(pattern.nnz(), 3);
        assert_eq!(slot_of[0], slot_of[2], "duplicate coordinates share a slot");
        assert_eq!(pattern.col_ptr, vec![0, 2, 3]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [5; 10] => x = [1; 3]
        let x =
            solve(2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)], &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivots_through_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] => x = [3; 2]
        let x = solve(2, &[(0, 1, 1.0), (1, 0, 1.0)], &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reports_singular_column() {
        let err = solve(2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)], &[1.0, 1.0])
            .unwrap_err();
        assert_eq!(err, 1);
    }

    #[test]
    fn tiny_scale_is_not_singular() {
        let x = solve(
            2,
            &[(0, 0, 2e-14), (0, 1, 1e-14), (1, 0, 1e-14), (1, 1, 3e-14)],
            &[5e-14, 10e-14],
        )
        .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn matches_dense_on_random_filled_systems() {
        // Deterministic pseudo-random dense systems: sparse and dense
        // agree to machine precision.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [1usize, 2, 3, 5, 8, 13] {
            let mut entries = Vec::new();
            for r in 0..n {
                for c in 0..n {
                    let v = next() + if r == c { 2.0 } else { 0.0 };
                    entries.push((r as u32, c as u32, v));
                }
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = solve(n, &entries, &b).unwrap();
            let mut dense = crate::solve::Dense::new(n);
            for &(r, c, v) in &entries {
                dense.add(r as usize, c as usize, v);
            }
            let xd = dense.solve(b).unwrap();
            for (a, d) in x.iter().zip(xd.iter()) {
                assert!((a - d).abs() < 1e-9, "sparse {a} vs dense {d}");
            }
        }
    }

    #[test]
    fn refactor_is_bitwise_equal_to_fresh_factor() {
        let entries = [
            (0u32, 0u32, 3.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 4.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 5.0),
        ];
        let (pattern, base) = build(3, &entries);
        let mut scratch = LuScratch::default();

        // Perturbed values, same structure (a Newton re-linearization).
        let perturbed: Vec<f64> = base.iter().map(|v| v * 1.25 + 0.01).collect();

        let mut reused = SparseLu::default();
        reused.factor(&pattern, &base, &mut scratch).unwrap();
        assert_eq!(reused.refactor(&pattern, &perturbed, &mut scratch), Refactor::Done);

        let mut fresh = SparseLu::default();
        fresh.factor(&pattern, &perturbed, &mut scratch).unwrap();

        let b = [1.0, 2.0, 3.0];
        let (mut xr, mut xf) = (Vec::new(), Vec::new());
        reused.solve_into(&b, &mut xr);
        fresh.solve_into(&b, &mut xf);
        for (r, f) in xr.iter().zip(xf.iter()) {
            assert_eq!(r.to_bits(), f.to_bits(), "refactor must replay factor bitwise");
        }
    }

    #[test]
    fn refactor_detects_pivot_drift() {
        // Start diagonally dominant, then flip the dominance so the stored
        // pivot order becomes unstable.
        let entries = [(0u32, 0u32, 10.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 10.0)];
        let (pattern, base) = build(2, &entries);
        let mut scratch = LuScratch::default();
        let mut lu = SparseLu::default();
        lu.factor(&pattern, &base, &mut scratch).unwrap();
        // New values: a[0][0] collapses to ~0, off-diagonals dominate.
        let drifted = vec![1e-9, 1.0, 1.0, 10.0];
        assert_eq!(lu.refactor(&pattern, &drifted, &mut scratch), Refactor::Unstable);
        // Full factor recovers (re-pivots) and scratch was left clean.
        lu.factor(&pattern, &drifted, &mut scratch).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&[1.0, 1.0], &mut x);
        let mut dense = crate::solve::Dense::new(2);
        dense.add(0, 0, 1e-9);
        dense.add(0, 1, 1.0);
        dense.add(1, 0, 1.0);
        dense.add(1, 1, 10.0);
        let xd = dense.solve(vec![1.0, 1.0]).unwrap();
        for (a, d) in x.iter().zip(xd.iter()) {
            assert!((a - d).abs() < 1e-9);
        }
    }

    #[test]
    fn fill_in_beyond_original_pattern_is_handled() {
        // An arrow matrix generates fill-in in the last column/row.
        let n = 6;
        let mut entries = Vec::new();
        for i in 0..n as u32 {
            entries.push((i, i, 4.0));
            if i + 1 < n as u32 {
                entries.push((i, n as u32 - 1, 1.0));
                entries.push((n as u32 - 1, i, 1.0));
            }
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = solve(n, &entries, &b).unwrap();
        let mut dense = crate::solve::Dense::new(n);
        for &(r, c, v) in &entries {
            dense.add(r as usize, c as usize, v);
        }
        let xd = dense.solve(b).unwrap();
        for (a, d) in x.iter().zip(xd.iter()) {
            assert!((a - d).abs() < 1e-10);
        }
    }
}
