//! Backward-Euler transient analysis.
//!
//! The paper's fault-injection loop compares *steady-state* sensor readings,
//! but SAME invokes Simulink's `simulate()`; this module provides the
//! equivalent time-domain capability so injected faults can also be
//! observed dynamically (and so reactive elements are exercised for real).

use std::collections::HashMap;

use crate::element::{ElementId, ElementKind};
use crate::error::{CircuitError, Result};
use crate::mna::{Companions, DcSolution, Layout, Mode};
use crate::netlist::Circuit;
use crate::recovery::{solve_operating_point, SolverOptions};
use crate::workspace::SolverWorkspace;

/// The result of a transient run: one operating point per time step.
#[derive(Debug, Clone)]
pub struct TransientSolution {
    times: Vec<f64>,
    states: Vec<DcSolution>,
    recovered_steps: usize,
}

impl TransientSolution {
    /// The simulated time points (the first is `0.0`, the DC initial point).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The operating point at step `i`.
    pub fn state(&self, i: usize) -> &DcSolution {
        &self.states[i]
    }

    /// The final operating point.
    pub fn final_state(&self) -> &DcSolution {
        self.states.last().expect("transient always holds the initial point")
    }

    /// Number of stored time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the run holds no points (never the case for successful runs).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of time steps whose Newton solve needed the recovery ladder
    /// (plain Newton failed but a fallback strategy converged).
    pub fn recovered_steps(&self) -> usize {
        self.recovered_steps
    }

    /// Samples a sensor over the whole run.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotASensor`] if `sensor` is not a sensor of
    /// `circuit`.
    pub fn sample(&self, circuit: &Circuit, sensor: ElementId) -> Result<Vec<f64>> {
        self.states.iter().map(|s| circuit.sensor_reading(s, sensor)).collect()
    }
}

impl Circuit {
    /// Runs a backward-Euler transient analysis from the DC operating point
    /// at `t = 0` to `t_stop` with fixed step `h`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] for a non-positive step or
    /// horizon, and propagates solver errors.
    pub fn transient(&self, t_stop: f64, h: f64) -> Result<TransientSolution> {
        if !(h > 0.0 && t_stop > 0.0 && h.is_finite() && t_stop.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                message: format!(
                    "transient requires positive finite t_stop and h, got t_stop={t_stop}, h={h}"
                ),
            });
        }
        // Initial condition: the DC operating point.
        let dc = self.dc()?;
        let mut inductor_i: HashMap<ElementId, f64> = HashMap::new();
        for (id, e) in self.elements() {
            if matches!(e.kind, ElementKind::Inductor { .. }) {
                inductor_i.insert(id, self.element_current(&dc, id)?);
            }
        }
        let layout = Layout::build(self, Mode::Transient);
        let mut times = vec![0.0];
        let mut states = vec![dc];
        let mut prev_v = states[0].node_voltages();
        let mut recovered_steps = 0usize;
        // Source stepping is meaningless on a companion system (it would
        // scale the sources against unscaled history terms); the rest of
        // the recovery ladder applies per step.
        let options = SolverOptions { source_stepping: false, ..SolverOptions::default() };
        // One workspace for the whole run: the symbolic layout, LU buffers
        // and scratch are shared by every step (the structure never changes
        // mid-run), so the per-step cost is numeric work only.
        let mut workspace = SolverWorkspace::new();
        let steps = (t_stop / h).ceil() as usize;
        for k in 1..=steps {
            let companions = Companions { h, prev_v: &prev_v, inductor_i: &inductor_i };
            let (x, diagnostics) =
                solve_operating_point(self, &layout, Some(&companions), &options, &mut workspace)?;
            if diagnostics.recovered() {
                recovered_steps += 1;
            }
            let state = DcSolution::new(&layout, x);
            let new_v = state.node_voltages();
            // Advance inductor companion currents: i = i_prev + (h/L) * v.
            for (id, e) in self.elements() {
                if let ElementKind::Inductor { henries } = e.kind {
                    let vd = new_v[e.plus.raw() as usize] - new_v[e.minus.raw() as usize];
                    let i = inductor_i.get(&id).copied().unwrap_or(0.0) + h / henries * vd;
                    inductor_i.insert(id, i);
                }
            }
            prev_v = new_v;
            times.push(k as f64 * h);
            states.push(state);
        }
        Ok(TransientSolution { times, states, recovered_steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::NodeId;

    /// RC step response: v(t) follows the analytic charging curve.
    #[test]
    fn rc_charging_matches_analytic_curve() {
        let mut c = Circuit::new("rc");
        let top = c.node();
        let mid = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 1.0).unwrap();
        c.add_resistor("R", top, mid, 1_000.0).unwrap();
        c.add_capacitor("C", mid, NodeId::GROUND, 1e-6).unwrap();
        // NOTE: DC init already charges the cap; to test the step we instead
        // verify the settled value and monotone approach from the DC point.
        let tr = c.transient(10e-3, 10e-6).unwrap();
        let v_final = tr.final_state().voltage(mid);
        assert!((v_final - 1.0).abs() < 1e-3, "cap settles at source voltage, got {v_final}");
    }

    /// RL circuit: inductor current ramps to V/R with time constant L/R.
    #[test]
    fn rl_settles_to_ohmic_current() {
        let mut c = Circuit::new("rl");
        let top = c.node();
        let mid = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 5.0).unwrap();
        c.add_resistor("R", top, mid, 50.0).unwrap();
        c.add_inductor("L", mid, NodeId::GROUND, 1e-3).unwrap();
        let tr = c.transient(2e-3, 2e-6).unwrap();
        // At DC init the inductor is already a short: v(mid) = 0, i = 0.1 A.
        let v_mid = tr.final_state().voltage(mid);
        assert!(v_mid.abs() < 1e-3, "inductor settles to a short, v = {v_mid}");
    }

    #[test]
    fn transient_sampling_of_sensor() {
        let mut c = Circuit::new("s");
        let top = c.node();
        let mid = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 5.0).unwrap();
        let cs = c.add_current_sensor("CS", top, mid).unwrap();
        c.add_resistor("R", mid, NodeId::GROUND, 100.0).unwrap();
        let tr = c.transient(1e-3, 1e-4).unwrap();
        let samples = tr.sample(&c, cs).unwrap();
        assert_eq!(samples.len(), tr.len());
        for s in samples {
            assert!((s - 0.05).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_bad_step() {
        let mut c = Circuit::new("bad");
        let top = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 1.0).unwrap();
        c.add_resistor("R", top, NodeId::GROUND, 1.0).unwrap();
        assert!(c.transient(-1.0, 1e-6).is_err());
        assert!(c.transient(1.0, 0.0).is_err());
    }

    /// Discharging an initially-charged capacitor through a resistor decays
    /// exponentially: use a switch that opens after DC init is impossible in
    /// this static netlist, so verify decay of an LC-free divider rebalance
    /// instead: cap node initialised by DC to 5 V with a stiff source, then
    /// (same circuit) stays constant — a stability check for BE.
    #[test]
    fn backward_euler_is_stable_on_stiff_circuit() {
        let mut c = Circuit::new("stiff");
        let top = c.node();
        let mid = c.node();
        c.add_voltage_source("V1", top, NodeId::GROUND, 5.0).unwrap();
        c.add_resistor("R1", top, mid, 1.0).unwrap();
        c.add_capacitor("C1", mid, NodeId::GROUND, 1.0).unwrap(); // tau = 1 s
                                                                  // Step far larger than tau: BE must not oscillate.
        let tr = c.transient(100.0, 10.0).unwrap();
        for i in 0..tr.len() {
            let v = tr.state(i).voltage(mid);
            assert!((0.0..=5.0 + 1e-9).contains(&v), "BE overshoot: {v}");
        }
    }
}
