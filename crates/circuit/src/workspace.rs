//! Per-worker solver workspaces: what may be reused across solves.
//!
//! A fault-injection campaign solves hundreds of circuits that differ from
//! the healthy netlist by a handful of stamp values. [`SolverWorkspace`]
//! exploits that by caching, per netlist *structure*:
//!
//! * the symbolic [`MatrixLayout`] (CSC pattern + slot maps) — an open or
//!   short fault replaces an element by a resistor with the same
//!   connectivity, so nearly every injected circuit hits this cache;
//! * every numeric buffer a solve needs (CSC values, linear baseline, RHS,
//!   LU factors, factorization scratch) — reused allocation-free from case
//!   to case.
//!
//! **What is deliberately NOT reused: numeric state.** The result of a
//! solve through a workspace is a pure function of `(circuit, options)` —
//! the first Newton iteration of every operating-point call performs a
//! full pivoting factorization, and only iterations within the same call
//! replay that call's pivot order. A warm workspace therefore returns
//! bit-identical results to a freshly created one, which is what lets the
//! campaign layer thread one workspace through thousands of injections
//! without changing a single verdict (property-tested in
//! `tests/sparse_equivalence.rs`).

use std::time::Instant;

use crate::element::ElementKind;
use crate::error::{CircuitError, Result};
use crate::mna::{
    assemble_sparse_linear, build_matrix_layout, restamp_nonlinear, Companions, DcSolution,
    Junctions, Layout, LinearStage, MatrixLayout, Mode, NewtonSettings,
};
use crate::netlist::Circuit;
use crate::recovery::{solve_operating_point, SolveDiagnostics, SolverOptions};
use crate::sparse::{LuScratch, Refactor, SparseLu};

/// Retained layouts per workspace. A campaign works a handful of
/// structures (healthy + the few fault shapes); fleet workers that sweep
/// many models keep the most recent ones.
const LAYOUT_CACHE_CAP: usize = 32;

/// Structural fingerprint of a netlist under a mode: everything that
/// determines the stamp coordinate sequence (and hence the CSC pattern,
/// slot maps and branch numbering), nothing that only affects values.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LayoutKey {
    transient: bool,
    n_nodes: u32,
    shapes: Vec<(u8, u32, u32)>,
}

/// Matrix footprint class of an element kind. Two kinds with equal tags
/// and terminals emit identical stamp coordinate sequences — e.g. a diode
/// and the resistor its open-fault turns into are both `G`.
fn shape_tag(kind: &ElementKind, mode: Mode) -> u8 {
    match kind {
        ElementKind::VoltageSource { .. } | ElementKind::CurrentSensor => b'V',
        ElementKind::Inductor { .. } => {
            if mode == Mode::Dc {
                b'V'
            } else {
                b'G'
            }
        }
        ElementKind::Capacitor { .. } => {
            if mode == Mode::Dc {
                b'0'
            } else {
                b'G'
            }
        }
        ElementKind::CurrentSource { .. } => b'I',
        ElementKind::Resistor { .. }
        | ElementKind::Switch { .. }
        | ElementKind::Diode(_)
        | ElementKind::Load { .. } => b'G',
        ElementKind::VoltageSensor => b'0',
    }
}

fn layout_key(circuit: &Circuit, mode: Mode) -> LayoutKey {
    let shapes = circuit
        .elements()
        .map(|(_, e)| (shape_tag(&e.kind, mode), e.plus.raw(), e.minus.raw()))
        .collect();
    LayoutKey { transient: mode == Mode::Transient, n_nodes: circuit.node_count() as u32, shapes }
}

/// Everything cached for one netlist structure.
struct LayoutEntry {
    key: LayoutKey,
    ml: MatrixLayout,
    lu: SparseLu,
    scratch: LuScratch,
    /// CSC values of the current iteration's matrix.
    values: Vec<f64>,
    /// Linear-elements-only baseline (values + RHS) of the current rung.
    baseline_values: Vec<f64>,
    baseline_b: Vec<f64>,
    /// RHS of the current iteration (original coordinates).
    b: Vec<f64>,
    /// RHS permuted into the layout's fill-reducing ordering.
    pb: Vec<f64>,
    /// Solution scratch (permuted coordinates).
    x: Vec<f64>,
    /// Linear baseline of the *previous* solve on this layout, kept only
    /// to measure how few stamps an injection actually changes
    /// (`solver.stamp_deltas`). Never read by the numerics.
    prev_linear: Vec<f64>,
    prev_linear_valid: bool,
}

/// Observability tallies accumulated by the sparse stage and flushed by
/// `solve_operating_point` into the thread-current telemetry handle.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SolverCounters {
    /// Full pivoting factorizations performed.
    pub(crate) refactorizations: u64,
    /// Newton iterations that replayed an existing factorization.
    pub(crate) factor_reuse: u64,
    /// Linear-baseline slots that changed versus the previous solve on
    /// the same layout — the stamp-level delta of a fault injection.
    pub(crate) stamp_deltas: u64,
    /// Wall-clock spent factoring/refactoring, in seconds (only measured
    /// while telemetry is live).
    pub(crate) factor_seconds: f64,
}

impl SolverCounters {
    pub(crate) fn take(&mut self) -> SolverCounters {
        std::mem::take(self)
    }
}

/// A reusable solver workspace: symbolic layouts, factorization buffers
/// and scratch vectors shared across solves (see the module docs for the
/// reuse contract). Cheap to create; create one per worker thread and
/// feed it every solve that worker performs.
#[derive(Default)]
pub struct SolverWorkspace {
    /// MRU-ordered cache; boxed so the per-hit `rotate_right` moves
    /// pointers, not the entries' buffer headers.
    #[allow(clippy::vec_box)]
    entries: Vec<Box<LayoutEntry>>,
    pub(crate) counters: SolverCounters,
}

impl SolverWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> SolverWorkspace {
        SolverWorkspace::default()
    }

    /// Computes the DC operating point of `circuit` under `options`,
    /// reusing this workspace's cached layouts and buffers. Results are
    /// bit-identical to [`Circuit::dc_with_options`] on a fresh workspace.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularMatrix`] for ill-posed circuits and
    /// [`CircuitError::NoConvergence`] once every enabled recovery rung is
    /// exhausted.
    pub fn dc(
        &mut self,
        circuit: &Circuit,
        options: &SolverOptions,
    ) -> Result<(DcSolution, SolveDiagnostics)> {
        let layout = Layout::build(circuit, Mode::Dc);
        let (x, diagnostics) = solve_operating_point(circuit, &layout, None, options, self)?;
        Ok((DcSolution::new(&layout, x), diagnostics))
    }

    /// Number of cached symbolic layouts (test/diagnostic aid).
    pub fn cached_layouts(&self) -> usize {
        self.entries.len()
    }

    /// Borrows (building if needed) the layout entry for this circuit
    /// structure and wraps it in a per-call sparse stage.
    pub(crate) fn stage(
        &mut self,
        circuit: &Circuit,
        layout: &Layout,
        mode: Mode,
        timed: bool,
    ) -> SparseStage<'_> {
        let SolverWorkspace { entries, counters } = self;
        let key = layout_key(circuit, mode);
        let found = entries.iter().position(|e| e.key == key);
        match found {
            Some(i) => entries[..=i].rotate_right(1),
            None => {
                let ml = build_matrix_layout(circuit, layout, mode);
                let nnz = ml.pattern.nnz();
                let dim = ml.dim;
                entries.insert(
                    0,
                    Box::new(LayoutEntry {
                        key,
                        ml,
                        lu: SparseLu::default(),
                        scratch: LuScratch::default(),
                        values: vec![0.0; nnz],
                        baseline_values: vec![0.0; nnz],
                        baseline_b: vec![0.0; dim],
                        b: vec![0.0; dim],
                        pb: vec![0.0; dim],
                        x: Vec::new(),
                        prev_linear: Vec::new(),
                        prev_linear_valid: false,
                    }),
                );
                entries.truncate(LAYOUT_CACHE_CAP);
            }
        }
        let entry = &mut *entries[0];
        entry.lu.invalidate();
        SparseStage { entry, counters, baseline_tag: None, deltas_counted: false, timed }
    }
}

/// The sparse [`LinearStage`]: one per `solve_operating_point` call.
/// Holds the workspace's layout entry for the duration of the ladder walk
/// and enforces the purity contract — the first iteration always performs
/// a full pivoting factorization; later iterations (and later rungs of
/// the same call) replay its pivot order, falling back to a full factor
/// when a pivot drifts below the stability floor.
pub(crate) struct SparseStage<'a> {
    entry: &'a mut LayoutEntry,
    counters: &'a mut SolverCounters,
    /// `(gmin, source_scale)` bit patterns the current linear baseline was
    /// assembled under; `None` until the first assembly of this call.
    baseline_tag: Option<(u64, u64)>,
    /// Stamp deltas are measured once per call, against the previous call
    /// on the same layout.
    deltas_counted: bool,
    /// Whether to pay for factorization clocks (telemetry live).
    timed: bool,
}

impl LinearStage for SparseStage<'_> {
    fn assemble_and_solve(
        &mut self,
        circuit: &Circuit,
        layout: &Layout,
        junctions: &Junctions,
        companions: Option<&Companions<'_>>,
        settings: &NewtonSettings,
    ) -> Result<Vec<f64>> {
        let e = &mut *self.entry;
        let tag = (settings.gmin.to_bits(), settings.source_scale.to_bits());
        if self.baseline_tag != Some(tag) {
            assemble_sparse_linear(
                circuit,
                layout,
                &e.ml,
                companions,
                settings,
                &mut e.baseline_values,
                &mut e.baseline_b,
            );
            if !self.deltas_counted {
                if e.prev_linear_valid && e.prev_linear.len() == e.baseline_values.len() {
                    let changed = e
                        .baseline_values
                        .iter()
                        .zip(e.prev_linear.iter())
                        .filter(|(a, b)| a.to_bits() != b.to_bits())
                        .count();
                    self.counters.stamp_deltas += changed as u64;
                }
                e.prev_linear.clear();
                e.prev_linear.extend_from_slice(&e.baseline_values);
                e.prev_linear_valid = true;
                self.deltas_counted = true;
            }
            self.baseline_tag = Some(tag);
        }
        e.values.copy_from_slice(&e.baseline_values);
        e.b.copy_from_slice(&e.baseline_b);
        restamp_nonlinear(
            circuit,
            layout,
            &e.ml,
            junctions,
            companions,
            settings,
            &mut e.values,
            &mut e.b,
        );
        let started = self.timed.then(Instant::now);
        let mut needs_full_factor = true;
        if e.lu.is_valid()
            && e.lu.refactor(&e.ml.pattern, &e.values, &mut e.scratch) == Refactor::Done
        {
            self.counters.factor_reuse += 1;
            needs_full_factor = false;
        }
        if needs_full_factor {
            e.lu.factor(&e.ml.pattern, &e.values, &mut e.scratch)
                .map_err(|col| CircuitError::SingularMatrix { row: col })?;
            self.counters.refactorizations += 1;
        }
        if let Some(started) = started {
            self.counters.factor_seconds += started.elapsed().as_secs_f64();
        }
        // The factors live in the layout's fill-reducing ordering: permute
        // the RHS in, solve, and permute the solution back out.
        let perm = &e.ml.perm;
        for (i, &bi) in e.b.iter().enumerate() {
            e.pb[perm[i] as usize] = bi;
        }
        e.lu.solve_into(&e.pb, &mut e.x);
        let mut out = vec![0.0; e.ml.dim];
        for (i, o) in out.iter_mut().enumerate() {
            *o = e.x[perm[i] as usize];
        }
        Ok(out)
    }
}
