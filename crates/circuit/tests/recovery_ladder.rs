//! Regression and property tests for the convergence-recovery ladder.
//!
//! The reference pathological circuit is a brown-out load biased exactly on
//! its threshold: a 5 V source behind a 1 Ω series resistor feeding a 3 A
//! load with a 2.75 V brown-out knee. Plain Newton's ±0.5 V step limiter
//! locks into an exact 2.5 V ↔ 3.0 V limit cycle on that circuit (the
//! proposal from 2.5 V overshoots past 3.0 V and vice versa), while the
//! true operating point sits near 2.80 V — reachable by every recovery
//! strategy.

use decisive_circuit::{Circuit, CircuitError, NodeId, SolveStrategy, SolverOptions};
use proptest::prelude::*;

/// Supply volts, series ohms, load on-amps, brown-out volts chosen so the
/// undamped limited Newton iteration 2-cycles on the step-limit grid.
fn brownout_at_threshold() -> (Circuit, NodeId) {
    let mut c = Circuit::new("brownout-threshold");
    let top = c.node();
    let load_node = c.node();
    c.add_voltage_source("DC1", top, NodeId::GROUND, 5.0).unwrap();
    c.add_resistor("R1", top, load_node, 1.0).unwrap();
    c.add_load("MC1", load_node, NodeId::GROUND, 3.0, 2.75, 0.1).unwrap();
    (c, load_node)
}

#[test]
fn plain_newton_fails_with_meaningful_residual() {
    let (c, _) = brownout_at_threshold();
    let err = c.dc_with_options(&SolverOptions::plain_newton_only()).unwrap_err();
    match err {
        CircuitError::NoConvergence { iterations, residual } => {
            assert_eq!(iterations, 400);
            // The satellite fix: the residual is the last update magnitude
            // (the 0.5 V limit-cycle step), not NaN.
            assert!(residual.is_finite(), "residual must be finite, got {residual}");
            assert!(residual > 0.1, "limit cycle residual should be ~0.5, got {residual}");
        }
        other => panic!("expected NoConvergence, got {other:?}"),
    }
}

#[test]
fn default_ladder_recovers_via_damped_newton() {
    let (c, load_node) = brownout_at_threshold();
    let (sol, diag) = c.dc_with_diagnostics().unwrap();
    assert!(diag.recovered());
    assert_eq!(diag.strategy, SolveStrategy::DampedNewton);
    assert!(diag.rungs >= 1);
    assert!(diag.iterations > 400, "plain attempt iterations must be included");
    assert!(diag.residual < 1e-8);
    let v = sol.voltage(load_node);
    assert!((2.7..2.9).contains(&v), "operating point near the knee, got {v}");
}

#[test]
fn gmin_stepping_recovers_when_damping_disabled() {
    let (c, load_node) = brownout_at_threshold();
    let options = SolverOptions { damped: false, ..SolverOptions::default() };
    let (sol, diag) = c.dc_with_options(&options).unwrap();
    assert_eq!(diag.strategy, SolveStrategy::GminStepping);
    let v = sol.voltage(load_node);
    assert!((2.7..2.9).contains(&v), "operating point near the knee, got {v}");
}

#[test]
fn source_stepping_recovers_as_last_resort() {
    let (c, load_node) = brownout_at_threshold();
    let options = SolverOptions { damped: false, gmin_stepping: false, ..SolverOptions::default() };
    let (sol, diag) = c.dc_with_options(&options).unwrap();
    assert_eq!(diag.strategy, SolveStrategy::SourceStepping);
    let v = sol.voltage(load_node);
    assert!((2.7..2.9).contains(&v), "operating point near the knee, got {v}");
}

#[test]
fn all_strategies_agree_on_the_operating_point() {
    let (c, load_node) = brownout_at_threshold();
    let damped = c.dc_with_diagnostics().unwrap().0.voltage(load_node);
    let gmin = c
        .dc_with_options(&SolverOptions { damped: false, ..SolverOptions::default() })
        .unwrap()
        .0
        .voltage(load_node);
    let source = c
        .dc_with_options(&SolverOptions {
            damped: false,
            gmin_stepping: false,
            ..SolverOptions::default()
        })
        .unwrap()
        .0
        .voltage(load_node);
    assert!((damped - gmin).abs() < 1e-6, "damped {damped} vs gmin {gmin}");
    assert!((damped - source).abs() < 1e-6, "damped {damped} vs source {source}");
}

#[test]
fn exhausted_ladder_reports_total_work() {
    let (c, _) = brownout_at_threshold();
    // A budget too small for any rung to converge.
    let options = SolverOptions { budget: 10, ..SolverOptions::default() };
    let err = c.dc_with_options(&options).unwrap_err();
    match err {
        CircuitError::NoConvergence { iterations, residual } => {
            assert!(iterations <= 10, "budget must cap total work, spent {iterations}");
            assert!(residual.is_finite());
        }
        other => panic!("expected NoConvergence, got {other:?}"),
    }
}

#[test]
fn singular_circuits_do_not_walk_the_ladder() {
    let mut c = Circuit::new("loop");
    let a = c.node();
    c.add_voltage_source("V1", a, NodeId::GROUND, 5.0).unwrap();
    c.add_voltage_source("V2", a, NodeId::GROUND, 3.0).unwrap();
    let err = c.dc_with_diagnostics().unwrap_err();
    assert!(matches!(err, CircuitError::SingularMatrix { .. }));
}

/// Builds a well-behaved series/shunt network that plain Newton handles.
fn benign_circuit(volts: f64, r1: f64, r2: f64, with_diode: bool, with_load: bool) -> Circuit {
    let mut c = Circuit::new("benign");
    let top = c.node();
    let mid = c.node();
    c.add_voltage_source("V1", top, NodeId::GROUND, volts).unwrap();
    c.add_resistor("R1", top, mid, r1).unwrap();
    c.add_resistor("R2", mid, NodeId::GROUND, r2).unwrap();
    if with_diode {
        c.add_diode("D1", mid, NodeId::GROUND).unwrap();
    }
    if with_load {
        // Brown-out knee far below the operating range: no limit cycle.
        c.add_load("MC1", mid, NodeId::GROUND, 0.01, 0.5, 0.001).unwrap();
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ladder must be invisible on circuits plain Newton already
    /// solves: same strategy, bitwise-identical node voltages.
    #[test]
    fn ladder_is_bitwise_identical_when_plain_newton_converges(
        volts in 1.0f64..24.0,
        r1 in 10.0f64..10_000.0,
        r2 in 10.0f64..10_000.0,
        with_diode in any::<bool>(),
        with_load in any::<bool>(),
    ) {
        let c = benign_circuit(volts, r1, r2, with_diode, with_load);
        let plain = c.dc_with_options(&SolverOptions::plain_newton_only());
        let Ok((plain_sol, plain_diag)) = plain else {
            // Not the property under test: skip the rare non-convergent draw.
            return Ok(());
        };
        let (ladder_sol, ladder_diag) = c.dc_with_diagnostics().unwrap();
        prop_assert_eq!(ladder_diag.strategy, SolveStrategy::Newton);
        prop_assert_eq!(ladder_diag.rungs, 0);
        prop_assert_eq!(ladder_diag.iterations, plain_diag.iterations);
        let a = plain_sol.node_voltages();
        let b = ladder_sol.node_voltages();
        prop_assert_eq!(a.len(), b.len());
        for (va, vb) in a.iter().zip(b.iter()) {
            prop_assert!(va.to_bits() == vb.to_bits(), "bitwise mismatch: {} vs {}", va, vb);
        }
    }
}
