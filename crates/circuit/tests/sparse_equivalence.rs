//! Differential tests for the sparse MNA kernel against the dense oracle.
//!
//! The dense kernel (`SolverKernel::Dense`) is kept exactly for this file:
//! generated netlists — healthy and with injected faults — must produce
//! the same operating points, the same recovery-ladder strategy and the
//! same deviation verdicts under both kernels. A second property pins the
//! workspace-reuse contract: solving through a warm [`SolverWorkspace`]
//! is *bitwise* identical to solving through a fresh one, which is what
//! lets the campaign layer thread one workspace through thousands of
//! injections without changing a single verdict.

use decisive_circuit::{
    Circuit, ElementId, Fault, NodeId, SolverKernel, SolverOptions, SolverWorkspace,
};
use proptest::prelude::*;

/// Shape of one rung of the generated ladder network.
#[derive(Debug, Clone)]
struct Rung {
    series_ohms: f64,
    shunt_ohms: f64,
    diode: bool,
    load: bool,
}

fn rung_strategy() -> impl Strategy<Value = Rung> {
    (1.0f64..5_000.0, 10.0f64..50_000.0, any::<bool>(), any::<bool>()).prop_map(
        |(series_ohms, shunt_ohms, diode, load)| Rung { series_ohms, shunt_ohms, diode, load },
    )
}

/// Builds a series/shunt ladder: `V1` feeds `rungs.len()` RC-free stages,
/// each with a series resistor, a shunt resistor, and optionally a diode
/// and a behavioural load to ground. A bridge resistor from the first to
/// the last stage (when the ladder is long enough) closes a loop so LU
/// fill-in beyond the original pattern is exercised, and a current sensor
/// in the first series branch provides the campaign-style observable.
///
/// Returns the circuit, the sensor, and the fault-injectable elements.
fn ladder(volts: f64, rungs: &[Rung], bridge: bool) -> (Circuit, ElementId, Vec<ElementId>) {
    let mut c = Circuit::new("generated-ladder");
    let top = c.node();
    c.add_voltage_source("V1", top, NodeId::GROUND, volts).unwrap();
    let sense = c.node();
    let cs = c.add_current_sensor("CS1", top, sense).unwrap();
    let mut injectable = Vec::new();
    let mut prev = sense;
    let mut first_mid = None;
    for (i, r) in rungs.iter().enumerate() {
        let mid = c.node();
        injectable.push(c.add_resistor(format!("RS{i}"), prev, mid, r.series_ohms).unwrap());
        injectable
            .push(c.add_resistor(format!("RG{i}"), mid, NodeId::GROUND, r.shunt_ohms).unwrap());
        if r.diode {
            injectable.push(c.add_diode(format!("D{i}"), mid, NodeId::GROUND).unwrap());
        }
        if r.load {
            // Knee far below the operating range: no pathological cycle.
            c.add_load(format!("MC{i}"), mid, NodeId::GROUND, 0.01, 0.5, 0.001).unwrap();
        }
        first_mid.get_or_insert(mid);
        prev = mid;
    }
    if bridge && rungs.len() >= 3 {
        let first = first_mid.unwrap();
        injectable.push(c.add_resistor("RB", first, prev, 4_700.0).unwrap());
    }
    (c, cs, injectable)
}

fn dense_options() -> SolverOptions {
    SolverOptions { kernel: SolverKernel::Dense, ..SolverOptions::default() }
}

/// Campaign-style deviation verdict between two sensor readings.
fn deviates(before: f64, after: f64) -> bool {
    let denom = before.abs().max(after.abs()).max(1e-12);
    (after - before).abs() / denom > 0.2
}

fn assert_close(a: &[f64], b: &[f64]) -> Result<(), String> {
    prop_assert_eq!(a.len(), b.len());
    for (va, vb) in a.iter().zip(b.iter()) {
        let scale = va.abs().max(vb.abs()).max(1.0);
        prop_assert!(
            (va - vb).abs() <= 1e-6 * scale,
            "kernel mismatch: sparse {} vs dense {}",
            va,
            vb
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Healthy and faulted generated netlists: the sparse kernel and the
    /// dense oracle agree on the operating point (within Newton tolerance),
    /// walk the same recovery rung, and produce the same DVF verdict.
    #[test]
    fn sparse_agrees_with_dense_oracle(
        volts in 1.0f64..24.0,
        rungs in proptest::collection::vec(rung_strategy(), 1..6),
        bridge in any::<bool>(),
        fault_pick in 0usize..64,
        short in any::<bool>(),
    ) {
        let (c, cs, injectable) = ladder(volts, &rungs, bridge);
        let (sparse_sol, sparse_diag) = c.dc_with_options(&SolverOptions::default()).unwrap();
        let (dense_sol, dense_diag) = c.dc_with_options(&dense_options()).unwrap();
        prop_assert_eq!(sparse_diag.strategy, dense_diag.strategy);
        assert_close(&sparse_sol.node_voltages(), &dense_sol.node_voltages())?;
        let nominal_sparse = c.sensor_reading(&sparse_sol, cs).unwrap();
        let nominal_dense = c.sensor_reading(&dense_sol, cs).unwrap();

        let target = injectable[fault_pick % injectable.len()];
        let fault = if short { Fault::Short } else { Fault::Open };
        let faulted = c.with_fault(target, fault).unwrap();
        let sparse = faulted.dc_with_options(&SolverOptions::default());
        let dense = faulted.dc_with_options(&dense_options());
        match (sparse, dense) {
            (Ok((ss, sd)), Ok((ds, dd))) => {
                prop_assert_eq!(sd.strategy, dd.strategy);
                assert_close(&ss.node_voltages(), &ds.node_voltages())?;
                // The verdict the FMEA derives must be kernel-independent.
                let after_sparse = faulted.sensor_reading(&ss, cs).unwrap();
                let after_dense = faulted.sensor_reading(&ds, cs).unwrap();
                prop_assert_eq!(
                    deviates(nominal_sparse, after_sparse),
                    deviates(nominal_dense, after_dense)
                );
            }
            // Both kernels must classify a case as unsolvable together —
            // a fault that only one kernel can solve would silently flip
            // campaign verdicts between kernels.
            (s, d) => prop_assert!(
                s.is_err() && d.is_err(),
                "kernels disagree on solvability: sparse {:?} dense {:?}",
                s.map(|_| ()),
                d.map(|_| ())
            ),
        }
    }

    /// The purity contract of `SolverWorkspace`: after solving an arbitrary
    /// interleaving of healthy and faulted circuits, a warm workspace
    /// returns bitwise-identical results to a fresh one (and to the
    /// workspace-free `dc_with_options` entry point).
    #[test]
    fn warm_workspace_is_bitwise_identical_to_fresh(
        volts in 1.0f64..24.0,
        rungs in proptest::collection::vec(rung_strategy(), 1..5),
        fault_pick in 0usize..64,
        short in any::<bool>(),
    ) {
        let (c, _, injectable) = ladder(volts, &rungs, false);
        let target = injectable[fault_pick % injectable.len()];
        let fault = if short { Fault::Short } else { Fault::Open };
        let faulted = c.with_fault(target, fault).unwrap();
        let options = SolverOptions::default();

        // Warm one workspace with the whole sequence, then re-solve each
        // circuit through it: history must not leak into the numerics.
        let mut warm = SolverWorkspace::new();
        let _ = warm.dc(&c, &options);
        let _ = warm.dc(&faulted, &options);
        for circuit in [&c, &faulted] {
            let warm_result = warm.dc(circuit, &options);
            let fresh_result = SolverWorkspace::new().dc(circuit, &options);
            let plain_result = circuit.dc_with_options(&options);
            match (warm_result, fresh_result, plain_result) {
                (Ok((w, wd)), Ok((f, fd)), Ok((p, pd))) => {
                    prop_assert_eq!(wd.strategy, fd.strategy);
                    prop_assert_eq!(wd.iterations, fd.iterations);
                    prop_assert_eq!(pd.strategy, fd.strategy);
                    let (w, f, p) = (w.node_voltages(), f.node_voltages(), p.node_voltages());
                    for i in 0..w.len() {
                        prop_assert!(
                            w[i].to_bits() == f[i].to_bits() && f[i].to_bits() == p[i].to_bits(),
                            "workspace history leaked into the solution: \
                             warm {} fresh {} plain {}",
                            w[i], f[i], p[i]
                        );
                    }
                }
                (w, f, p) => prop_assert!(
                    w.is_err() && f.is_err() && p.is_err(),
                    "solvability depends on workspace history"
                ),
            }
        }
    }
}

/// An open or short fault keeps the element's connectivity, so the faulted
/// circuit reuses the healthy circuit's cached symbolic layout; the cache
/// holds one entry for the shared structure.
#[test]
fn fault_injection_reuses_the_healthy_layout() {
    let rungs = vec![
        Rung { series_ohms: 100.0, shunt_ohms: 1_000.0, diode: true, load: false },
        Rung { series_ohms: 220.0, shunt_ohms: 4_700.0, diode: false, load: true },
    ];
    let (c, _, injectable) = ladder(12.0, &rungs, false);
    let mut ws = SolverWorkspace::new();
    ws.dc(&c, &SolverOptions::default()).unwrap();
    assert_eq!(ws.cached_layouts(), 1);
    for &target in &injectable {
        for fault in [Fault::Open, Fault::Short] {
            let faulted = c.with_fault(target, fault).unwrap();
            ws.dc(&faulted, &SolverOptions::default()).unwrap();
        }
    }
    assert_eq!(
        ws.cached_layouts(),
        1,
        "every open/short injection must hit the healthy circuit's layout"
    );
}
