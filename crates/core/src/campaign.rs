//! Campaign supervision for fault-injection sweeps.
//!
//! A fault-injection FMEA is a *campaign* of independent simulations, and a
//! single pathological case must not poison the whole run: a panic or an
//! exhausted solver ladder affects only its own row, while the outcome of
//! every case is classified and aggregated into a [`CampaignHealth`] report
//! the CLI prints and the engine persists. A campaign-level circuit
//! breaker aborts when too large a fraction of cases is unsolvable — at
//! that point the *model* is broken, not the physics, and a conservative
//! table would be quietly wrong.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use decisive_circuit::SolverOptions;

use crate::error::{CoreError, Result};

/// How one injection case ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CaseOutcome {
    /// Plain Newton converged first try.
    Converged,
    /// Plain Newton failed but a recovery strategy produced a genuine
    /// solution.
    Recovered {
        /// The ladder strategy that converged (e.g. `damped-newton`).
        strategy: String,
    },
    /// Every enabled rung of the recovery ladder was exhausted (or the
    /// injection itself failed); the row is conservatively safety-related.
    Unsolvable {
        /// The terminal solver error.
        reason: String,
    },
    /// The analysis code panicked; the row is conservatively
    /// safety-related.
    Panicked,
    /// The case was not simulated (non-electrical block or a failure mode
    /// with no electrical interpretation).
    Skipped,
}

/// Per-case record produced by the supervisor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseReport {
    /// `component/failure-mode` label of the case.
    pub case: String,
    /// Outcome classification.
    pub outcome: CaseOutcome,
    /// Newton iterations spent on the case (all ladder rungs included).
    pub iterations: usize,
    /// Wall-clock milliseconds spent on the case.
    pub wall_ms: f64,
}

/// Campaign-level policy: per-case solver budget and the unsolvable-rate
/// circuit breaker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Abort the campaign when more than this fraction of cases is
    /// unsolvable or panicked (and at least [`min_cases`] ran). `1.0`
    /// disables the breaker.
    ///
    /// [`min_cases`]: CampaignConfig::min_cases
    pub max_unsolvable_fraction: f64,
    /// The breaker only trips on campaigns with at least this many cases —
    /// a one-case campaign failing is not a failure *rate*.
    pub min_cases: usize,
    /// Per-case solver options: which recovery rungs to walk and the total
    /// Newton-iteration budget per case.
    pub solver: SolverOptions,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            max_unsolvable_fraction: 0.5,
            min_cases: 4,
            solver: SolverOptions::default(),
        }
    }
}

impl CampaignConfig {
    /// Validates the breaker fraction.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the fraction is not in
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.max_unsolvable_fraction) {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "max_unsolvable_fraction must be in [0, 1], got {}",
                    self.max_unsolvable_fraction
                ),
            });
        }
        Ok(())
    }
}

/// Aggregated health of one injection campaign.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CampaignHealth {
    /// Total cases supervised.
    pub total: usize,
    /// Cases solved by plain Newton.
    pub converged: usize,
    /// Cases solved by a recovery strategy.
    pub recovered: usize,
    /// Cases no strategy could solve.
    pub unsolvable: usize,
    /// Cases whose analysis panicked.
    pub panicked: usize,
    /// Cases that were not simulated at all.
    pub skipped: usize,
    /// Recovery-strategy histogram: strategy name → number of cases it
    /// rescued.
    pub strategy_histogram: BTreeMap<String, usize>,
    /// Labels of the unsolvable / panicked cases, in sweep order.
    pub failed_cases: Vec<String>,
    /// The slowest cases as `(label, wall_ms)`, most expensive first.
    pub slowest: Vec<(String, f64)>,
    /// How degraded the run that produced this campaign was (quarantined
    /// cache entries, substituted FITs, unresolved references, timed-out
    /// jobs). `None` for pristine runs and for reports persisted before
    /// degraded-mode tracking existed.
    pub degraded: Option<crate::degraded::DegradedModeReport>,
}

/// How many slowest cases the health report keeps.
const SLOWEST_KEPT: usize = 5;

impl CampaignHealth {
    /// Aggregates per-case reports into a health record, mirroring the
    /// outcome counts onto the thread-current telemetry handle.
    pub fn from_reports(reports: &[CaseReport]) -> CampaignHealth {
        let mut health = CampaignHealth { total: reports.len(), ..CampaignHealth::default() };
        for report in reports {
            match &report.outcome {
                CaseOutcome::Converged => health.converged += 1,
                CaseOutcome::Recovered { strategy } => {
                    health.recovered += 1;
                    *health.strategy_histogram.entry(strategy.clone()).or_insert(0) += 1;
                }
                CaseOutcome::Unsolvable { .. } => {
                    health.unsolvable += 1;
                    health.failed_cases.push(report.case.clone());
                }
                CaseOutcome::Panicked => {
                    health.panicked += 1;
                    health.failed_cases.push(report.case.clone());
                }
                CaseOutcome::Skipped => health.skipped += 1,
            }
        }
        let mut by_cost: Vec<(String, f64)> =
            reports.iter().map(|r| (r.case.clone(), r.wall_ms)).collect();
        by_cost.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        by_cost.truncate(SLOWEST_KEPT);
        health.slowest = by_cost;
        decisive_obs::with_current(|telemetry| {
            telemetry.count("campaign.cases", health.total as u64);
            telemetry.count("campaign.converged", health.converged as u64);
            telemetry.count("campaign.recovered", health.recovered as u64);
            telemetry.count("campaign.unsolvable", health.unsolvable as u64);
            telemetry.count("campaign.panicked", health.panicked as u64);
            telemetry.count("campaign.skipped", health.skipped as u64);
        });
        health
    }

    /// Fraction of cases that are unsolvable or panicked (0 for an empty
    /// campaign).
    pub fn failure_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.unsolvable + self.panicked) as f64 / self.total as f64
        }
    }

    /// `true` when the campaign tripped the circuit breaker under `config`.
    pub fn breaches(&self, config: &CampaignConfig) -> bool {
        self.total >= config.min_cases && self.failure_fraction() > config.max_unsolvable_fraction
    }

    /// Checks the circuit breaker, turning a breach into the campaign-abort
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CampaignAborted`] when the failure rate exceeds
    /// the configured limit.
    pub fn enforce(&self, config: &CampaignConfig) -> Result<()> {
        if self.breaches(config) {
            return Err(CoreError::CampaignAborted {
                failed: self.unsolvable + self.panicked,
                total: self.total,
                limit: config.max_unsolvable_fraction,
            });
        }
        Ok(())
    }

    /// Merges another health record into this one (used to combine the
    /// single-fault sweep with joint-injection cases).
    pub fn merge(&mut self, other: &CampaignHealth) {
        self.total += other.total;
        self.converged += other.converged;
        self.recovered += other.recovered;
        self.unsolvable += other.unsolvable;
        self.panicked += other.panicked;
        self.skipped += other.skipped;
        for (strategy, count) in &other.strategy_histogram {
            *self.strategy_histogram.entry(strategy.clone()).or_insert(0) += count;
        }
        self.failed_cases.extend(other.failed_cases.iter().cloned());
        let mut slowest: Vec<(String, f64)> =
            self.slowest.iter().chain(other.slowest.iter()).cloned().collect();
        slowest.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        slowest.truncate(SLOWEST_KEPT);
        self.slowest = slowest;
        if let Some(theirs) = &other.degraded {
            match &mut self.degraded {
                Some(mine) => mine.merge(theirs),
                None => self.degraded = Some(theirs.clone()),
            }
        }
    }

    /// Attaches (or merges in) a degraded-mode report. An empty report is
    /// ignored, keeping pristine campaigns at `degraded: None`.
    pub fn absorb_degradation(&mut self, report: &crate::degraded::DegradedModeReport) {
        if !report.is_degraded() {
            return;
        }
        match &mut self.degraded {
            Some(mine) => mine.merge(report),
            None => self.degraded = Some(report.clone()),
        }
    }

    /// `true` when the producing run degraded in any way (see
    /// [`DegradedModeReport::is_degraded`](crate::degraded::DegradedModeReport::is_degraded)).
    pub fn is_degraded(&self) -> bool {
        self.degraded.as_ref().is_some_and(|d| d.is_degraded())
    }

    /// Renders the health report as the CLI prints it: one `#`-prefixed
    /// line per aspect, omitting empty sections.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# campaign health: {} cases — {} converged, {} recovered, {} unsolvable, {} panicked, {} skipped",
            self.total, self.converged, self.recovered, self.unsolvable, self.panicked, self.skipped
        );
        if !self.strategy_histogram.is_empty() {
            let parts: Vec<String> = self
                .strategy_histogram
                .iter()
                .map(|(strategy, count)| format!("{strategy} x{count}"))
                .collect();
            let _ = writeln!(out, "# recovery strategies: {}", parts.join(", "));
        }
        if !self.failed_cases.is_empty() {
            let _ = writeln!(out, "# failed cases: {}", self.failed_cases.join(", "));
        }
        if self.slowest.iter().any(|(_, ms)| *ms > 0.0) {
            let parts: Vec<String> =
                self.slowest.iter().map(|(case, ms)| format!("{case} {ms:.2} ms")).collect();
            let _ = writeln!(out, "# slowest cases: {}", parts.join(", "));
        }
        if let Some(degraded) = &self.degraded {
            out.push_str(&degraded.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(case: &str, outcome: CaseOutcome, wall_ms: f64) -> CaseReport {
        CaseReport { case: case.into(), outcome, iterations: 10, wall_ms }
    }

    #[test]
    fn aggregates_outcomes_and_histogram() {
        let reports = vec![
            report("A/Open", CaseOutcome::Converged, 1.0),
            report("B/Open", CaseOutcome::Recovered { strategy: "damped-newton".into() }, 9.0),
            report("C/Open", CaseOutcome::Recovered { strategy: "damped-newton".into() }, 2.0),
            report("D/Open", CaseOutcome::Unsolvable { reason: "no convergence".into() }, 5.0),
            report("E/Open", CaseOutcome::Panicked, 0.0),
            report("F/Open", CaseOutcome::Skipped, 0.0),
        ];
        let health = CampaignHealth::from_reports(&reports);
        assert_eq!(health.total, 6);
        assert_eq!(health.converged, 1);
        assert_eq!(health.recovered, 2);
        assert_eq!(health.unsolvable, 1);
        assert_eq!(health.panicked, 1);
        assert_eq!(health.skipped, 1);
        assert_eq!(health.strategy_histogram.get("damped-newton"), Some(&2));
        assert_eq!(health.failed_cases, vec!["D/Open".to_string(), "E/Open".to_string()]);
        assert_eq!(health.slowest[0].0, "B/Open");
        let rendered = health.render();
        assert!(rendered.contains("damped-newton x2"));
        assert!(rendered.contains("6 cases"));
    }

    #[test]
    fn breaker_trips_only_above_limit_and_min_cases() {
        let bad = report("X/Open", CaseOutcome::Unsolvable { reason: "r".into() }, 0.0);
        let good = report("Y/Open", CaseOutcome::Converged, 0.0);
        let config = CampaignConfig {
            max_unsolvable_fraction: 0.4,
            min_cases: 3,
            ..CampaignConfig::default()
        };
        // 2 of 4 failed (50 % > 40 %): trips.
        let health =
            CampaignHealth::from_reports(&[bad.clone(), bad.clone(), good.clone(), good.clone()]);
        assert!(health.breaches(&config));
        assert!(matches!(
            health.enforce(&config),
            Err(CoreError::CampaignAborted { failed: 2, total: 4, .. })
        ));
        // 1 of 4 failed (25 %): holds.
        let health = CampaignHealth::from_reports(&[bad.clone(), good.clone(), good.clone(), good]);
        assert!(!health.breaches(&config));
        // 2 of 2 failed but below min_cases: holds.
        let health = CampaignHealth::from_reports(&[bad.clone(), bad]);
        assert!(!health.breaches(&config));
    }

    #[test]
    fn merge_combines_counts_and_slowest() {
        let mut a = CampaignHealth::from_reports(&[report("A", CaseOutcome::Converged, 3.0)]);
        let b = CampaignHealth::from_reports(&[report(
            "B",
            CaseOutcome::Recovered { strategy: "gmin-stepping".into() },
            7.0,
        )]);
        a.merge(&b);
        assert_eq!(a.total, 2);
        assert_eq!(a.recovered, 1);
        assert_eq!(a.strategy_histogram.get("gmin-stepping"), Some(&1));
        assert_eq!(a.slowest[0].0, "B");
    }

    #[test]
    fn degradation_is_absorbed_merged_and_rendered() {
        use crate::degraded::DegradedModeReport;
        let mut health = CampaignHealth::from_reports(&[report("A", CaseOutcome::Converged, 1.0)]);
        assert!(!health.is_degraded());
        health.absorb_degradation(&DegradedModeReport::default());
        assert_eq!(health.degraded, None, "empty reports leave the campaign pristine");

        health.absorb_degradation(&DegradedModeReport {
            quarantined_cache_entries: 2,
            ..DegradedModeReport::default()
        });
        assert!(health.is_degraded());
        assert!(health.render().contains("degraded mode: 2 quarantined"));

        let mut other = CampaignHealth::from_reports(&[report("B", CaseOutcome::Converged, 1.0)]);
        other.absorb_degradation(&DegradedModeReport {
            substituted_fits: vec!["row 2".into()],
            ..DegradedModeReport::default()
        });
        health.merge(&other);
        let degraded = health.degraded.as_ref().expect("merged report");
        assert_eq!(degraded.quarantined_cache_entries, 2);
        assert_eq!(degraded.substituted_fits, vec!["row 2".to_string()]);
    }

    #[test]
    fn config_validation_rejects_bad_fraction() {
        let config = CampaignConfig { max_unsolvable_fraction: 1.5, ..CampaignConfig::default() };
        assert!(config.validate().is_err());
        assert!(CampaignConfig::default().validate().is_ok());
    }
}
