//! The paper's case study (§V): a sensor power-supply system developed as a
//! Safety Element out of Context, in both of SAME's representations — the
//! block-diagram path (§V-A, via [`decisive_blocks::gallery`]) and the
//! manually-modelled SSAM path (§V-B, built here).

use decisive_hara::{Controllability, Exposure, HazardLog, HazardousEvent, Severity};
use decisive_ssam::architecture::{Component, ComponentKind, IoDirection};
use decisive_ssam::base::IntegrityLevel;
use decisive_ssam::id::Idx;
use decisive_ssam::model::SsamModel;
use decisive_ssam::requirement::{Requirement, RequirementPackage};

use crate::reliability::ReliabilityDb;

/// The case study's hazard log: the single top-level hazard *H1: the power
/// supply fails unexpectedly*, assessed to ASIL-B.
pub fn hazard_log() -> HazardLog {
    let mut log = HazardLog::new("sensor-power-supply HARA");
    log.record(HazardousEvent {
        id: "H1".into(),
        description: "The power supply fails unexpectedly".into(),
        situation: "proximity sensor operating".into(),
        severity: Severity::S2,
        exposure: Exposure::E4,
        controllability: Controllability::C2,
        safety_goal: "The power supply shall not fail undetected".into(),
    });
    log
}

/// Builds the §V-B SSAM model of the power-supply system: functional flow
/// `DC1 → D1 → L1 → MC1 → CS1` with the filter capacitors hanging off the
/// stable source, requirements, the H1 hazard, and Table II reliability
/// data aggregated in (DECISIVE Steps 1–3 on the SSAM path).
///
/// Returns the model and its top-level component.
///
/// # Examples
///
/// ```
/// use decisive_core::{case_study, fmea::graph};
///
/// # fn main() -> Result<(), decisive_core::CoreError> {
/// let (model, top) = case_study::ssam_model();
/// let table = graph::run(&model, top, &graph::GraphConfig::default())?;
/// let sr: Vec<_> = table.safety_related_components().into_iter().collect();
/// assert_eq!(sr, vec!["D1", "L1", "MC1"]);
/// # Ok(())
/// # }
/// ```
pub fn ssam_model() -> (SsamModel, Idx<Component>) {
    let mut model = SsamModel::new("sensor-power-supply");

    // Step 1 — requirements and hazards.
    let req = model.add_requirement(Requirement::safety(
        "SR-1",
        "Readings at CS1 shall remain correct while the supply operates",
        IntegrityLevel::AsilB,
    ));
    let mut package = RequirementPackage::new("power-supply requirements");
    package.requirements.push(req);
    model.requirement_packages.push(package);
    hazard_log().to_ssam(&mut model);

    // Step 2 — architectural design (functional flow, Fig. 12).
    let mut top_component = Component::new("sensor-power-supply", ComponentKind::System);
    top_component.integrity = Some(IntegrityLevel::AsilB);
    let top = model.add_component(top_component);
    let child = |model: &mut SsamModel, name: &str, type_key: &str| {
        let mut c = Component::new(name, ComponentKind::Hardware);
        c.type_key = Some(type_key.to_owned());
        model.add_child_component(top, c)
    };
    let dc1 = child(&mut model, "DC1", "DCSource");
    let d1 = child(&mut model, "D1", "Diode");
    let l1 = child(&mut model, "L1", "Inductor");
    let c1 = child(&mut model, "C1", "Capacitor");
    let c2 = child(&mut model, "C2", "Capacitor");
    let mc1 = child(&mut model, "MC1", "MC");
    let cs1 = child(&mut model, "CS1", "CurrentSensor");
    let gnd1 = child(&mut model, "GND1", "Ground");

    model.connect(top, dc1);
    model.connect(dc1, d1);
    model.connect(d1, l1);
    model.connect(l1, mc1);
    model.connect(mc1, cs1);
    model.connect(cs1, top);
    // Filter capacitors across the stable source; ground is a dead end.
    model.connect(dc1, c1);
    model.connect(dc1, c2);
    model.connect(mc1, gnd1);

    // MC1 and CS1 are dynamic — runtime monitors can be generated for them
    // — and CS1 exposes the monitored reading with its admissible limits.
    model.components[mc1].dynamic = true;
    model.components[cs1].dynamic = true;
    let reading = model.add_io_node(cs1, "reading", IoDirection::Output);
    model.io_nodes[reading].value = Some(0.1);
    model.io_nodes[reading].lower_limit = Some(0.08);
    model.io_nodes[reading].upper_limit = Some(0.12);

    // Step 3 — aggregate Table II reliability data.
    ReliabilityDb::paper_table_ii().aggregate_into(&mut model);

    // Traceability (paper §II-C): the safety requirement is allocated to
    // the sensing chain, and loss-of-function failure modes associate with
    // H1 (Fig. 9's "Reference: Hazards").
    let h1 = model.hazards.indices().next().expect("H1 was recorded");
    for component in [d1, l1, mc1] {
        let loss_modes: Vec<_> = model
            .failure_modes_of(component)
            .filter(|(_, fm)| fm.nature.breaks_path())
            .map(|(i, _)| i)
            .collect();
        for fm in loss_modes {
            model.failure_modes[fm].hazards.push(h1);
        }
    }
    for component in [mc1, cs1] {
        model.requirements[req].core.cite(decisive_ssam::base::CiteRef::Component(component));
    }

    // The HARA-side mitigation decision, recorded as a control measure.
    let mut measure = decisive_ssam::hazard::ControlMeasure::new("deploy ECC on MC1");
    measure.mitigates.push(h1);
    measure.decision = Some(decisive_ssam::hazard::SafetyDecision {
        rationale: "MC1's RAM failure dominates the single-point failure rate; \
                    ECC reduces its residual contribution by 99%"
            .to_owned(),
    });
    measure.validation = Some(decisive_ssam::hazard::ValidationPlan {
        description: "re-run the automated FMEDA and check SPFM >= 90%".to_owned(),
        validated: false,
    });
    let measure = model.add_control_measure(measure);
    if let Some(package) = model.hazard_packages.first_mut() {
        package.measures.push(measure);
    }

    (model, top)
}

/// Builds the Table I example: a Phase Locked Loop with three failure
/// modes, their impact classification modelled as [`FailureEffect`]s
/// (lower frequency DVF, higher frequency IVF, jitter DVF), and the two
/// safety mechanisms of the table (time-out watchdog 70 % on lower
/// frequency, dual-core lockstep 99 % on jitter).
///
/// Returns the model and its top-level component.
pub fn pll_model() -> (SsamModel, Idx<Component>) {
    use decisive_ssam::architecture::{Coverage, FailureEffect, FailureImpact, FailureNature};
    use decisive_ssam::base::ElementCore;

    let mut model = SsamModel::new("pll");
    let top = model.add_component(Component::new("clocking", ComponentKind::System));
    let mut pll = Component::new("PLL", ComponentKind::Hardware);
    pll.type_key = Some("PLL".to_owned());
    pll.fit = Some(decisive_ssam::architecture::Fit::new(50.0));
    pll.safety_related = true;
    let pll = model.add_child_component(top, pll);
    model.connect(top, pll);
    model.connect(pll, top);

    let add_mode = |model: &mut SsamModel, name: &str, nature, dist: f64, impact| {
        let fm = model.add_failure_mode(pll, name, nature, dist);
        let effect = model
            .failure_effects
            .alloc(FailureEffect { core: ElementCore::named(format!("{name} effect")), impact });
        model.failure_modes[fm].effects.push(effect);
        fm
    };
    let lower = add_mode(
        &mut model,
        "lower frequency",
        FailureNature::LossOfFunction,
        0.401,
        FailureImpact::DirectViolation,
    );
    let _higher = add_mode(
        &mut model,
        "higher frequency",
        FailureNature::Erroneous,
        0.287,
        FailureImpact::IndirectViolation,
    );
    let jitter = add_mode(
        &mut model,
        "jitter",
        FailureNature::Erroneous,
        0.312,
        FailureImpact::DirectViolation,
    );
    model.deploy_safety_mechanism(pll, "time-out watchdog", lower, Coverage::new(0.70), 1.0);
    model.deploy_safety_mechanism(pll, "dual-core lockstep", jitter, Coverage::new(0.99), 6.0);
    (model, top)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_well_formed() {
        let (model, _) = ssam_model();
        let issues = decisive_ssam::validate::validate(&model);
        assert!(issues.is_empty(), "unexpected issues: {issues:?}");
    }

    #[test]
    fn hazard_log_targets_asil_b() {
        assert_eq!(hazard_log().highest_asil(), Some(IntegrityLevel::AsilB));
    }

    #[test]
    fn reliability_was_aggregated() {
        let (model, _) = ssam_model();
        let d1 = model.component_by_name("D1").unwrap();
        assert_eq!(model.components[d1].fit.map(|f| f.value()), Some(10.0));
        assert_eq!(model.components[d1].failure_modes.len(), 2);
        let cs1 = model.component_by_name("CS1").unwrap();
        assert!(model.components[cs1].failure_modes.is_empty(), "no Table II entry for sensors");
    }

    #[test]
    fn pll_model_reproduces_table_i() {
        use crate::fmea::graph::{self, GraphConfig};
        use crate::mechanism::Deployment;
        use decisive_ssam::architecture::FailureImpact;

        let (model, top) = pll_model();
        let deployment = Deployment::from_ssam(&model);
        let table = graph::run(&model, top, &GraphConfig::default())
            .expect("graph FMEA runs")
            .with_deployment(&deployment);
        assert_eq!(table.rows.len(), 3);
        let row = |mode: &str| table.rows.iter().find(|r| r.failure_mode == mode).expect("row");
        // Impacts come from the modelled effects, matching Table I.
        assert_eq!(row("lower frequency").impact, Some(FailureImpact::DirectViolation));
        assert_eq!(row("higher frequency").impact, Some(FailureImpact::IndirectViolation));
        assert_eq!(row("jitter").impact, Some(FailureImpact::DirectViolation));
        // Mechanisms and coverages as printed.
        assert_eq!(row("lower frequency").mechanism.as_deref(), Some("time-out watchdog"));
        assert_eq!(row("jitter").mechanism.as_deref(), Some("dual-core lockstep"));
        assert!(row("higher frequency").mechanism.is_none());
        // LFM: the uncovered IVF mode (28.7 % of 50 FIT) is latent.
        assert!((table.lfm() - (1.0 - 0.287)).abs() < 1e-9);
    }

    #[test]
    fn dynamic_component_and_monitored_limits_exist() {
        let (model, _) = ssam_model();
        assert_eq!(model.dynamic_components().count(), 2);
        let cs1 = model.component_by_name("CS1").unwrap();
        let node = model.components[cs1].io_nodes[0];
        assert!(model.io_nodes[node].violates_limits(0.2));
        assert!(!model.io_nodes[node].violates_limits(0.1));
    }
}
