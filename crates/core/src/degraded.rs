//! Degraded-mode reporting: what the toolchain substituted, dropped or
//! abandoned to still produce an analysis.
//!
//! The DECISIVE loop only works if every design iteration yields *some*
//! safety analysis — an aborted FMEA is indistinguishable from "no
//! hazards". So instead of aborting on dirty inputs (a corrupted cache
//! from a killed run, a reliability row with a malformed FIT, an external
//! reference that no longer resolves, a simulation that blew its
//! deadline), the engine degrades: it quarantines, substitutes
//! conservative defaults, and records every such step here. The report is
//! merged into [`CampaignHealth`](crate::campaign::CampaignHealth),
//! printed by `decisive analyze`, and promoted to a hard failure under
//! `--strict`.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Everything an analysis run did *instead of* failing. An empty report
/// means the run was pristine; anything else means the results are valid
/// but built on substituted or recomputed ground, and `--strict` callers
/// treat that as failure.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DegradedModeReport {
    /// Persisted cache entries that failed checksum or shape validation,
    /// were quarantined, and recomputed.
    pub quarantined_cache_entries: usize,
    /// Provenance warnings for reliability records whose FIT (or other
    /// field) was malformed and replaced by a MIL-HDBK-338B default, one
    /// per substitution.
    pub substituted_fits: Vec<String>,
    /// External references (federated model locations, reliability
    /// files) that could not be resolved and degraded to defaults.
    pub unresolved_references: Vec<String>,
    /// Labels of jobs that exceeded the per-job deadline; their results
    /// were kept but flagged.
    pub timed_out_jobs: Vec<String>,
    /// Anything else worth knowing (stale cache format, quarantined
    /// campaign report, …).
    pub notes: Vec<String>,
}

impl DegradedModeReport {
    /// A clean, empty report.
    pub fn new() -> Self {
        DegradedModeReport::default()
    }

    /// `true` when the run had to degrade in any way.
    pub fn is_degraded(&self) -> bool {
        self.quarantined_cache_entries > 0
            || !self.substituted_fits.is_empty()
            || !self.unresolved_references.is_empty()
            || !self.timed_out_jobs.is_empty()
            || !self.notes.is_empty()
    }

    /// Total number of individual degradations, for summaries and exit
    /// codes.
    pub fn degradation_count(&self) -> usize {
        self.quarantined_cache_entries
            + self.substituted_fits.len()
            + self.unresolved_references.len()
            + self.timed_out_jobs.len()
            + self.notes.len()
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: &DegradedModeReport) {
        self.quarantined_cache_entries += other.quarantined_cache_entries;
        self.substituted_fits.extend(other.substituted_fits.iter().cloned());
        self.unresolved_references.extend(other.unresolved_references.iter().cloned());
        self.timed_out_jobs.extend(other.timed_out_jobs.iter().cloned());
        self.notes.extend(other.notes.iter().cloned());
    }

    /// Renders the report as the CLI prints it: a `#`-prefixed summary
    /// line plus one line per non-empty category. Returns an empty
    /// string for a clean report.
    pub fn render(&self) -> String {
        if !self.is_degraded() {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# degraded mode: {} quarantined cache entries, {} substituted FITs, \
             {} unresolved references, {} timed-out jobs",
            self.quarantined_cache_entries,
            self.substituted_fits.len(),
            self.unresolved_references.len(),
            self.timed_out_jobs.len(),
        );
        for warning in &self.substituted_fits {
            let _ = writeln!(out, "#   substituted: {warning}");
        }
        for reference in &self.unresolved_references {
            let _ = writeln!(out, "#   unresolved: {reference}");
        }
        for job in &self.timed_out_jobs {
            let _ = writeln!(out, "#   timed out: {job}");
        }
        for note in &self.notes {
            let _ = writeln!(out, "#   note: {note}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_renders_empty() {
        let report = DegradedModeReport::new();
        assert!(!report.is_degraded());
        assert_eq!(report.degradation_count(), 0);
        assert_eq!(report.render(), "");
    }

    #[test]
    fn merge_accumulates_all_categories() {
        let mut a = DegradedModeReport {
            quarantined_cache_entries: 2,
            substituted_fits: vec!["row 3 (Diode)".into()],
            ..DegradedModeReport::default()
        };
        let b = DegradedModeReport {
            quarantined_cache_entries: 1,
            unresolved_references: vec!["missing.csv".into()],
            timed_out_jobs: vec!["injection-rows/D1".into()],
            notes: vec!["stale cache format".into()],
            ..DegradedModeReport::default()
        };
        a.merge(&b);
        assert_eq!(a.quarantined_cache_entries, 3);
        assert_eq!(a.degradation_count(), 7);
        assert!(a.is_degraded());
        let rendered = a.render();
        assert!(rendered.contains("degraded mode: 3 quarantined"));
        assert!(rendered.contains("substituted: row 3 (Diode)"));
        assert!(rendered.contains("unresolved: missing.csv"));
        assert!(rendered.contains("timed out: injection-rows/D1"));
        assert!(rendered.contains("note: stale cache format"));
    }

    #[test]
    fn roundtrips_through_serde() {
        let report = DegradedModeReport {
            quarantined_cache_entries: 1,
            substituted_fits: vec!["x".into()],
            ..DegradedModeReport::default()
        };
        let value = crate::persist::artefact_to_value(&report).expect("serialize");
        let back: DegradedModeReport =
            crate::persist::artefact_from_value(&value).expect("deserialize");
        assert_eq!(back, report);
    }
}
