//! Error types for the DECISIVE core.

use std::fmt;

/// Errors produced by the DECISIVE analysis engines.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A simulation invoked during fault-injection FMEA failed.
    Simulation(decisive_circuit::CircuitError),
    /// A block diagram could not be lowered or transformed.
    Diagram(decisive_blocks::DiagramError),
    /// Model federation (loading or querying external data) failed.
    Federation(decisive_federation::FederationError),
    /// The reliability model is missing data the analysis needs.
    MissingReliability {
        /// The component type key with no reliability entry.
        type_key: String,
    },
    /// A referenced component does not exist in the model.
    UnknownComponent {
        /// The component name that failed to resolve.
        name: String,
    },
    /// The safety-mechanism search space is too large to enumerate.
    SearchSpaceTooLarge {
        /// Number of combinations that enumeration would need.
        combinations: u128,
        /// The configured enumeration limit.
        limit: u128,
    },
    /// The iterative process exhausted its iteration budget without meeting
    /// the target integrity level.
    TargetNotReached {
        /// Iterations performed.
        iterations: usize,
        /// Best SPFM achieved.
        best_spfm: f64,
        /// The SPFM target that was not met.
        target_spfm: f64,
    },
    /// An analysis parameter was invalid.
    InvalidParameter {
        /// Description of the violation.
        message: String,
    },
    /// The fault-injection campaign tripped its failure-rate circuit
    /// breaker: too many cases were unsolvable for the table to be
    /// trustworthy.
    CampaignAborted {
        /// Unsolvable or panicked cases.
        failed: usize,
        /// Total cases supervised.
        total: usize,
        /// The configured maximum unsolvable fraction.
        limit: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Simulation(e) => write!(f, "simulation failed: {e}"),
            CoreError::Diagram(e) => write!(f, "diagram error: {e}"),
            CoreError::Federation(e) => write!(f, "federation error: {e}"),
            CoreError::MissingReliability { type_key } => {
                write!(f, "no reliability data for component type `{type_key}`")
            }
            CoreError::UnknownComponent { name } => write!(f, "unknown component `{name}`"),
            CoreError::SearchSpaceTooLarge { combinations, limit } => write!(
                f,
                "safety mechanism search space has {combinations} combinations (limit {limit}); use the greedy or pareto search"
            ),
            CoreError::TargetNotReached { iterations, best_spfm, target_spfm } => write!(
                f,
                "target SPFM {target_spfm:.4} not reached after {iterations} iterations (best {best_spfm:.4})"
            ),
            CoreError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            CoreError::CampaignAborted { failed, total, limit } => write!(
                f,
                "fault campaign aborted: {failed}/{total} cases unsolvable (limit {:.0}%) — this signals a modelling bug, not physics",
                limit * 100.0
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Simulation(e) => Some(e),
            CoreError::Diagram(e) => Some(e),
            CoreError::Federation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<decisive_circuit::CircuitError> for CoreError {
    fn from(e: decisive_circuit::CircuitError) -> Self {
        CoreError::Simulation(e)
    }
}

impl From<decisive_blocks::DiagramError> for CoreError {
    fn from(e: decisive_blocks::DiagramError) -> Self {
        CoreError::Diagram(e)
    }
}

impl From<decisive_federation::FederationError> for CoreError {
    fn from(e: decisive_federation::FederationError) -> Self {
        CoreError::Federation(e)
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = CoreError::MissingReliability { type_key: "Diode".into() };
        assert!(e.to_string().contains("Diode"));
        assert!(e.source().is_none());
        let e = CoreError::Simulation(decisive_circuit::CircuitError::SingularMatrix { row: 1 });
        assert!(e.source().is_some());
        let e = CoreError::TargetNotReached { iterations: 3, best_spfm: 0.8, target_spfm: 0.9 };
        assert!(e.to_string().contains("3 iterations"));
    }
}
