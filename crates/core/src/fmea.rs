//! FME(D)A result tables — the *component safety analysis model* produced by
//! DECISIVE Step 4a (and what Table IV of the paper shows).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use decisive_federation::Value;
use decisive_ssam::architecture::{Coverage, FailureImpact, FailureNature, Fit};

use crate::mechanism::Deployment;

pub mod graph;
pub mod injection;

/// One analysed failure mode of one component instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FmeaRow {
    /// Component instance name (Table IV `Component`).
    pub component: String,
    /// Reliability type key, for mechanism catalog lookups.
    pub type_key: Option<String>,
    /// Component total FIT (Table IV `FIT`).
    pub fit: Fit,
    /// Failure mode name (Table IV `Failure_Mode`).
    pub failure_mode: String,
    /// Failure nature.
    pub nature: FailureNature,
    /// Share of the component's FIT in this mode (Table IV `Distribution`).
    pub distribution: f64,
    /// Whether this failure mode can cause a single-point fault
    /// (Table IV `Safety_Related`).
    pub safety_related: bool,
    /// Impact classification, when determinable (Table I `Impact`:
    /// DVF directly violates the safety goal, IVF only with a second
    /// fault).
    pub impact: Option<FailureImpact>,
    /// Deployed safety mechanism, if any (Table IV `Safety_Mechanism`).
    pub mechanism: Option<String>,
    /// Diagnostic coverage of the deployed mechanism (Table IV `SM_Coverage`).
    pub coverage: Coverage,
    /// Analysis warning, e.g. Algorithm 1's warning on non-loss natures.
    pub warning: Option<String>,
}

impl FmeaRow {
    /// The FIT attributable to this failure mode: `FIT × distribution`.
    pub fn mode_fit(&self) -> Fit {
        self.fit * self.distribution
    }

    /// The residual single-point failure rate after diagnostics
    /// (Table IV `Single_Point_Failure_Rate`): zero for non-safety-related
    /// modes, `mode_fit × (1 − coverage)` otherwise.
    pub fn residual_fit(&self) -> Fit {
        if self.safety_related {
            self.mode_fit() * self.coverage.residual()
        } else {
            Fit::ZERO
        }
    }
}

/// A complete FME(D)A result for one system.
///
/// # Examples
///
/// Build the paper's Table IV by hand and check its SPFM:
///
/// ```
/// use decisive_core::fmea::{FmeaRow, FmeaTable};
/// use decisive_ssam::architecture::{Coverage, FailureNature, Fit};
///
/// let mut table = FmeaTable::new("power-supply");
/// let row = |component: &str, fit, mode: &str, dist, sr| FmeaRow {
///     component: component.into(),
///     type_key: None,
///     fit: Fit::new(fit),
///     failure_mode: mode.into(),
///     nature: FailureNature::LossOfFunction,
///     distribution: dist,
///     safety_related: sr,
///     impact: None,
///     mechanism: None,
///     coverage: Coverage::NONE,
///     warning: None,
/// };
/// table.push(row("D1", 10.0, "Open", 0.3, true));
/// table.push(row("D1", 10.0, "Short", 0.7, false));
/// table.push(row("L1", 15.0, "Open", 0.3, true));
/// table.push(row("L1", 15.0, "Short", 0.7, false));
/// table.push(row("MC1", 300.0, "RAM Failure", 1.0, true));
/// // 1 - (3 + 4.5 + 300) / 325 = 5.38 %
/// assert!((table.spfm() - 0.0538).abs() < 5e-4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FmeaTable {
    /// Name of the analysed system.
    pub system: String,
    /// The analysed rows.
    pub rows: Vec<FmeaRow>,
}

impl FmeaTable {
    /// Creates an empty table.
    pub fn new(system: impl Into<String>) -> Self {
        FmeaTable { system: system.into(), rows: Vec::new() }
    }

    /// Appends a row.
    pub fn push(&mut self, row: FmeaRow) {
        self.rows.push(row);
    }

    /// The names of all safety-related components (those with at least one
    /// safety-related failure mode), sorted.
    pub fn safety_related_components(&self) -> BTreeSet<String> {
        self.rows.iter().filter(|r| r.safety_related).map(|r| r.component.clone()).collect()
    }

    /// The Single Point Fault Metric of the analysed design (paper Eq. 1):
    ///
    /// ```text
    /// SPFM = 1 − Σ_SR_HW λ_SPF / Σ_SR_HW λ
    /// ```
    ///
    /// summed over *safety-related* components only. A design with no
    /// safety-related component has no single-point faults: SPFM = 1.
    pub fn spfm(&self) -> f64 {
        let sr: BTreeSet<String> = self.safety_related_components();
        if sr.is_empty() {
            return 1.0;
        }
        // Denominator: each safety-related component's total FIT, once.
        let mut seen = BTreeSet::new();
        let mut total = Fit::ZERO;
        for row in &self.rows {
            if sr.contains(&row.component) && seen.insert(row.component.clone()) {
                total += row.fit;
            }
        }
        let spf: Fit = self.rows.iter().map(FmeaRow::residual_fit).sum();
        if total.value() == 0.0 {
            return 1.0;
        }
        1.0 - spf.value() / total.value()
    }

    /// Returns a copy with `deployment`'s mechanisms applied to the matching
    /// rows — the cheap what-if evaluation behind Step 4b's exploration.
    #[must_use]
    pub fn with_deployment(&self, deployment: &Deployment) -> FmeaTable {
        let mut out = self.clone();
        for row in &mut out.rows {
            match deployment.get(&row.component, &row.failure_mode) {
                Some(m) => {
                    row.mechanism = Some(m.name.clone());
                    row.coverage = m.coverage;
                }
                None => {
                    row.mechanism = None;
                    row.coverage = Coverage::NONE;
                }
            }
        }
        out
    }

    /// Fraction of rows whose `safety_related` verdict differs from
    /// `other`'s verdict for the same `(component, failure mode)` — the
    /// paper's RQ1 correctness measure ("we observe a 1.5% difference
    /// between the FMEA results").
    ///
    /// Rows present in only one table count as disagreements.
    pub fn disagreement(&self, other: &FmeaTable) -> f64 {
        let key = |r: &FmeaRow| (r.component.clone(), r.failure_mode.clone());
        let mine: std::collections::BTreeMap<_, bool> =
            self.rows.iter().map(|r| (key(r), r.safety_related)).collect();
        let theirs: std::collections::BTreeMap<_, bool> =
            other.rows.iter().map(|r| (key(r), r.safety_related)).collect();
        let all: BTreeSet<_> = mine.keys().chain(theirs.keys()).cloned().collect();
        if all.is_empty() {
            return 0.0;
        }
        let disagreements = all.iter().filter(|k| mine.get(*k) != theirs.get(*k)).count();
        disagreements as f64 / all.len() as f64
    }

    /// The Latent Fault Metric computed from the rows' impact
    /// classifications: the share of safety-relevant hardware's FIT whose
    /// indirect-violation (IVF) modes remain uncovered by diagnostics.
    ///
    /// Safety-relevant hardware here includes components with latent-fault
    /// potential (any IVF-classified mode), not only single-point
    /// components — ISO 26262-5 counts multiple-point faults against the
    /// same hardware scope. Rows without a classification count as
    /// non-latent.
    pub fn lfm(&self) -> f64 {
        let mut relevant = self.safety_related_components();
        relevant.extend(
            self.rows
                .iter()
                .filter(|r| r.impact == Some(FailureImpact::IndirectViolation))
                .map(|r| r.component.clone()),
        );
        if relevant.is_empty() {
            return 1.0;
        }
        let mut total = Fit::ZERO;
        let mut latent = Fit::ZERO;
        for row in &self.rows {
            if !relevant.contains(&row.component) {
                continue;
            }
            total += row.mode_fit();
            if row.impact == Some(FailureImpact::IndirectViolation) {
                latent += row.mode_fit() * row.coverage.residual();
            }
        }
        if total.value() == 0.0 {
            1.0
        } else {
            1.0 - latent.value() / total.value()
        }
    }

    /// Serialises the table as a list of records, for federation and the
    /// "Excel-based FMEA table" the paper always produces.
    pub fn to_value(&self) -> Value {
        Value::List(
            self.rows
                .iter()
                .map(|r| {
                    Value::record([
                        ("Component", Value::from(r.component.as_str())),
                        ("FIT", Value::Real(r.fit.value())),
                        (
                            "Safety_Related",
                            Value::from(if r.safety_related { "Yes" } else { "No" }),
                        ),
                        ("Failure_Mode", Value::from(r.failure_mode.as_str())),
                        (
                            "Impact",
                            Value::from(r.impact.map(|i| i.to_string()).unwrap_or_default()),
                        ),
                        ("Distribution", Value::Real(r.distribution)),
                        (
                            "Safety_Mechanism",
                            Value::from(r.mechanism.as_deref().unwrap_or("No SM")),
                        ),
                        ("SM_Coverage", Value::Real(r.coverage.value())),
                        ("Single_Point_Failure_Rate", Value::Real(r.residual_fit().value())),
                    ])
                })
                .collect(),
        )
    }

    /// Serialises the table as CSV (the paper's Excel substitute).
    pub fn to_csv_string(&self) -> String {
        decisive_federation::csv::to_string(&self.to_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::DeployedMechanism;

    fn paper_rows() -> FmeaTable {
        let mut t = FmeaTable::new("power-supply");
        let mk = |component: &str, type_key: &str, fit, mode: &str, nature, dist, sr| FmeaRow {
            component: component.into(),
            type_key: Some(type_key.into()),
            fit: Fit::new(fit),
            failure_mode: mode.into(),
            nature,
            distribution: dist,
            safety_related: sr,
            impact: None,
            mechanism: None,
            coverage: Coverage::NONE,
            warning: None,
        };
        use FailureNature::{Erroneous, LossOfFunction};
        t.push(mk("D1", "Diode", 10.0, "Open", LossOfFunction, 0.3, true));
        t.push(mk("D1", "Diode", 10.0, "Short", Erroneous, 0.7, false));
        t.push(mk("L1", "Inductor", 15.0, "Open", LossOfFunction, 0.3, true));
        t.push(mk("L1", "Inductor", 15.0, "Short", Erroneous, 0.7, false));
        t.push(mk("MC1", "MC", 300.0, "RAM Failure", LossOfFunction, 1.0, true));
        t.push(mk("C1", "Capacitor", 2.0, "Open", LossOfFunction, 0.3, false));
        t.push(mk("C1", "Capacitor", 2.0, "Short", Erroneous, 0.7, false));
        t
    }

    #[test]
    fn spfm_matches_paper_before_mechanisms() {
        let t = paper_rows();
        // 1 - 307.5/325 = 0.0538...
        assert!((t.spfm() - (1.0 - 307.5 / 325.0)).abs() < 1e-12);
        assert!((t.spfm() - 0.0538).abs() < 5e-4);
    }

    #[test]
    fn spfm_matches_paper_after_ecc() {
        let t = paper_rows();
        let mut d = Deployment::new();
        d.deploy(
            "MC1",
            "RAM Failure",
            DeployedMechanism {
                name: "ECC".into(),
                coverage: Coverage::new(0.99),
                cost_hours: 2.0,
            },
        );
        let refined = t.with_deployment(&d);
        // 1 - (3 + 4.5 + 3)/325 = 0.96769...
        assert!((refined.spfm() - (1.0 - 10.5 / 325.0)).abs() < 1e-12);
        assert!((refined.spfm() - 0.9677).abs() < 5e-5);
        // MC1's residual drops to 3 FIT, as in Table IV.
        let mc1 = refined.rows.iter().find(|r| r.component == "MC1").unwrap();
        assert!((mc1.residual_fit().value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn safety_related_components_match_paper() {
        let t = paper_rows();
        let sr: Vec<_> = t.safety_related_components().into_iter().collect();
        assert_eq!(sr, vec!["D1", "L1", "MC1"]);
    }

    #[test]
    fn spfm_of_empty_or_safe_table_is_one() {
        assert_eq!(FmeaTable::new("x").spfm(), 1.0);
        let mut t = paper_rows();
        for r in &mut t.rows {
            r.safety_related = false;
        }
        assert_eq!(t.spfm(), 1.0);
    }

    #[test]
    fn residual_fit_rows() {
        let t = paper_rows();
        let d1_open = &t.rows[0];
        assert!((d1_open.residual_fit().value() - 3.0).abs() < 1e-12);
        let d1_short = &t.rows[1];
        assert_eq!(d1_short.residual_fit(), Fit::ZERO, "non-SR rows have no SPF rate");
    }

    #[test]
    fn disagreement_measures_verdict_flips() {
        let a = paper_rows();
        let mut b = paper_rows();
        assert_eq!(a.disagreement(&b), 0.0);
        b.rows[1].safety_related = true; // flip one verdict out of 7
        assert!((a.disagreement(&b) - 1.0 / 7.0).abs() < 1e-12);
        // A missing row counts as a disagreement.
        b.rows.pop();
        let d = a.disagreement(&b);
        assert!(d > 1.0 / 7.0);
    }

    #[test]
    fn csv_export_has_paper_columns() {
        let t = paper_rows();
        let csv = t.to_csv_string();
        let header = csv.lines().next().unwrap();
        for col in [
            "Component",
            "FIT",
            "Safety_Related",
            "Failure_Mode",
            "Distribution",
            "Safety_Mechanism",
            "SM_Coverage",
            "Single_Point_Failure_Rate",
        ] {
            assert!(header.contains(col), "missing column {col}");
        }
        assert!(csv.contains("No SM"));
    }

    #[test]
    fn with_deployment_resets_undeployed_rows() {
        let mut t = paper_rows();
        t.rows[0].mechanism = Some("stale".into());
        t.rows[0].coverage = Coverage::new(0.5);
        let cleared = t.with_deployment(&Deployment::new());
        assert!(cleared.rows[0].mechanism.is_none());
        assert_eq!(cleared.rows[0].coverage, Coverage::NONE);
    }
}
