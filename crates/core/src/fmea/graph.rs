//! Graph-based FMEA over SSAM models — the paper's Algorithm 1
//! ("Determining single point failures for SSAM models").
//!
//! A failure mode of *loss-of-function or similar nature* is safety-related
//! when its component lies on **every** path from the container's input to
//! its output — losing it severs the function outright (a single-point
//! fault). Failure modes of other natures receive a warning (Algorithm 1
//! line 11). Per §IV-B6, a failure mode may also *cite affected components*;
//! if any cited component is path-critical, the mode is safety-related too.
//!
//! Two interchangeable algorithms compute path criticality:
//!
//! * [`GraphAlgorithm::ExhaustivePaths`] — the literal Algorithm 1:
//!   enumerate all simple input→output paths and intersect them;
//! * [`GraphAlgorithm::CutVertex`] — the optimised equivalent: a component
//!   is on all paths iff removing it disconnects input from output.
//!
//! Both give identical verdicts (property-tested); the bench
//! `fmea_algorithms` measures the gap.

use std::collections::{HashMap, HashSet};

use decisive_ssam::architecture::{Component, Coverage, Fit};
use decisive_ssam::base::CiteRef;
use decisive_ssam::id::Idx;
use decisive_ssam::model::SsamModel;

use crate::error::{CoreError, Result};
use crate::fmea::{FmeaRow, FmeaTable};

/// Which path-criticality algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GraphAlgorithm {
    /// Enumerate all simple paths (the paper's Algorithm 1, line 2).
    ExhaustivePaths,
    /// Per-component reachability cut check — same verdicts, polynomial
    /// time.
    #[default]
    CutVertex,
}

/// Which failure modes the analysis covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnalysisScope {
    /// Analyse every failure mode of every component.
    #[default]
    All,
    /// Analyse only failure modes associated with the given hazard — the
    /// paper's per-hazard scoping ("For our chosen top-level hazard (H1),
    /// we are interested in correct readings at CS1", §V-A).
    Hazard(Idx<decisive_ssam::hazard::HazardousSituation>),
}

/// Configuration of the graph engine.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphConfig {
    /// The algorithm to use.
    pub algorithm: GraphAlgorithm,
    /// Abort [`GraphAlgorithm::ExhaustivePaths`] beyond this many paths.
    pub max_paths: usize,
    /// Which failure modes to analyse.
    pub scope: AnalysisScope,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            algorithm: GraphAlgorithm::default(),
            max_paths: 1_000_000,
            scope: AnalysisScope::All,
        }
    }
}

/// Runs the graph-based FMEA on the component `top` of `model`.
///
/// The analysis recurses into non-atomic subcomponents (Algorithm 1
/// line 14); a nested failure mode is safety-related only if its own
/// component is path-critical within its container *and* the container is
/// itself critical at the level above.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] when path enumeration exceeds
/// `max_paths` (switch to [`GraphAlgorithm::CutVertex`]).
pub fn run(model: &SsamModel, top: Idx<Component>, config: &GraphConfig) -> Result<FmeaTable> {
    let mut table = FmeaTable::new(model.components[top].core.name.value());
    analyse_container(model, top, true, config, &mut table)?;
    Ok(table)
}

fn analyse_container(
    model: &SsamModel,
    container: Idx<Component>,
    container_critical: bool,
    config: &GraphConfig,
    table: &mut FmeaTable,
) -> Result<()> {
    let facts = container_facts(model, container, config)?;
    for &child in &model.components[container].children {
        for row in component_rows(model, child, container_critical, &facts, config) {
            table.push(row);
        }
        if !model.components[child].is_atomic() {
            // Algorithm 1 line 14: repeat this algorithm for c.
            let child_critical = container_critical && facts.critical.contains(&child);
            analyse_container(model, child, child_critical, config, table)?;
        }
    }
    Ok(())
}

/// Path-topology facts about one container's internal wiring, shared by
/// every per-component row derivation inside that container.
///
/// The facts depend only on the container's topology (children and edges)
/// and the configured algorithm — not on FIT values, failure modes or
/// mechanisms — which is what makes them independently cacheable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerFacts {
    /// Children lying on **every** input→output path (the single points).
    pub critical: HashSet<Idx<Component>>,
    /// Children lying on **at least one** input→output path.
    pub on_some_path: HashSet<Idx<Component>>,
}

/// Computes the path-criticality facts of `container`'s internal wiring.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] when path enumeration exceeds
/// `config.max_paths`.
pub fn container_facts(
    model: &SsamModel,
    container: Idx<Component>,
    config: &GraphConfig,
) -> Result<ContainerFacts> {
    let graph = BoundaryGraph::build(model, container);
    let critical = critical_components(&graph, config)?;
    let on_some_path = graph.on_some_path();
    Ok(ContainerFacts { critical, on_some_path })
}

/// Derives the FMEA rows of `child`'s own failure modes given its
/// container's [`ContainerFacts`] — one independently schedulable unit of
/// Algorithm 1 (the body of its per-component loop, without the recursion
/// into subcomponents).
///
/// `container_critical` is the criticality of the chain above: a nested
/// failure mode is safety-related only if every enclosing container is
/// itself path-critical at the level above.
pub fn component_rows(
    model: &SsamModel,
    child: Idx<Component>,
    container_critical: bool,
    facts: &ContainerFacts,
    config: &GraphConfig,
) -> Vec<FmeaRow> {
    let component = &model.components[child];
    let on_all_paths = facts.critical.contains(&child);
    let mut rows = Vec::new();
    for (_, fm) in model.failure_modes_of(child) {
        if let AnalysisScope::Hazard(hazard) = config.scope {
            if !fm.hazards.contains(&hazard) {
                continue;
            }
        }
        let mut row = FmeaRow {
            component: component.core.name.value().to_owned(),
            type_key: component.type_key.clone(),
            fit: component.fit.unwrap_or(Fit::ZERO),
            failure_mode: fm.core.name.value().to_owned(),
            nature: fm.nature.clone(),
            distribution: fm.distribution,
            safety_related: false,
            impact: None,
            mechanism: None,
            coverage: Coverage::NONE,
            warning: None,
        };
        if component.fit.is_none() {
            row.warning = Some(format!(
                "component `{}` has no reliability data (FIT treated as 0)",
                component.core.name
            ));
        }
        if fm.nature.breaks_path() {
            let affected_critical =
                fm.affected_components.iter().any(|a| facts.critical.contains(a))
                    || affected_via_cites(model, fm).iter().any(|a| facts.critical.contains(a));
            row.safety_related = container_critical && (on_all_paths || affected_critical);
            // Impact classification (Table I DVF/IVF): modelled effects
            // win; otherwise derive it from path topology — a
            // single-point loss directly violates the goal, a redundant
            // on-path loss violates it only with a second fault.
            row.impact = effect_impact(model, fm).or(Some(if row.safety_related {
                decisive_ssam::architecture::FailureImpact::DirectViolation
            } else if facts.on_some_path.contains(&child) {
                decisive_ssam::architecture::FailureImpact::IndirectViolation
            } else {
                decisive_ssam::architecture::FailureImpact::NoEffect
            }));
        } else {
            row.impact = effect_impact(model, fm);
            // Algorithm 1 line 11: provide a warning on fm.
            row.warning = Some(format!(
                "failure mode `{}` has nature `{}` — outside the loss-of-function analysis; review manually",
                fm.core.name, fm.nature
            ));
        }
        rows.push(row);
    }
    rows
}

/// The strongest impact among a failure mode's modelled effects, if any.
fn effect_impact(
    model: &SsamModel,
    fm: &decisive_ssam::architecture::FailureMode,
) -> Option<decisive_ssam::architecture::FailureImpact> {
    use decisive_ssam::architecture::FailureImpact::{
        DirectViolation, IndirectViolation, NoEffect,
    };
    let mut strongest = None;
    for &effect in &fm.effects {
        let impact = model.failure_effects[effect].impact;
        strongest = Some(match (strongest, impact) {
            (Some(DirectViolation), _) | (_, DirectViolation) => DirectViolation,
            (Some(IndirectViolation), _) | (_, IndirectViolation) => IndirectViolation,
            _ => NoEffect,
        });
    }
    strongest
}

/// Affected components reachable through the failure mode's effects' `cite`
/// links (Fig. 5: "FailureEffect may be used to refer to another Component
/// by using the cite reference").
fn affected_via_cites(
    model: &SsamModel,
    fm: &decisive_ssam::architecture::FailureMode,
) -> Vec<Idx<Component>> {
    fm.effects
        .iter()
        .flat_map(|&e| model.failure_effects[e].core.cites.iter())
        .filter_map(|cite| match cite {
            CiteRef::Component(c) => Some(*c),
            _ => None,
        })
        .collect()
}

/// The children of `container` lying on every input→output path.
fn critical_components(
    graph: &BoundaryGraph,
    config: &GraphConfig,
) -> Result<HashSet<Idx<Component>>> {
    match config.algorithm {
        GraphAlgorithm::ExhaustivePaths => graph.intersect_all_paths(config.max_paths),
        GraphAlgorithm::CutVertex => Ok(graph.cut_vertices()),
    }
}

/// The wiring of a container's children with two virtual nodes: `SRC`
/// (the container's input boundary) and `SINK` (its output boundary).
struct BoundaryGraph {
    /// Adjacency: node → successors. Node 0 = SRC, 1 = SINK, others map
    /// children.
    succ: Vec<Vec<usize>>,
    /// Node index of each child component.
    node_of: HashMap<Idx<Component>, usize>,
}

const SRC: usize = 0;
const SINK: usize = 1;

impl BoundaryGraph {
    fn build(model: &SsamModel, container: Idx<Component>) -> BoundaryGraph {
        let children = &model.components[container].children;
        let mut node_of = HashMap::new();
        for (i, &c) in children.iter().enumerate() {
            node_of.insert(c, i + 2);
        }
        let mut succ = vec![Vec::new(); children.len() + 2];
        for (_, rel) in model.relationships_within(container) {
            let from = if rel.from == container { SRC } else { node_of[&rel.from] };
            let to = if rel.to == container { SINK } else { node_of[&rel.to] };
            if !succ[from].contains(&to) {
                succ[from].push(to);
            }
        }
        BoundaryGraph { succ, node_of }
    }

    fn component_of(&self, node: usize) -> Option<Idx<Component>> {
        self.node_of.iter().find(|(_, &n)| n == node).map(|(&c, _)| c)
    }

    /// All simple SRC→SINK paths intersected — the literal Algorithm 1.
    fn intersect_all_paths(&self, max_paths: usize) -> Result<HashSet<Idx<Component>>> {
        let mut on_all: Option<HashSet<usize>> = None;
        let mut count = 0usize;
        let mut stack: Vec<usize> = vec![SRC];
        let mut on_path = vec![false; self.succ.len()];
        on_path[SRC] = true;
        self.dfs(SRC, &mut stack, &mut on_path, &mut on_all, &mut count, max_paths)?;
        let nodes = on_all.unwrap_or_default();
        Ok(nodes.into_iter().filter_map(|n| self.component_of(n)).collect())
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        node: usize,
        stack: &mut Vec<usize>,
        on_path: &mut Vec<bool>,
        on_all: &mut Option<HashSet<usize>>,
        count: &mut usize,
        max_paths: usize,
    ) -> Result<()> {
        if node == SINK {
            *count += 1;
            if *count > max_paths {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "path enumeration exceeded {max_paths} paths; use GraphAlgorithm::CutVertex"
                    ),
                });
            }
            let path_nodes: HashSet<usize> =
                stack.iter().copied().filter(|&n| n != SRC && n != SINK).collect();
            match on_all {
                Some(acc) => acc.retain(|n| path_nodes.contains(n)),
                None => *on_all = Some(path_nodes),
            }
            return Ok(());
        }
        for &next in &self.succ[node] {
            if on_path[next] {
                continue;
            }
            on_path[next] = true;
            stack.push(next);
            self.dfs(next, stack, on_path, on_all, count, max_paths)?;
            stack.pop();
            on_path[next] = false;
        }
        Ok(())
    }

    /// Children whose removal disconnects SRC from SINK.
    fn cut_vertices(&self) -> HashSet<Idx<Component>> {
        if !self.reachable(None) {
            // No path at all: vacuously, no component is load-bearing.
            return HashSet::new();
        }
        self.node_of
            .iter()
            .filter(|(_, &node)| !self.reachable(Some(node)))
            .map(|(&c, _)| c)
            .collect()
    }

    /// Children lying on *at least one* SRC→SINK path: reachable from SRC
    /// and co-reachable to SINK.
    fn on_some_path(&self) -> HashSet<Idx<Component>> {
        let forward = self.reach_from(SRC, |n| &self.succ[n]);
        // Build predecessor lists for the backward sweep.
        let mut pred = vec![Vec::new(); self.succ.len()];
        for (from, nexts) in self.succ.iter().enumerate() {
            for &to in nexts {
                pred[to].push(from);
            }
        }
        let backward = self.reach_from(SINK, |n| &pred[n]);
        self.node_of
            .iter()
            .filter(|(_, &node)| forward[node] && backward[node])
            .map(|(&c, _)| c)
            .collect()
    }

    fn reach_from<'a>(&'a self, start: usize, next: impl Fn(usize) -> &'a Vec<usize>) -> Vec<bool> {
        let mut seen = vec![false; self.succ.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            for &m in next(n) {
                if !seen[m] {
                    seen[m] = true;
                    queue.push_back(m);
                }
            }
        }
        seen
    }

    /// BFS SRC→SINK, optionally with one node removed.
    fn reachable(&self, without: Option<usize>) -> bool {
        let mut seen = vec![false; self.succ.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[SRC] = true;
        queue.push_back(SRC);
        while let Some(n) = queue.pop_front() {
            if n == SINK {
                return true;
            }
            for &next in &self.succ[n] {
                if Some(next) == without || seen[next] {
                    continue;
                }
                seen[next] = true;
                queue.push_back(next);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;
    use decisive_ssam::architecture::{ComponentKind, FailureNature};

    fn run_both(model: &SsamModel, top: Idx<Component>) -> (FmeaTable, FmeaTable) {
        let paths = run(
            model,
            top,
            &GraphConfig { algorithm: GraphAlgorithm::ExhaustivePaths, ..GraphConfig::default() },
        )
        .unwrap();
        let cuts = run(model, top, &GraphConfig::default()).unwrap();
        (paths, cuts)
    }

    /// The §V-B result: the SSAM path reproduces Table IV exactly.
    #[test]
    fn case_study_ssam_matches_table_iv() {
        let (model, top) = case_study::ssam_model();
        let (paths, cuts) = run_both(&model, top);
        for table in [&paths, &cuts] {
            let sr: Vec<_> = table.safety_related_components().into_iter().collect();
            assert_eq!(sr, vec!["D1", "L1", "MC1"]);
            assert!((table.spfm() - 0.0538).abs() < 5e-4, "spfm = {}", table.spfm());
        }
        assert_eq!(paths.disagreement(&cuts), 0.0);
    }

    #[test]
    fn erroneous_modes_get_warnings_not_verdicts() {
        let (model, top) = case_study::ssam_model();
        let table = run(&model, top, &GraphConfig::default()).unwrap();
        let d1_short =
            table.rows.iter().find(|r| r.component == "D1" && r.failure_mode == "Short").unwrap();
        assert!(!d1_short.safety_related);
        assert!(d1_short.warning.as_deref().unwrap().contains("review manually"));
    }

    #[test]
    fn shunt_components_are_not_single_points() {
        let (model, top) = case_study::ssam_model();
        let table = run(&model, top, &GraphConfig::default()).unwrap();
        let c1_open =
            table.rows.iter().find(|r| r.component == "C1" && r.failure_mode == "Open").unwrap();
        assert!(!c1_open.safety_related, "filter caps hang off the stable source");
    }

    #[test]
    fn parallel_redundancy_defeats_single_points() {
        // top → a → sink and top → b → sink: neither a nor b is on all paths.
        let mut model = SsamModel::new("redundant");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let a = model.add_child_component(top, Component::new("a", ComponentKind::Hardware));
        let b = model.add_child_component(top, Component::new("b", ComponentKind::Hardware));
        for c in [a, b] {
            model.components[c].fit = Some(Fit::new(10.0));
            model.add_failure_mode(c, "Open", FailureNature::LossOfFunction, 1.0);
            model.connect(top, c);
            model.connect(c, top);
        }
        let (paths, cuts) = run_both(&model, top);
        assert!(paths.safety_related_components().is_empty());
        assert_eq!(paths.disagreement(&cuts), 0.0);
        assert_eq!(paths.spfm(), 1.0);
    }

    #[test]
    fn series_chain_is_all_single_points() {
        let mut model = SsamModel::new("series");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let a = model.add_child_component(top, Component::new("a", ComponentKind::Hardware));
        let b = model.add_child_component(top, Component::new("b", ComponentKind::Hardware));
        for c in [a, b] {
            model.components[c].fit = Some(Fit::new(5.0));
            model.add_failure_mode(c, "Open", FailureNature::LossOfFunction, 1.0);
        }
        model.connect(top, a);
        model.connect(a, b);
        model.connect(b, top);
        let (paths, cuts) = run_both(&model, top);
        assert_eq!(paths.safety_related_components().len(), 2);
        assert_eq!(paths.disagreement(&cuts), 0.0);
        assert!((paths.spfm() - 0.0).abs() < 1e-12, "all FIT is single-point");
    }

    #[test]
    fn affected_components_promote_off_path_modes() {
        // mon watches the chain but sits off-path; citing an on-path
        // component makes its loss safety-related (paper §IV-B6).
        let mut model = SsamModel::new("affected");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let a = model.add_child_component(top, Component::new("a", ComponentKind::Hardware));
        let mon = model.add_child_component(top, Component::new("mon", ComponentKind::Hardware));
        model.components[a].fit = Some(Fit::new(5.0));
        model.components[mon].fit = Some(Fit::new(5.0));
        model.add_failure_mode(a, "Open", FailureNature::LossOfFunction, 1.0);
        let fm = model.add_failure_mode(mon, "Loss", FailureNature::LossOfFunction, 1.0);
        model.failure_modes[fm].affected_components.push(a);
        model.connect(top, a);
        model.connect(a, top);
        model.connect(a, mon);
        let (paths, cuts) = run_both(&model, top);
        assert!(paths.safety_related_components().contains("mon"));
        assert_eq!(paths.disagreement(&cuts), 0.0);
    }

    #[test]
    fn nested_components_are_recursed_into() {
        let mut model = SsamModel::new("nested");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let sub = model.add_child_component(top, Component::new("sub", ComponentKind::System));
        let inner =
            model.add_child_component(sub, Component::new("inner", ComponentKind::Hardware));
        model.components[inner].fit = Some(Fit::new(7.0));
        model.add_failure_mode(inner, "Open", FailureNature::LossOfFunction, 1.0);
        model.connect(top, sub);
        model.connect(sub, top);
        model.connect(sub, inner);
        model.connect(inner, sub);
        let table = run(&model, top, &GraphConfig::default()).unwrap();
        let inner_row = table.rows.iter().find(|r| r.component == "inner").unwrap();
        assert!(inner_row.safety_related, "critical inside a critical container");
    }

    #[test]
    fn nested_inside_redundant_container_is_not_single_point() {
        let mut model = SsamModel::new("nested-redundant");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let sub_a = model.add_child_component(top, Component::new("subA", ComponentKind::System));
        let sub_b = model.add_child_component(top, Component::new("subB", ComponentKind::System));
        for sub in [sub_a, sub_b] {
            let inner = model.add_child_component(
                sub,
                Component::new(
                    format!("inner-{}", model.components[sub].core.name),
                    ComponentKind::Hardware,
                ),
            );
            model.components[inner].fit = Some(Fit::new(7.0));
            model.add_failure_mode(inner, "Open", FailureNature::LossOfFunction, 1.0);
            model.connect(top, sub);
            model.connect(sub, top);
            model.connect(sub, inner);
            model.connect(inner, sub);
        }
        let table = run(&model, top, &GraphConfig::default()).unwrap();
        assert!(
            table.safety_related_components().is_empty(),
            "redundant containers shield their internals"
        );
    }

    #[test]
    fn path_cap_is_enforced() {
        // A dense ladder has exponentially many paths.
        let mut model = SsamModel::new("ladder");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let mut layer: Vec<_> = (0..2)
            .map(|i| {
                model.add_child_component(
                    top,
                    Component::new(format!("n0_{i}"), ComponentKind::Hardware),
                )
            })
            .collect();
        for (i, &n) in layer.iter().enumerate() {
            let _ = i;
            model.connect(top, n);
        }
        for depth in 1..12 {
            let next: Vec<_> = (0..2)
                .map(|i| {
                    model.add_child_component(
                        top,
                        Component::new(format!("n{depth}_{i}"), ComponentKind::Hardware),
                    )
                })
                .collect();
            for &a in &layer {
                for &b in &next {
                    model.connect(a, b);
                }
            }
            layer = next;
        }
        for &n in &layer {
            model.connect(n, top);
        }
        let config = GraphConfig {
            algorithm: GraphAlgorithm::ExhaustivePaths,
            max_paths: 100,
            ..GraphConfig::default()
        };
        assert!(matches!(run(&model, top, &config), Err(CoreError::InvalidParameter { .. })));
        // The cut-vertex variant handles it fine.
        assert!(run(&model, top, &GraphConfig::default()).is_ok());
    }

    #[test]
    fn impact_classification_follows_topology() {
        use decisive_ssam::architecture::FailureImpact;
        // Series chain: single-point losses are DVFs.
        let (model, top) = case_study::ssam_model();
        let table = run(&model, top, &GraphConfig::default()).unwrap();
        let row = |component: &str, mode: &str| {
            table.rows.iter().find(|r| r.component == component && r.failure_mode == mode).unwrap()
        };
        assert_eq!(row("D1", "Open").impact, Some(FailureImpact::DirectViolation));
        // Off-path losses have no effect on the boundary function.
        assert_eq!(row("C1", "Open").impact, Some(FailureImpact::NoEffect));
        // Non-loss natures without modelled effects stay unclassified.
        assert_eq!(row("D1", "Short").impact, None);
    }

    #[test]
    fn redundant_losses_classify_as_indirect_violations() {
        use decisive_ssam::architecture::FailureImpact;
        let mut model = SsamModel::new("redundant");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        for name in ["a", "b"] {
            let c = model.add_child_component(top, Component::new(name, ComponentKind::Hardware));
            model.components[c].fit = Some(Fit::new(10.0));
            model.add_failure_mode(c, "Open", FailureNature::LossOfFunction, 1.0);
            model.connect(top, c);
            model.connect(c, top);
        }
        let table = run(&model, top, &GraphConfig::default()).unwrap();
        for row in &table.rows {
            assert_eq!(
                row.impact,
                Some(FailureImpact::IndirectViolation),
                "{}: a redundant on-path loss violates only with a second fault",
                row.component
            );
        }
    }

    #[test]
    fn hazard_scope_restricts_the_rows() {
        let (model, top) = case_study::ssam_model();
        let h1 = model.hazards.indices().next().expect("H1 exists");
        let scoped = run(
            &model,
            top,
            &GraphConfig { scope: AnalysisScope::Hazard(h1), ..GraphConfig::default() },
        )
        .unwrap();
        // Only the H1-associated loss modes appear (D1/L1 opens, MC1 RAM).
        assert_eq!(scoped.rows.len(), 3);
        assert!(scoped.rows.iter().all(|r| r.safety_related));
        // SPFM is unchanged: the excluded rows carried no residual rate.
        let full = run(&model, top, &GraphConfig::default()).unwrap();
        assert!((scoped.spfm() - full.spfm()).abs() < 1e-12);
    }

    #[test]
    fn foreign_hazard_scope_yields_no_rows() {
        let (mut model, top) = case_study::ssam_model();
        let h2 = model.add_hazard(decisive_ssam::hazard::HazardousSituation::new("H2"));
        let scoped = run(
            &model,
            top,
            &GraphConfig { scope: AnalysisScope::Hazard(h2), ..GraphConfig::default() },
        )
        .unwrap();
        assert!(scoped.rows.is_empty());
        assert_eq!(scoped.spfm(), 1.0);
    }

    #[test]
    fn disconnected_boundary_yields_no_verdicts() {
        let mut model = SsamModel::new("disc");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let a = model.add_child_component(top, Component::new("a", ComponentKind::Hardware));
        model.components[a].fit = Some(Fit::new(1.0));
        model.add_failure_mode(a, "Open", FailureNature::LossOfFunction, 1.0);
        // No boundary edges at all.
        let (paths, cuts) = run_both(&model, top);
        assert!(paths.safety_related_components().is_empty());
        assert!(cuts.safety_related_components().is_empty());
    }
}
