//! Fault-injection FMEA over block-diagram models — the paper's §IV-D1
//! automated FMEA: *initialise* (record sensor readings), *iterate
//! components × failure modes* (inject, re-simulate, compare against a
//! threshold), *output* the component safety analysis model.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use decisive_blocks::{to_circuit, BlockDiagram, BlockKind, LoweredCircuit};
use decisive_circuit::{Fault, SolverOptions, SolverWorkspace};
use decisive_ssam::architecture::{Coverage, FailureNature};

use crate::campaign::{CampaignConfig, CampaignHealth, CaseOutcome, CaseReport};
use crate::error::{CoreError, Result};
use crate::fmea::{FmeaRow, FmeaTable};
use crate::reliability::{FailureModeSpec, ReliabilityDb};

/// Configuration of the injection engine.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionConfig {
    /// Relative sensor-reading deviation above which a failure mode is
    /// classified safety-related. The comparison is symmetric:
    /// `|after − before| / max(|before|, |after|)`.
    pub threshold: f64,
    /// Worker threads for the injection sweep; `1` runs inline.
    pub parallelism: usize,
    /// Campaign supervision: per-case solver budget and the
    /// unsolvable-rate circuit breaker.
    pub campaign: CampaignConfig,
}

impl Default for InjectionConfig {
    fn default() -> Self {
        InjectionConfig { threshold: 0.2, parallelism: 1, campaign: CampaignConfig::default() }
    }
}

/// Runs the fault-injection FMEA on `diagram` using `reliability` data.
///
/// Every block whose [`BlockKind::type_key`] has a reliability entry is
/// analysed; blocks without reliability data (including sources assumed
/// stable, like the case study's `DC1`) are skipped, mirroring the paper's
/// analysis scope.
///
/// # Errors
///
/// Returns [`CoreError::Diagram`] when the diagram cannot be lowered,
/// [`CoreError::Simulation`] when the *nominal* simulation fails, and
/// [`CoreError::InvalidParameter`] for a non-positive threshold. A failing
/// *post-injection* simulation is not an error: the mode is conservatively
/// classified safety-related with a warning — unless so many cases fail
/// that the campaign breaker trips ([`CoreError::CampaignAborted`]).
pub fn run(
    diagram: &BlockDiagram,
    reliability: &ReliabilityDb,
    config: &InjectionConfig,
) -> Result<FmeaTable> {
    run_supervised(diagram, reliability, config).map(|(table, _)| table)
}

/// Like [`run`], additionally returning the [`CampaignHealth`] report of
/// the supervised sweep.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_supervised(
    diagram: &BlockDiagram,
    reliability: &ReliabilityDb,
    config: &InjectionConfig,
) -> Result<(FmeaTable, CampaignHealth)> {
    let (results, _, _) = sweep(diagram, reliability, config)?;
    let (rows, reports): (Vec<FmeaRow>, Vec<CaseReport>) = results.into_iter().unzip();
    let health = CampaignHealth::from_reports(&reports);
    health.enforce(&config.campaign)?;

    // Step 3 — Output the component safety analysis model.
    let mut table = FmeaTable::new(diagram.name());
    for row in rows {
        table.push(row);
    }
    Ok((table, health))
}

/// Steps 1–2 of the sweep: lower, record nominal readings, analyse every
/// candidate under supervision. Also returns the lowering and the nominal
/// readings so dual-point campaigns can reuse them.
#[allow(clippy::type_complexity)]
fn sweep(
    diagram: &BlockDiagram,
    reliability: &ReliabilityDb,
    config: &InjectionConfig,
) -> Result<(Vec<(FmeaRow, CaseReport)>, LoweredCircuit, Vec<(decisive_circuit::ElementId, f64)>)> {
    if !(config.threshold > 0.0 && config.threshold.is_finite()) {
        return Err(CoreError::InvalidParameter {
            message: format!("threshold must be positive and finite, got {}", config.threshold),
        });
    }
    config.campaign.validate()?;
    let lowered = to_circuit(diagram)?;
    // Step 1 — Initialise: record the nominal readings. The nominal solve
    // uses the configured kernel but the full default recovery ladder — a
    // healthy circuit that needs a trimmed ladder is a modelling error the
    // campaign should surface, not paper over.
    let nominal_options =
        SolverOptions { kernel: config.campaign.solver.kernel, ..SolverOptions::default() };
    let (nominal_solution, _) = SolverWorkspace::new().dc(&lowered.circuit, &nominal_options)?;
    let nominal = lowered.circuit.all_sensor_readings(&nominal_solution)?;

    // Step 2 — Iterate components and failure modes.
    let candidates = candidates(diagram, reliability);

    let results: Vec<(FmeaRow, CaseReport)> = if config.parallelism > 1 && candidates.len() > 1 {
        let chunk = candidates.len().div_ceil(config.parallelism);
        // Spawned workers get fresh thread-locals, so the sweep hands its
        // telemetry handle to each one explicitly.
        let telemetry = decisive_obs::current();
        let mut results: Vec<Vec<(FmeaRow, CaseReport)>> = Vec::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|part| {
                    let lowered = &lowered;
                    let nominal = &nominal;
                    let telemetry = telemetry.clone();
                    scope.spawn(move || {
                        let _telemetry = decisive_obs::set_current(telemetry);
                        // One workspace per worker: every case this worker
                        // solves shares symbolic layouts and LU buffers.
                        let mut ws = SolverWorkspace::new();
                        part.iter()
                            .map(|c| {
                                analyse_candidate_supervised_in(
                                    &mut ws, c, lowered, nominal, config,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("injection worker panicked"));
            }
        })
        .expect("crossbeam scope");
        results.into_iter().flatten().collect()
    } else {
        let mut ws = SolverWorkspace::new();
        candidates
            .iter()
            .map(|c| analyse_candidate_supervised_in(&mut ws, c, &lowered, &nominal, config))
            .collect()
    };
    Ok((results, lowered, nominal))
}

/// One injectable `(block, failure mode)` pair of the sweep — the unit of
/// work the parallel paths (here and in `decisive-engine`) schedule
/// independently.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The block to inject into.
    pub block: decisive_blocks::BlockId,
    /// Block instance name.
    pub name: String,
    /// Reliability type key.
    pub type_key: String,
    /// The block's total FIT.
    pub fit: decisive_ssam::architecture::Fit,
    /// Block kind (drives the electrical fault interpretation).
    pub kind: BlockKind,
    /// The failure mode to inject.
    pub mode: FailureModeSpec,
}

/// Enumerates the injection candidates of `diagram`: every failure mode of
/// every block whose [`BlockKind::type_key`] has a reliability entry, in
/// block order.
pub fn candidates(diagram: &BlockDiagram, reliability: &ReliabilityDb) -> Vec<Candidate> {
    diagram
        .blocks()
        .filter_map(|(id, block)| {
            let type_key = block.kind.type_key()?;
            let entry = reliability.get(type_key)?;
            Some(entry.modes.iter().map(move |mode| Candidate {
                block: id,
                name: block.name.clone(),
                type_key: type_key.to_owned(),
                fit: entry.fit,
                kind: block.kind.clone(),
                mode: mode.clone(),
            }))
        })
        .flatten()
        .collect()
}

/// The result of a dual-point injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct DualPointOutcome {
    /// The single-point table with latent modes upgraded from
    /// `NoEffect` to `IndirectViolation`.
    pub table: FmeaTable,
    /// The `(component, failure mode)` pairs whose *joint* injection
    /// deviated although neither did alone.
    pub latent_pairs: Vec<((String, String), (String, String))>,
    /// One warning per joint injection that could not be simulated — those
    /// pairs are counted as deviating, and this trail makes the latent
    /// count auditable.
    pub pair_warnings: Vec<String>,
    /// Health of the whole campaign: single-fault cases plus every joint
    /// injection.
    pub health: CampaignHealth,
}

/// Runs the dual-point fault-injection campaign: after the single-fault
/// sweep, every pair of individually-masked failure modes is injected
/// *together*; pairs that deviate expose latent (IVF) faults — the
/// empirical counterpart of the ISO 26262 latent fault metric, going beyond
/// the paper's single-fault FMEA.
///
/// Quadratic in the number of masked modes; intended for design-sized
/// models (the case study has 6 masked modes → 15 joint simulations).
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_dual_point(
    diagram: &BlockDiagram,
    reliability: &ReliabilityDb,
    config: &InjectionConfig,
) -> Result<DualPointOutcome> {
    let (results, lowered, nominal) = sweep(diagram, reliability, config)?;
    let (rows, mut reports): (Vec<FmeaRow>, Vec<CaseReport>) = results.into_iter().unzip();
    let mut table = FmeaTable::new(diagram.name());
    for row in rows {
        table.push(row);
    }

    // The injectable candidates whose single fault was masked.
    let mut masked: Vec<(usize, decisive_circuit::ElementId, Fault)> = Vec::new();
    for (id, block) in diagram.blocks() {
        let (Some(type_key), Some(element)) = (block.kind.type_key(), lowered.element(id)) else {
            continue;
        };
        let Some(entry) = reliability.get(type_key) else {
            continue;
        };
        for mode in &entry.modes {
            let Some(fault) = fault_for(&block.kind, mode) else {
                continue;
            };
            let Some(row) = table
                .rows
                .iter()
                .position(|r| r.component == block.name && r.failure_mode == mode.name)
            else {
                continue;
            };
            if !table.rows[row].safety_related {
                masked.push((row, element, fault));
            }
        }
    }

    let mut latent_pairs = Vec::new();
    let mut pair_warnings = Vec::new();
    let mut latent_rows = std::collections::BTreeSet::new();
    // Every joint circuit shares the healthy netlist's structure, so one
    // workspace serves the whole quadratic pair loop allocation-free.
    let mut joint_workspace = SolverWorkspace::new();
    for (i, &(row_a, element_a, fault_a)) in masked.iter().enumerate() {
        for &(row_b, element_b, fault_b) in &masked[i + 1..] {
            if element_a == element_b {
                continue; // the same physical element cannot fail twice
            }
            let key =
                |r: usize| (table.rows[r].component.clone(), table.rows[r].failure_mode.clone());
            let label = {
                let (ca, ma) = key(row_a);
                let (cb, mb) = key(row_b);
                format!("{ca}/{ma}+{cb}/{mb}")
            };
            let Ok(joint) = lowered
                .circuit
                .with_fault(element_a, fault_a)
                .and_then(|c| c.with_fault(element_b, fault_b))
            else {
                continue;
            };
            let start = Instant::now();
            let (deviates, outcome, iterations) = match joint_workspace
                .dc(&joint, &config.campaign.solver)
            {
                Ok((solution, diagnostics)) => {
                    let deviates = nominal.iter().any(|&(sensor, before)| {
                        let after = joint.sensor_reading(&solution, sensor).unwrap_or(f64::NAN);
                        relative_deviation(before, after) > config.threshold
                    });
                    let outcome = if diagnostics.recovered() {
                        CaseOutcome::Recovered { strategy: diagnostics.strategy.to_string() }
                    } else {
                        CaseOutcome::Converged
                    };
                    (deviates, outcome, diagnostics.iterations)
                }
                Err(e) => {
                    // An unsolvable joint circuit is conservatively
                    // counted as deviating, with an auditable trace.
                    pair_warnings.push(format!(
                            "joint injection {label} failed to solve ({e}); conservatively counted as deviating"
                        ));
                    (true, CaseOutcome::Unsolvable { reason: e.to_string() }, 0)
                }
            };
            reports.push(CaseReport {
                case: label,
                outcome,
                iterations,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            });
            if deviates {
                latent_rows.insert(row_a);
                latent_rows.insert(row_b);
                latent_pairs.push((key(row_a), key(row_b)));
            }
        }
    }
    for row in latent_rows {
        table.rows[row].impact =
            Some(decisive_ssam::architecture::FailureImpact::IndirectViolation);
    }
    let health = CampaignHealth::from_reports(&reports);
    health.enforce(&config.campaign)?;
    Ok(DualPointOutcome { table, latent_pairs, pair_warnings, health })
}

thread_local! {
    /// Per-thread solver workspace for [`analyse_candidate_supervised`]:
    /// external schedulers (the engine's `run_keyed` pool) call that entry
    /// point from long-lived worker threads, so a thread-local gives each
    /// worker factorization-buffer and layout reuse across every case it
    /// analyses — without changing the entry point's signature.
    static WORKER_WORKSPACE: RefCell<SolverWorkspace> = RefCell::new(SolverWorkspace::new());
}

/// Analyses one candidate under full supervision: the analysis body runs
/// inside `catch_unwind` so a panic poisons only this row, the solve runs
/// the configured recovery ladder, and the returned [`CaseReport`]
/// classifies how the case ended (with wall-clock and iteration cost).
///
/// Solves through a per-thread [`SolverWorkspace`], so repeated calls from
/// the same scheduler worker reuse symbolic layouts and factorization
/// buffers; see [`analyse_candidate_supervised_in`] to manage the
/// workspace explicitly. Workspace reuse never changes results — solves
/// are bit-identical to a fresh workspace.
pub fn analyse_candidate_supervised(
    candidate: &Candidate,
    lowered: &LoweredCircuit,
    nominal: &[(decisive_circuit::ElementId, f64)],
    config: &InjectionConfig,
) -> (FmeaRow, CaseReport) {
    WORKER_WORKSPACE.with(|ws| {
        analyse_candidate_supervised_in(&mut ws.borrow_mut(), candidate, lowered, nominal, config)
    })
}

/// [`analyse_candidate_supervised`] with an explicit workspace — the batch
/// form used by the sweep, which owns one workspace per worker thread and
/// feeds it every case of that worker's chunk.
pub fn analyse_candidate_supervised_in(
    workspace: &mut SolverWorkspace,
    candidate: &Candidate,
    lowered: &LoweredCircuit,
    nominal: &[(decisive_circuit::ElementId, f64)],
    config: &InjectionConfig,
) -> (FmeaRow, CaseReport) {
    let start = Instant::now();
    let case = format!("{}/{}", candidate.name, candidate.mode.name);
    let result = catch_unwind(AssertUnwindSafe(|| {
        analyse_candidate_inner(
            workspace,
            candidate,
            lowered,
            nominal,
            config.threshold,
            &config.campaign.solver,
        )
    }));
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    match result {
        Ok((row, outcome, iterations)) => (row, CaseReport { case, outcome, iterations, wall_ms }),
        Err(_) => {
            let mut row = blank_row(candidate);
            row.safety_related = true;
            row.warning =
                Some("candidate analysis panicked; conservatively safety-related".to_owned());
            (row, CaseReport { case, outcome: CaseOutcome::Panicked, iterations: 0, wall_ms })
        }
    }
}

/// Analyses one candidate against the nominal readings: inject, re-solve,
/// compare — the body of the sweep, callable from an external scheduler.
/// `lowered` must be the lowering of the candidate's own diagram and
/// `nominal` its fault-free sensor readings.
///
/// Uses the default recovery ladder without panic isolation; the
/// supervised sweep goes through [`analyse_candidate_supervised`].
pub fn analyse_candidate(
    candidate: &Candidate,
    lowered: &LoweredCircuit,
    nominal: &[(decisive_circuit::ElementId, f64)],
    threshold: f64,
) -> FmeaRow {
    analyse_candidate_inner(
        &mut SolverWorkspace::new(),
        candidate,
        lowered,
        nominal,
        threshold,
        &SolverOptions::default(),
    )
    .0
}

/// A row shell carrying the candidate's identity before any verdict.
fn blank_row(candidate: &Candidate) -> FmeaRow {
    FmeaRow {
        component: candidate.name.clone(),
        type_key: Some(candidate.type_key.clone()),
        fit: candidate.fit,
        failure_mode: candidate.mode.name.clone(),
        nature: candidate.mode.nature.clone(),
        distribution: candidate.mode.distribution,
        safety_related: false,
        impact: None,
        mechanism: None,
        coverage: Coverage::NONE,
        warning: None,
    }
}

/// The analysis body: returns the row plus the outcome classification and
/// Newton-iteration cost for the campaign supervisor.
fn analyse_candidate_inner(
    workspace: &mut SolverWorkspace,
    candidate: &Candidate,
    lowered: &LoweredCircuit,
    nominal: &[(decisive_circuit::ElementId, f64)],
    threshold: f64,
    solver: &SolverOptions,
) -> (FmeaRow, CaseOutcome, usize) {
    let mut row = blank_row(candidate);
    let Some(element) = lowered.element(candidate.block) else {
        row.warning = Some(format!(
            "block `{}` ({}) is not simulatable; failure mode not injected",
            candidate.name,
            candidate.kind.tag()
        ));
        return (row, CaseOutcome::Skipped, 0);
    };
    let Some(fault) = fault_for(&candidate.kind, &candidate.mode) else {
        row.warning = Some(format!(
            "no electrical interpretation for failure mode `{}` on a {}",
            candidate.mode.name,
            candidate.kind.tag()
        ));
        return (row, CaseOutcome::Skipped, 0);
    };
    let faulted = match lowered.circuit.with_fault(element, fault) {
        Ok(c) => c,
        Err(e) => {
            row.safety_related = true;
            row.warning =
                Some(format!("fault injection failed ({e}); conservatively safety-related"));
            return (row, CaseOutcome::Unsolvable { reason: e.to_string() }, 0);
        }
    };
    match workspace.dc(&faulted, solver) {
        Ok((solution, diagnostics)) => {
            let deviates = nominal.iter().any(|&(sensor, before)| {
                let after = faulted.sensor_reading(&solution, sensor).unwrap_or(f64::NAN);
                relative_deviation(before, after) > threshold
            });
            row.safety_related = deviates;
            // Single-fault injection observes direct violations only: a
            // deviating reading is a DVF; a clean reading shows no
            // single-fault effect (dual-fault IVFs need the graph engine's
            // topology view or modelled effects).
            row.impact = Some(if deviates {
                decisive_ssam::architecture::FailureImpact::DirectViolation
            } else {
                decisive_ssam::architecture::FailureImpact::NoEffect
            });
            let outcome = if diagnostics.recovered() {
                row.warning = Some(format!(
                    "solver recovered via {} ({} rungs, {} iterations)",
                    diagnostics.strategy, diagnostics.rungs, diagnostics.iterations
                ));
                CaseOutcome::Recovered { strategy: diagnostics.strategy.to_string() }
            } else {
                CaseOutcome::Converged
            };
            (row, outcome, diagnostics.iterations)
        }
        Err(e) => {
            row.safety_related = true;
            row.warning = Some(format!(
                "post-injection simulation failed ({e}); conservatively safety-related"
            ));
            (row, CaseOutcome::Unsolvable { reason: e.to_string() }, 0)
        }
    }
}

/// Symmetric relative deviation between two readings.
fn relative_deviation(before: f64, after: f64) -> f64 {
    if !after.is_finite() {
        return f64::INFINITY;
    }
    let denom = before.abs().max(after.abs()).max(1e-12);
    (after - before).abs() / denom
}

/// Maps a failure mode to the electrical fault to inject.
fn fault_for(kind: &BlockKind, mode: &FailureModeSpec) -> Option<Fault> {
    let lower = mode.name.to_ascii_lowercase();
    if lower.contains("open") {
        return Some(Fault::Open);
    }
    if lower.contains("short") {
        return Some(Fault::Short);
    }
    if matches!(kind, BlockKind::Mcu { .. }) {
        // Functional failures of behavioural loads (RAM failures, lockups).
        return Some(Fault::Functional);
    }
    if matches!(mode.nature, FailureNature::Degraded) {
        return Some(Fault::ParamScale(2.0));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use decisive_blocks::gallery;

    fn run_case_study(parallelism: usize) -> FmeaTable {
        let (diagram, _) = gallery::sensor_power_supply();
        let db = ReliabilityDb::paper_table_ii();
        let config = InjectionConfig { parallelism, ..InjectionConfig::default() };
        run(&diagram, &db, &config).unwrap()
    }

    /// The headline case-study result: safety-related components are
    /// exactly D1, L1 and MC1 (paper §V-A / Table IV).
    #[test]
    fn case_study_safety_related_components_match_paper() {
        let table = run_case_study(1);
        let sr: Vec<_> = table.safety_related_components().into_iter().collect();
        assert_eq!(sr, vec!["D1", "L1", "MC1"]);
    }

    /// Per-row verdicts of Table IV: opens flagged, shorts not.
    #[test]
    fn case_study_row_verdicts() {
        let table = run_case_study(1);
        let verdict = |component: &str, mode: &str| {
            table
                .rows
                .iter()
                .find(|r| r.component == component && r.failure_mode == mode)
                .unwrap_or_else(|| panic!("missing row {component}/{mode}"))
                .safety_related
        };
        assert!(verdict("D1", "Open"));
        assert!(!verdict("D1", "Short"));
        assert!(verdict("L1", "Open"));
        assert!(!verdict("L1", "Short"));
        assert!(verdict("MC1", "RAM Failure"));
        assert!(!verdict("C1", "Open"));
        assert!(!verdict("C1", "Short"));
        assert!(!verdict("C2", "Open"));
        assert!(!verdict("C2", "Short"));
    }

    /// SPFM of the unrefined design: 5.38 % (paper §V-A).
    #[test]
    fn case_study_spfm_matches_paper() {
        let table = run_case_study(1);
        assert!((table.spfm() - 0.0538).abs() < 5e-4, "spfm = {}", table.spfm());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let sequential = run_case_study(1);
        let parallel = run_case_study(4);
        assert_eq!(sequential.disagreement(&parallel), 0.0);
        assert_eq!(sequential.rows.len(), parallel.rows.len());
    }

    #[test]
    fn analysis_scope_is_reliability_driven() {
        let table = run_case_study(1);
        // DC1 (assumed stable), GND1, CS1 and the simulation blocks have no
        // reliability entries and must not appear.
        for absent in ["DC1", "GND1", "CS1", "S1", "Scope1", "Out1"] {
            assert!(
                table.rows.iter().all(|r| r.component != absent),
                "{absent} should not be analysed"
            );
        }
        assert_eq!(table.rows.len(), 9, "D1×2, L1×2, C1×2, C2×2, MC1×1");
    }

    #[test]
    fn bad_threshold_is_rejected() {
        let (diagram, _) = gallery::sensor_power_supply();
        let db = ReliabilityDb::paper_table_ii();
        let config = InjectionConfig { threshold: 0.0, ..InjectionConfig::default() };
        assert!(matches!(run(&diagram, &db, &config), Err(CoreError::InvalidParameter { .. })));
    }

    #[test]
    fn non_simulatable_blocks_get_warnings() {
        let mut diagram = BlockDiagram::new("sw");
        let v = diagram.add_block("V1", BlockKind::DcVoltageSource { volts: 5.0 });
        let g = diagram.add_block("G", BlockKind::Ground);
        diagram.add_block("SW1", BlockKind::Software);
        diagram.connect(v, decisive_blocks::Port(1), g, decisive_blocks::Port(0)).unwrap();
        let mut db = ReliabilityDb::new();
        db.insert(crate::reliability::ComponentReliability {
            type_key: "Software".into(),
            fit: decisive_ssam::architecture::Fit::new(50.0),
            modes: vec![FailureModeSpec {
                name: "Crash".into(),
                nature: FailureNature::LossOfFunction,
                distribution: 1.0,
            }],
        });
        let table = run(&diagram, &db, &InjectionConfig::default()).unwrap();
        assert_eq!(table.rows.len(), 1);
        assert!(table.rows[0].warning.as_deref().unwrap().contains("not simulatable"));
        assert!(!table.rows[0].safety_related);
    }

    #[test]
    fn dual_point_campaign_finds_latent_redundancy_faults() {
        use decisive_ssam::architecture::FailureImpact;
        let (diagram, _) = decisive_blocks::gallery::redundant_power_supply();
        let outcome =
            run_dual_point(&diagram, &ReliabilityDb::paper_table_ii(), &InjectionConfig::default())
                .unwrap();
        // Each diode open is masked alone but latent in combination.
        for diode in ["D_A", "D_B"] {
            let row = outcome
                .table
                .rows
                .iter()
                .find(|r| r.component == diode && r.failure_mode == "Open")
                .expect("diode row");
            assert!(!row.safety_related);
            assert_eq!(row.impact, Some(FailureImpact::IndirectViolation), "{diode} is latent");
        }
        assert!(outcome
            .latent_pairs
            .iter()
            .any(|(a, b)| a.0.starts_with("D_") && b.0.starts_with("D_")));
        // And the table's LFM now reflects the discovered latency.
        assert!(outcome.table.lfm() < 1.0);
    }

    #[test]
    fn dual_point_on_series_design_finds_nothing_new() {
        let (diagram, _) = gallery::sensor_power_supply();
        let outcome =
            run_dual_point(&diagram, &ReliabilityDb::paper_table_ii(), &InjectionConfig::default())
                .unwrap();
        // The filter caps are masked by the stiff source even in pairs.
        assert!(outcome.latent_pairs.is_empty(), "got {:?}", outcome.latent_pairs);
        let single =
            run(&diagram, &ReliabilityDb::paper_table_ii(), &InjectionConfig::default()).unwrap();
        assert_eq!(outcome.table.disagreement(&single), 0.0);
    }

    #[test]
    fn relative_deviation_edges() {
        assert_eq!(relative_deviation(0.1, 0.1), 0.0);
        assert!((relative_deviation(0.1, 0.0) - 1.0).abs() < 1e-12);
        assert!(relative_deviation(0.0, 0.0) < 1e-9);
        assert!(relative_deviation(0.1, f64::NAN).is_infinite());
    }
}
