//! Change impact analysis — the *iterative* in DECISIVE.
//!
//! "Whenever there are changes to the system definition or system
//! requirements, or when new hazards are identified, the DECISIVE process
//! shall be repeated to determine the impacts of the changes" (paper §III).
//! This module diffs two revisions of an SSAM model and reports which
//! components are impacted and whether the automated safety analysis must
//! re-run — the input to the paper's Clause-8-style change management.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use decisive_ssam::model::SsamModel;

/// One detected change between two model revisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelChange {
    /// A component exists only in the new revision.
    ComponentAdded {
        /// Component name.
        name: String,
    },
    /// A component exists only in the old revision.
    ComponentRemoved {
        /// Component name.
        name: String,
    },
    /// A component's failure rate changed.
    FitChanged {
        /// Component name.
        name: String,
        /// Old FIT value (if any).
        from: Option<f64>,
        /// New FIT value (if any).
        to: Option<f64>,
    },
    /// A component's failure modes changed (names, natures or
    /// distributions).
    FailureModesChanged {
        /// Component name.
        name: String,
    },
    /// A component's deployed safety mechanisms changed.
    MechanismsChanged {
        /// Component name.
        name: String,
    },
    /// The wiring between components changed.
    RelationshipsChanged {
        /// Endpoints (component names) of edges added or removed.
        endpoints: Vec<String>,
    },
    /// The hazard set changed (new or retired hazards).
    HazardsChanged,
}

/// The result of diffing two model revisions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ImpactReport {
    /// All detected changes.
    pub changes: Vec<ModelChange>,
    /// Components whose analysis verdicts may change.
    pub impacted_components: BTreeSet<String>,
}

impl ImpactReport {
    /// `true` when the automated FME(D)A must re-run.
    pub fn requires_reanalysis(&self) -> bool {
        !self.changes.is_empty()
    }

    /// Renders the report as text for a change-management record.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.changes.is_empty() {
            out.push_str("no analysable changes\n");
            return out;
        }
        for change in &self.changes {
            let _ = match change {
                ModelChange::ComponentAdded { name } => writeln!(out, "added component `{name}`"),
                ModelChange::ComponentRemoved { name } => {
                    writeln!(out, "removed component `{name}`")
                }
                ModelChange::FitChanged { name, from, to } => {
                    writeln!(out, "`{name}` FIT changed: {from:?} -> {to:?}")
                }
                ModelChange::FailureModesChanged { name } => {
                    writeln!(out, "`{name}` failure modes changed")
                }
                ModelChange::MechanismsChanged { name } => {
                    writeln!(out, "`{name}` safety mechanisms changed")
                }
                ModelChange::RelationshipsChanged { endpoints } => {
                    writeln!(out, "wiring changed around [{}]", endpoints.join(", "))
                }
                ModelChange::HazardsChanged => writeln!(out, "hazard set changed"),
            };
        }
        let _ = writeln!(
            out,
            "impacted components: [{}] — re-run the automated FME(D)A",
            self.impacted_components.iter().cloned().collect::<Vec<_>>().join(", ")
        );
        out
    }
}

type ComponentFingerprint = (
    Option<String>,             // type key
    Option<u64>,                // FIT bits
    Vec<(String, String, u64)>, // failure modes: name, nature, distribution bits
    Vec<(String, u64, u64)>,    // mechanisms: name, coverage bits, covered-mode hash
);

fn fingerprint(model: &SsamModel) -> BTreeMap<String, ComponentFingerprint> {
    let mut map = BTreeMap::new();
    for (idx, c) in model.components.iter() {
        let modes: Vec<(String, String, u64)> = {
            let mut v: Vec<_> = model
                .failure_modes_of(idx)
                .map(|(_, fm)| {
                    (
                        fm.core.name.value().to_owned(),
                        fm.nature.to_string(),
                        fm.distribution.to_bits(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        let mechanisms: Vec<(String, u64, u64)> = {
            let mut v: Vec<_> = c
                .safety_mechanisms
                .iter()
                .map(|&sm| {
                    let m = &model.safety_mechanisms[sm];
                    let covered = model.failure_modes[m.covers].core.name.value();
                    (
                        m.core.name.value().to_owned(),
                        m.coverage.value().to_bits(),
                        covered
                            .bytes()
                            .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64)),
                    )
                })
                .collect();
            v.sort();
            v
        };
        map.insert(
            c.core.name.value().to_owned(),
            (c.type_key.clone(), c.fit.map(|f| f.value().to_bits()), modes, mechanisms),
        );
    }
    map
}

fn edge_names(model: &SsamModel) -> BTreeMap<(String, String), usize> {
    let mut edges = BTreeMap::new();
    for (_, rel) in model.relationships.iter() {
        let from = model.components[rel.from].core.name.value().to_owned();
        let to = model.components[rel.to].core.name.value().to_owned();
        *edges.entry((from, to)).or_insert(0) += 1;
    }
    edges
}

/// Diffs two revisions of a model (matched by component name).
///
/// # Examples
///
/// ```
/// use decisive_core::{case_study, impact};
/// use decisive_ssam::architecture::Fit;
///
/// let (old_model, _) = case_study::ssam_model();
/// let (mut new_model, _) = case_study::ssam_model();
/// let mc1 = new_model.component_by_name("MC1").expect("MC1");
/// new_model.components[mc1].fit = Some(Fit::new(600.0));
/// let report = impact::diff_models(&old_model, &new_model);
/// assert!(report.requires_reanalysis());
/// assert!(report.impacted_components.contains("MC1"));
/// ```
pub fn diff_models(old: &SsamModel, new: &SsamModel) -> ImpactReport {
    let mut report = ImpactReport::default();
    let old_fp = fingerprint(old);
    let new_fp = fingerprint(new);

    for (name, old_entry) in &old_fp {
        match new_fp.get(name) {
            None => {
                report.changes.push(ModelChange::ComponentRemoved { name: name.clone() });
                report.impacted_components.insert(name.clone());
            }
            Some(new_entry) => {
                if old_entry.1 != new_entry.1 {
                    report.changes.push(ModelChange::FitChanged {
                        name: name.clone(),
                        from: old_entry.1.map(f64::from_bits),
                        to: new_entry.1.map(f64::from_bits),
                    });
                    report.impacted_components.insert(name.clone());
                }
                if old_entry.2 != new_entry.2 {
                    report.changes.push(ModelChange::FailureModesChanged { name: name.clone() });
                    report.impacted_components.insert(name.clone());
                }
                if old_entry.3 != new_entry.3 {
                    report.changes.push(ModelChange::MechanismsChanged { name: name.clone() });
                    report.impacted_components.insert(name.clone());
                }
            }
        }
    }
    for name in new_fp.keys() {
        if !old_fp.contains_key(name) {
            report.changes.push(ModelChange::ComponentAdded { name: name.clone() });
            report.impacted_components.insert(name.clone());
        }
    }

    let old_edges = edge_names(old);
    let new_edges = edge_names(new);
    if old_edges != new_edges {
        let mut endpoints = BTreeSet::new();
        for (edge, count) in &old_edges {
            if new_edges.get(edge) != Some(count) {
                endpoints.insert(edge.0.clone());
                endpoints.insert(edge.1.clone());
            }
        }
        for (edge, count) in &new_edges {
            if old_edges.get(edge) != Some(count) {
                endpoints.insert(edge.0.clone());
                endpoints.insert(edge.1.clone());
            }
        }
        report.impacted_components.extend(endpoints.iter().cloned());
        report
            .changes
            .push(ModelChange::RelationshipsChanged { endpoints: endpoints.into_iter().collect() });
    }

    let hazard_names = |m: &SsamModel| -> BTreeSet<String> {
        m.hazards.iter().map(|(_, h)| h.core.name.value().to_owned()).collect()
    };
    if hazard_names(old) != hazard_names(new) {
        report.changes.push(ModelChange::HazardsChanged);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;
    use decisive_ssam::architecture::{Component, ComponentKind, Coverage, FailureNature, Fit};

    #[test]
    fn identical_models_need_no_reanalysis() {
        let (a, _) = case_study::ssam_model();
        let (b, _) = case_study::ssam_model();
        let report = diff_models(&a, &b);
        assert!(!report.requires_reanalysis());
        assert!(report.impacted_components.is_empty());
        assert!(report.render().contains("no analysable changes"));
    }

    #[test]
    fn fit_change_is_detected() {
        let (old, _) = case_study::ssam_model();
        let (mut new, _) = case_study::ssam_model();
        let d1 = new.component_by_name("D1").expect("D1");
        new.components[d1].fit = Some(Fit::new(20.0));
        let report = diff_models(&old, &new);
        assert!(matches!(
            report.changes.as_slice(),
            [ModelChange::FitChanged { name, from: Some(f), to: Some(t) }]
                if name == "D1" && *f == 10.0 && *t == 20.0
        ));
        assert_eq!(report.impacted_components.len(), 1);
    }

    #[test]
    fn added_and_removed_components() {
        let (old, _) = case_study::ssam_model();
        let (mut new, top) = case_study::ssam_model();
        new.add_child_component(top, Component::new("R9", ComponentKind::Hardware));
        let report = diff_models(&old, &new);
        assert!(report.changes.contains(&ModelChange::ComponentAdded { name: "R9".into() }));
        let reverse = diff_models(&new, &old);
        assert!(reverse.changes.contains(&ModelChange::ComponentRemoved { name: "R9".into() }));
    }

    #[test]
    fn mechanism_deployment_is_a_change() {
        let (old, _) = case_study::ssam_model();
        let (mut new, _) = case_study::ssam_model();
        let mc1 = new.component_by_name("MC1").expect("MC1");
        let ram = new.components[mc1].failure_modes[0];
        new.deploy_safety_mechanism(mc1, "ECC", ram, Coverage::new(0.99), 2.0);
        let report = diff_models(&old, &new);
        assert!(report.changes.contains(&ModelChange::MechanismsChanged { name: "MC1".into() }));
    }

    #[test]
    fn rewiring_impacts_both_endpoints() {
        let (old, _) = case_study::ssam_model();
        let (mut new, _) = case_study::ssam_model();
        let d1 = new.component_by_name("D1").expect("D1");
        let c1 = new.component_by_name("C1").expect("C1");
        new.connect(d1, c1);
        let report = diff_models(&old, &new);
        assert!(report.impacted_components.contains("D1"));
        assert!(report.impacted_components.contains("C1"));
        assert!(report.render().contains("wiring changed"));
    }

    #[test]
    fn failure_mode_distribution_change_is_detected() {
        let (old, _) = case_study::ssam_model();
        let (mut new, _) = case_study::ssam_model();
        let d1 = new.component_by_name("D1").expect("D1");
        let open = new.components[d1].failure_modes[0];
        new.failure_modes[open].distribution = 0.5;
        let report = diff_models(&old, &new);
        assert!(report.changes.contains(&ModelChange::FailureModesChanged { name: "D1".into() }));
    }

    #[test]
    fn new_hazard_triggers_the_process() {
        let (old, _) = case_study::ssam_model();
        let (mut new, _) = case_study::ssam_model();
        new.add_hazard(decisive_ssam::hazard::HazardousSituation::new("H2"));
        let report = diff_models(&old, &new);
        assert!(report.changes.contains(&ModelChange::HazardsChanged));
    }

    #[test]
    fn impact_predicts_spfm_drift() {
        use crate::fmea::graph::{self, GraphConfig};
        let (old, old_top) = case_study::ssam_model();
        let (mut new, new_top) = case_study::ssam_model();
        let mc1 = new.component_by_name("MC1").expect("MC1");
        new.components[mc1].fit = Some(Fit::new(600.0));
        let report = diff_models(&old, &new);
        assert!(report.requires_reanalysis());
        // And indeed the verdict-bearing metric moved.
        let before = graph::run(&old, old_top, &GraphConfig::default()).expect("fmea");
        let after = graph::run(&new, new_top, &GraphConfig::default()).expect("fmea");
        assert!((before.spfm() - after.spfm()).abs() > 1e-6);
        let _ = FailureNature::LossOfFunction;
    }
}
