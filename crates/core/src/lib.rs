//! # decisive-core
//!
//! **DECISIVE** — *DEsigning CrItical Systems with IteratiVe automated
//! safEty analysis* (DAC 2022) — the paper's primary contribution,
//! reimplemented as a Rust library.
//!
//! The crate automates DECISIVE Steps 3–4 so that critical-system design is
//! *driven* by safety analysis:
//!
//! * [`reliability`] — the component reliability model (Step 3) and its
//!   aggregation into designs;
//! * [`fmea::injection`] — automated FMEA by fault injection over
//!   block-diagram models (the Simulink path, §IV-D1);
//! * [`fmea::graph`] — automated FMEA over SSAM models (Algorithm 1), with
//!   an exhaustive-paths and an optimised cut-vertex variant;
//! * [`metrics`] — SPFM (paper Eq. 1), ASIL targets and achieved levels;
//! * [`mechanism`] — the safety-mechanism catalog, deployments, and the
//!   automated Step 4b search (exhaustive / greedy / Pareto front);
//! * [`process`] — the five-step iterative process driver (Fig. 1), from
//!   system definition to synthesised safety concept;
//! * [`monitor`] — runtime monitor generation from `dynamic` components;
//! * [`case_study`] — the paper's §V power-supply case study, ready-made.
//!
//! ## Example
//!
//! The headline result — SPFM 5.38 % before and 96.77 % after deploying
//! ECC, reaching ASIL-B:
//!
//! ```
//! use decisive_core::{case_study, fmea::graph, mechanism, metrics};
//!
//! # fn main() -> Result<(), decisive_core::CoreError> {
//! let (model, top) = case_study::ssam_model();
//! let table = graph::run(&model, top, &graph::GraphConfig::default())?;
//! assert!((table.spfm() - 0.0538).abs() < 5e-4);
//!
//! let catalog = mechanism::MechanismCatalog::paper_table_iii();
//! let refined = mechanism::search::greedy(&table, &catalog, 0.90).expect("ECC reaches ASIL-B");
//! assert!((refined.spfm - 0.9677).abs() < 5e-5);
//! assert_eq!(
//!     metrics::achieved_asil(refined.spfm),
//!     decisive_ssam::base::IntegrityLevel::AsilB
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod case_study;
pub mod degraded;
mod error;
pub mod fmea;
pub mod impact;
pub mod mechanism;
pub mod metrics;
pub mod monitor;
pub mod montecarlo;
pub mod patterns;
pub mod persist;
pub mod process;
pub mod reliability;
pub mod request;
pub mod trace;

pub use error::{CoreError, Result};
