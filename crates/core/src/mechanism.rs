//! The safety mechanism model and deployments — DECISIVE Step 4b's input
//! (Table III: component type, failure mode, mechanism, coverage, cost).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use decisive_federation::Value;
use decisive_ssam::architecture::Coverage;
use decisive_ssam::model::SsamModel;

use crate::error::{CoreError, Result};

pub mod search;

/// One catalog entry: a mechanism applicable to a failure mode of a
/// component type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechanismSpec {
    /// Component type key (Table III `Component`).
    pub component_type: String,
    /// The failure mode this mechanism diagnoses (Table III `Failure_Mode`).
    pub failure_mode: String,
    /// Mechanism name (Table III `Safety_Mechanism`): `"ECC"`, `"watchdog"`, ….
    pub name: String,
    /// Diagnostic coverage achieved.
    pub coverage: Coverage,
    /// Deployment cost in engineering hours (Table III `Cost(hrs)`).
    pub cost_hours: f64,
}

/// A catalog of deployable safety mechanisms.
///
/// # Examples
///
/// ```
/// use decisive_core::mechanism::MechanismCatalog;
///
/// # fn main() -> Result<(), decisive_core::CoreError> {
/// let catalog = MechanismCatalog::from_csv_str(
///     "Component,Failure_Mode,Safety_Mechanism,Cov.,Cost(hrs)\n\
///      MC,RAM Failure,ECC,0.99,2.0\n",
/// )?;
/// assert_eq!(catalog.options_for("MC", "RAM Failure").count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MechanismCatalog {
    entries: Vec<MechanismSpec>,
}

impl MechanismCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        MechanismCatalog::default()
    }

    /// Adds an entry.
    pub fn push(&mut self, spec: MechanismSpec) {
        self.entries.push(spec);
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[MechanismSpec] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the catalog has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The mechanisms applicable to `failure_mode` of `component_type`.
    pub fn options_for<'a>(
        &'a self,
        component_type: &'a str,
        failure_mode: &'a str,
    ) -> impl Iterator<Item = &'a MechanismSpec> {
        self.entries
            .iter()
            .filter(move |e| e.component_type == component_type && e.failure_mode == failure_mode)
    }

    /// Builds a catalog from a Table III-shaped federated value: records
    /// with `Component`, `Failure_Mode`, `Safety_Mechanism`, `Cov.` and
    /// `Cost(hrs)` fields. Coverage accepts either a fraction or a
    /// percentage string (`"99%"`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for malformed rows.
    pub fn from_value(rows: &Value) -> Result<MechanismCatalog> {
        let items = rows.as_list().ok_or_else(|| CoreError::InvalidParameter {
            message: format!(
                "safety mechanism model must be a list of rows, got {}",
                rows.type_name()
            ),
        })?;
        let mut catalog = MechanismCatalog::new();
        for (i, row) in items.iter().enumerate() {
            let text = |name: &str| -> Result<String> {
                row.get(name).and_then(Value::as_str).map(str::to_owned).ok_or_else(|| {
                    CoreError::InvalidParameter {
                        message: format!("safety mechanism row {i} is missing `{name}`"),
                    }
                })
            };
            let coverage = row
                .get("Cov.")
                .or_else(|| row.get("Coverage"))
                .and_then(Value::as_f64)
                .ok_or_else(|| CoreError::InvalidParameter {
                    message: format!("safety mechanism row {i} is missing a numeric `Cov.`"),
                })?;
            if !(0.0..=1.0).contains(&coverage) {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "safety mechanism row {i}: coverage {coverage} outside [0, 1]"
                    ),
                });
            }
            let cost = row
                .get("Cost(hrs)")
                .or_else(|| row.get("Cost"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            catalog.push(MechanismSpec {
                component_type: text("Component")?,
                failure_mode: text("Failure_Mode")?,
                name: text("Safety_Mechanism")?,
                coverage: Coverage::new(coverage),
                cost_hours: cost,
            });
        }
        Ok(catalog)
    }

    /// Parses a Table III-shaped CSV document.
    ///
    /// # Errors
    ///
    /// Propagates CSV and validation errors.
    pub fn from_csv_str(text: &str) -> Result<MechanismCatalog> {
        let rows = decisive_federation::csv::parse(text)?;
        MechanismCatalog::from_value(&rows)
    }

    /// The paper's example safety mechanism model (Table III).
    pub fn paper_table_iii() -> MechanismCatalog {
        MechanismCatalog::from_csv_str(
            "Component,Failure_Mode,Safety_Mechanism,Cov.,Cost(hrs)\n\
             MC,RAM Failure,ECC,0.99,2.0\n",
        )
        .expect("static table parses")
    }
}

/// A safety mechanism chosen for one `(component instance, failure mode)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployedMechanism {
    /// Mechanism name.
    pub name: String,
    /// Diagnostic coverage achieved.
    pub coverage: Coverage,
    /// Deployment cost in engineering hours.
    pub cost_hours: f64,
}

/// A set of safety mechanism deployments, keyed by
/// `(component instance name, failure mode name)`.
///
/// Deployments stay *separate from the design* — the paper emphasises that
/// analysts "do not have to make actual changes to the system design" while
/// exploring Step 4b; the deployment is merged into the design (or an SSAM
/// model) only once chosen.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Deployment {
    entries: HashMap<(String, String), DeployedMechanism>,
}

impl Deployment {
    /// Creates an empty deployment.
    pub fn new() -> Self {
        Deployment::default()
    }

    /// Deploys `mechanism` on `(component, failure_mode)`, returning any
    /// previously deployed mechanism.
    pub fn deploy(
        &mut self,
        component: impl Into<String>,
        failure_mode: impl Into<String>,
        mechanism: DeployedMechanism,
    ) -> Option<DeployedMechanism> {
        self.entries.insert((component.into(), failure_mode.into()), mechanism)
    }

    /// The mechanism deployed on `(component, failure_mode)`, if any.
    pub fn get(&self, component: &str, failure_mode: &str) -> Option<&DeployedMechanism> {
        self.entries.get(&(component.to_owned(), failure_mode.to_owned()))
    }

    /// Number of deployments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total deployment cost in engineering hours.
    pub fn total_cost(&self) -> f64 {
        // fold instead of sum: an empty `Iterator::<f64>::sum` is -0.0,
        // which leaks into reports as "-0.0 h".
        self.entries.values().fold(0.0, |acc, m| acc + m.cost_hours)
    }

    /// Iterates `((component, failure_mode), mechanism)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, String), &DeployedMechanism)> {
        self.entries.iter()
    }

    /// Collects the safety mechanisms already modelled in an SSAM design
    /// (the §V-B path, where the user models ECC directly on `MC1`).
    pub fn from_ssam(model: &SsamModel) -> Deployment {
        let mut deployment = Deployment::new();
        for (cidx, component) in model.components.iter() {
            for &sm in &component.safety_mechanisms {
                let mech = &model.safety_mechanisms[sm];
                let fm = &model.failure_modes[mech.covers];
                debug_assert_eq!(fm.owner, cidx);
                deployment.deploy(
                    component.core.name.value(),
                    fm.core.name.value(),
                    DeployedMechanism {
                        name: mech.core.name.value().to_owned(),
                        coverage: mech.coverage,
                        cost_hours: mech.cost_hours,
                    },
                );
            }
        }
        deployment
    }

    /// Writes this deployment into an SSAM model — the paper's "changes in
    /// SSAM can be propagated back to the original model". Components and
    /// failure modes are matched by name; unknown pairs are reported.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownComponent`] when a deployment target does
    /// not exist in the model.
    pub fn apply_to_ssam(&self, model: &mut SsamModel) -> Result<()> {
        for ((component, failure_mode), mech) in &self.entries {
            let cidx = model
                .component_by_name(component)
                .ok_or_else(|| CoreError::UnknownComponent { name: component.clone() })?;
            let fm_idx = model.components[cidx]
                .failure_modes
                .iter()
                .copied()
                .find(|&fm| model.failure_modes[fm].core.name.value() == failure_mode)
                .ok_or_else(|| CoreError::UnknownComponent {
                    name: format!("{component}.{failure_mode}"),
                })?;
            let already =
                model.mechanisms_covering(cidx, fm_idx).any(|m| m.core.name.value() == mech.name);
            if !already {
                model.deploy_safety_mechanism(
                    cidx,
                    mech.name.clone(),
                    fm_idx,
                    mech.coverage,
                    mech.cost_hours,
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decisive_ssam::architecture::{Component, ComponentKind, FailureNature};

    #[test]
    fn paper_table_iii_shape() {
        let c = MechanismCatalog::paper_table_iii();
        assert_eq!(c.len(), 1);
        let ecc = c.options_for("MC", "RAM Failure").next().unwrap();
        assert_eq!(ecc.name, "ECC");
        assert_eq!(ecc.coverage, Coverage::new(0.99));
        assert_eq!(ecc.cost_hours, 2.0);
        assert_eq!(c.options_for("MC", "Other").count(), 0);
    }

    #[test]
    fn coverage_accepts_percent_strings() {
        let c = MechanismCatalog::from_csv_str(
            "Component,Failure_Mode,Safety_Mechanism,Cov.,Cost(hrs)\nMCU,RAM Failure,ECC,99%,2.0\n",
        )
        .unwrap();
        assert_eq!(c.entries()[0].coverage, Coverage::new(0.99));
    }

    #[test]
    fn malformed_rows_rejected() {
        assert!(MechanismCatalog::from_csv_str("Component,Failure_Mode\nMCU,x\n").is_err());
        assert!(MechanismCatalog::from_csv_str(
            "Component,Failure_Mode,Safety_Mechanism,Cov.,Cost(hrs)\nMCU,x,ECC,1.5,1\n"
        )
        .is_err());
        assert!(MechanismCatalog::from_value(&Value::Int(1)).is_err());
    }

    #[test]
    fn deployment_cost_and_lookup() {
        let mut d = Deployment::new();
        d.deploy(
            "MC1",
            "RAM Failure",
            DeployedMechanism {
                name: "ECC".into(),
                coverage: Coverage::new(0.99),
                cost_hours: 2.0,
            },
        );
        d.deploy(
            "D1",
            "Open",
            DeployedMechanism {
                name: "redundant diode".into(),
                coverage: Coverage::new(0.9),
                cost_hours: 1.5,
            },
        );
        assert_eq!(d.len(), 2);
        assert!((d.total_cost() - 3.5).abs() < 1e-12);
        assert_eq!(d.get("MC1", "RAM Failure").unwrap().name, "ECC");
        assert!(d.get("MC1", "Other").is_none());
    }

    #[test]
    fn ssam_roundtrip_of_deployments() {
        let mut model = SsamModel::new("m");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let mc1 = model.add_child_component(top, Component::new("MC1", ComponentKind::Hardware));
        model.add_failure_mode(mc1, "RAM Failure", FailureNature::LossOfFunction, 1.0);

        let mut d = Deployment::new();
        d.deploy(
            "MC1",
            "RAM Failure",
            DeployedMechanism {
                name: "ECC".into(),
                coverage: Coverage::new(0.99),
                cost_hours: 2.0,
            },
        );
        d.apply_to_ssam(&mut model).unwrap();
        assert_eq!(model.safety_mechanisms.len(), 1);
        // Idempotent.
        d.apply_to_ssam(&mut model).unwrap();
        assert_eq!(model.safety_mechanisms.len(), 1);

        let back = Deployment::from_ssam(&model);
        assert_eq!(back, d);
    }

    #[test]
    fn apply_to_unknown_component_errors() {
        let mut model = SsamModel::new("m");
        let mut d = Deployment::new();
        d.deploy(
            "ghost",
            "Open",
            DeployedMechanism { name: "wd".into(), coverage: Coverage::new(0.5), cost_hours: 1.0 },
        );
        assert!(matches!(d.apply_to_ssam(&mut model), Err(CoreError::UnknownComponent { .. })));
    }
}
