//! Automated safety-mechanism deployment search — DECISIVE Step 4b's
//! automation: "the users may … let SAME determine the solution for the
//! target safety level and costs. If there are multiple options available …
//! ask SAME to search for the pareto front of viable solutions."
//!
//! Three strategies over the same space (each FMEA row independently picks
//! one applicable catalog mechanism or none):
//!
//! * [`exhaustive`] — optimal minimum-cost deployment meeting a target SPFM
//!   (bounded enumeration);
//! * [`greedy`] — repeatedly deploys the best SPFM-gain-per-cost option;
//! * [`pareto_front`] — all non-dominated (cost, SPFM) trade-offs, for the
//!   analyst to "choose the Safety Mechanisms that they see fit".

use crate::error::{CoreError, Result};
use crate::fmea::FmeaTable;
use crate::mechanism::{DeployedMechanism, Deployment, MechanismCatalog, MechanismSpec};

/// One search result: a deployment with its cost and achieved SPFM.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The chosen deployment.
    pub deployment: Deployment,
    /// Total cost in engineering hours.
    pub cost: f64,
    /// SPFM of the design with this deployment applied.
    pub spfm: f64,
}

/// Enumeration guard for [`exhaustive`].
pub const EXHAUSTIVE_LIMIT: u128 = 2_000_000;

/// The per-row deployment choices: `(row index, applicable mechanisms)`.
fn choices<'a>(
    table: &'a FmeaTable,
    catalog: &'a MechanismCatalog,
) -> Vec<(usize, Vec<&'a MechanismSpec>)> {
    table
        .rows
        .iter()
        .enumerate()
        .filter(|(_, row)| row.safety_related)
        .filter_map(|(i, row)| {
            let type_key = row.type_key.as_deref()?;
            let options: Vec<&MechanismSpec> =
                catalog.options_for(type_key, &row.failure_mode).collect();
            (!options.is_empty()).then_some((i, options))
        })
        .collect()
}

fn outcome(table: &FmeaTable, deployment: Deployment) -> SearchOutcome {
    let cost = deployment.total_cost();
    let spfm = table.with_deployment(&deployment).spfm();
    SearchOutcome { deployment, cost, spfm }
}

fn deploy_spec(deployment: &mut Deployment, table: &FmeaTable, row: usize, spec: &MechanismSpec) {
    let r = &table.rows[row];
    deployment.deploy(
        r.component.clone(),
        r.failure_mode.clone(),
        DeployedMechanism {
            name: spec.name.clone(),
            coverage: spec.coverage,
            cost_hours: spec.cost_hours,
        },
    );
}

/// Finds the minimum-cost deployment achieving `target_spfm` by exhaustive
/// enumeration. Returns `None` when no combination reaches the target.
///
/// # Errors
///
/// Returns [`CoreError::SearchSpaceTooLarge`] when the space exceeds
/// [`EXHAUSTIVE_LIMIT`] combinations.
pub fn exhaustive(
    table: &FmeaTable,
    catalog: &MechanismCatalog,
    target_spfm: f64,
) -> Result<Option<SearchOutcome>> {
    let slots = choices(table, catalog);
    let combinations: u128 = slots.iter().map(|(_, opts)| opts.len() as u128 + 1).product();
    if combinations > EXHAUSTIVE_LIMIT {
        return Err(CoreError::SearchSpaceTooLarge { combinations, limit: EXHAUSTIVE_LIMIT });
    }
    let mut best: Option<SearchOutcome> = None;
    let mut assignment: Vec<Option<usize>> = vec![None; slots.len()];
    enumerate(table, &slots, &mut assignment, 0, target_spfm, &mut best);
    Ok(best)
}

fn enumerate(
    table: &FmeaTable,
    slots: &[(usize, Vec<&MechanismSpec>)],
    assignment: &mut Vec<Option<usize>>,
    depth: usize,
    target_spfm: f64,
    best: &mut Option<SearchOutcome>,
) {
    if depth == slots.len() {
        let mut deployment = Deployment::new();
        for (slot, choice) in slots.iter().zip(assignment.iter()) {
            if let Some(option) = choice {
                deploy_spec(&mut deployment, table, slot.0, slot.1[*option]);
            }
        }
        let candidate = outcome(table, deployment);
        if candidate.spfm >= target_spfm && best.as_ref().is_none_or(|b| candidate.cost < b.cost) {
            *best = Some(candidate);
        }
        return;
    }
    for choice in std::iter::once(None).chain((0..slots[depth].1.len()).map(Some)) {
        assignment[depth] = choice;
        enumerate(table, slots, assignment, depth + 1, target_spfm, best);
    }
    assignment[depth] = None;
}

/// Greedy search: repeatedly deploys the option with the best SPFM gain per
/// cost until the target is met or no option helps. Fast, near-optimal on
/// realistic catalogs; returns `None` when the target stays unreachable
/// (use [`greedy_best_effort`] to keep the partial deployment instead).
pub fn greedy(
    table: &FmeaTable,
    catalog: &MechanismCatalog,
    target_spfm: f64,
) -> Option<SearchOutcome> {
    let current = greedy_loop(table, catalog, target_spfm);
    (current.spfm >= target_spfm).then_some(current)
}

/// Greedy search without a target: deploys options with positive
/// SPFM-gain-per-cost until none remain, returning whatever was achieved.
pub fn greedy_best_effort(table: &FmeaTable, catalog: &MechanismCatalog) -> SearchOutcome {
    greedy_loop(table, catalog, f64::INFINITY)
}

fn greedy_loop(table: &FmeaTable, catalog: &MechanismCatalog, target_spfm: f64) -> SearchOutcome {
    let slots = choices(table, catalog);
    let mut deployment = Deployment::new();
    let mut current = outcome(table, deployment.clone());
    while current.spfm < target_spfm {
        // Pick the best SPFM-gain-per-cost step, allowing an already
        // deployed mechanism to be *replaced* by a stronger one (otherwise
        // a cheap early pick locks its slot and the optimum is missed).
        let mut best_gain = 0.0;
        let mut best_pick: Option<(usize, &MechanismSpec)> = None;
        for (row, options) in &slots {
            for spec in options {
                let already = deployment
                    .get(&table.rows[*row].component, &table.rows[*row].failure_mode)
                    .is_some_and(|m| m.name == spec.name);
                if already {
                    continue;
                }
                let mut trial = deployment.clone();
                deploy_spec(&mut trial, table, *row, spec);
                let spfm = table.with_deployment(&trial).spfm();
                let gain = (spfm - current.spfm) / spec.cost_hours.max(1e-9);
                if gain > best_gain {
                    best_gain = gain;
                    best_pick = Some((*row, spec));
                }
            }
        }
        let Some((row, spec)) = best_pick else {
            break;
        };
        deploy_spec(&mut deployment, table, row, spec);
        current = outcome(table, deployment.clone());
    }
    current
}

/// Computes the Pareto front of `(cost, SPFM)` trade-offs: every returned
/// outcome is non-dominated (no other choice is both cheaper and safer).
/// Sorted by increasing cost.
///
/// Because every row's residual single-point FIT contributes *additively*
/// and *independently* to the SPFM numerator, the front is computed by
/// dynamic programming over the deployment slots with dominance pruning —
/// exact, without enumerating the combinatorial space (which for the AUV
/// subject exceeds 10⁶ combinations).
pub fn pareto_front(table: &FmeaTable, catalog: &MechanismCatalog) -> Result<Vec<SearchOutcome>> {
    let slots = choices(table, catalog);
    // States: (cost, residual single-point FIT, chosen option per slot).
    struct State {
        cost: f64,
        residual: f64,
        picks: Vec<Option<usize>>,
    }
    let base_residual: f64 = table.rows.iter().map(|r| r.residual_fit().value()).sum();
    let mut states =
        vec![State { cost: 0.0, residual: base_residual, picks: vec![None; slots.len()] }];
    for (slot_idx, (row, options)) in slots.iter().enumerate() {
        let row_base = table.rows[*row].mode_fit().value();
        let mut next: Vec<State> = Vec::with_capacity(states.len() * (options.len() + 1));
        for state in &states {
            next.push(State {
                cost: state.cost,
                residual: state.residual,
                picks: state.picks.clone(),
            });
            for (opt_idx, spec) in options.iter().enumerate() {
                // The undeployed row contributes its full mode FIT (its
                // coverage is NONE in the base table); deploying replaces
                // that contribution by the uncovered remainder.
                let delta = row_base * spec.coverage.value();
                let mut picks = state.picks.clone();
                picks[slot_idx] = Some(opt_idx);
                next.push(State {
                    cost: state.cost + spec.cost_hours,
                    residual: state.residual - delta,
                    picks,
                });
            }
        }
        // Dominance pruning: sort by cost, keep strictly-improving residual.
        next.sort_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.residual.partial_cmp(&b.residual).unwrap_or(std::cmp::Ordering::Equal))
        });
        let mut pruned: Vec<State> = Vec::new();
        for state in next {
            match pruned.last() {
                Some(best) if state.residual >= best.residual - 1e-12 => {}
                _ => pruned.push(state),
            }
        }
        states = pruned;
    }
    // Materialise deployments and exact SPFMs for the surviving states.
    let mut front: Vec<SearchOutcome> = states
        .into_iter()
        .map(|state| {
            let mut deployment = Deployment::new();
            for (slot, pick) in slots.iter().zip(state.picks.iter()) {
                if let Some(opt) = pick {
                    deploy_spec(&mut deployment, table, slot.0, slot.1[*opt]);
                }
            }
            outcome(table, deployment)
        })
        .collect();
    // The per-slot pruning keeps cost-sorted states; re-check dominance on
    // the exact SPFM values to be safe.
    front.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap_or(std::cmp::Ordering::Equal));
    let mut out: Vec<SearchOutcome> = Vec::new();
    for candidate in front {
        if out.last().is_none_or(|best| candidate.spfm > best.spfm + 1e-15) {
            out.push(candidate);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmea::FmeaRow;
    use decisive_ssam::architecture::{Coverage, FailureNature, Fit};

    fn case_study_table() -> FmeaTable {
        let mut t = FmeaTable::new("power-supply");
        let mk = |component: &str, type_key: &str, fit, mode: &str, dist, sr| FmeaRow {
            component: component.into(),
            type_key: Some(type_key.into()),
            fit: Fit::new(fit),
            failure_mode: mode.into(),
            nature: FailureNature::LossOfFunction,
            distribution: dist,
            safety_related: sr,
            impact: None,
            mechanism: None,
            coverage: Coverage::NONE,
            warning: None,
        };
        t.push(mk("D1", "Diode", 10.0, "Open", 0.3, true));
        t.push(mk("L1", "Inductor", 15.0, "Open", 0.3, true));
        t.push(mk("MC1", "MC", 300.0, "RAM Failure", 1.0, true));
        t
    }

    fn catalog() -> MechanismCatalog {
        MechanismCatalog::paper_table_iii()
    }

    /// The case study: deploying ECC (the only option) reaches ASIL-B.
    #[test]
    fn exhaustive_reproduces_the_paper_refinement() {
        let best = exhaustive(&case_study_table(), &catalog(), 0.90).unwrap().unwrap();
        assert_eq!(best.deployment.len(), 1);
        assert_eq!(best.deployment.get("MC1", "RAM Failure").unwrap().name, "ECC");
        assert!((best.spfm - 0.9677).abs() < 5e-5, "spfm {}", best.spfm);
        assert!((best.cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_matches_exhaustive_on_the_case_study() {
        let g = greedy(&case_study_table(), &catalog(), 0.90).unwrap();
        let e = exhaustive(&case_study_table(), &catalog(), 0.90).unwrap().unwrap();
        assert_eq!(g.deployment, e.deployment);
    }

    #[test]
    fn unreachable_target_returns_none() {
        // ECC alone cannot push SPFM to 99 % (D1/L1 opens stay uncovered).
        assert!(exhaustive(&case_study_table(), &catalog(), 0.99).unwrap().is_none());
        assert!(greedy(&case_study_table(), &catalog(), 0.99).is_none());
    }

    fn rich_catalog() -> MechanismCatalog {
        MechanismCatalog::from_csv_str(
            "Component,Failure_Mode,Safety_Mechanism,Cov.,Cost(hrs)\n\
             MC,RAM Failure,ECC,0.99,2.0\n\
             MC,RAM Failure,software scrubbing,0.60,0.5\n\
             Diode,Open,redundant diode,0.95,1.0\n\
             Inductor,Open,supply monitor,0.90,1.5\n",
        )
        .unwrap()
    }

    #[test]
    fn exhaustive_finds_cheapest_combination() {
        let table = case_study_table();
        let catalog = rich_catalog();
        let best = exhaustive(&table, &catalog, 0.97).unwrap().unwrap();
        assert!(best.spfm >= 0.97);
        // Every alternative meeting the target costs at least as much.
        for other in pareto_front(&table, &catalog).unwrap() {
            if other.spfm >= 0.97 {
                assert!(other.cost >= best.cost - 1e-12);
            }
        }
    }

    #[test]
    fn greedy_reaches_targets_the_catalog_supports() {
        let table = case_study_table();
        let catalog = rich_catalog();
        let g = greedy(&table, &catalog, 0.98).unwrap();
        assert!(g.spfm >= 0.98);
        // Greedy is not guaranteed optimal, but must not be absurd: within
        // the total catalog cost.
        assert!(g.cost <= 5.0);
    }

    #[test]
    fn greedy_best_effort_deploys_everything_useful() {
        let table = case_study_table();
        let catalog = rich_catalog();
        // The best the catalog can do: 1 − (0.15 + 0.45 + 3)/325 ≈ 0.98892.
        let best = greedy_best_effort(&table, &catalog);
        assert!((best.spfm - (1.0 - 3.6 / 325.0)).abs() < 1e-9);
        assert_eq!(best.deployment.len(), 3);
        // And `greedy` with an unreachable target reports None.
        assert!(greedy(&table, &catalog, 0.99).is_none());
    }

    #[test]
    fn pareto_front_is_sorted_and_non_dominated() {
        let front = pareto_front(&case_study_table(), &rich_catalog()).unwrap();
        assert!(!front.is_empty());
        for pair in front.windows(2) {
            assert!(pair[0].cost <= pair[1].cost);
            assert!(pair[0].spfm < pair[1].spfm, "higher cost must buy higher SPFM on the front");
        }
        // The empty deployment (cost 0) is always on the front.
        assert_eq!(front[0].cost, 0.0);
        // The all-best deployment's SPFM is the front's maximum:
        // 1 − (0.15 + 0.45 + 3)/325 ≈ 0.98892.
        let max_spfm = front.last().unwrap().spfm;
        assert!((max_spfm - (1.0 - 3.6 / 325.0)).abs() < 1e-9);
    }

    #[test]
    fn search_space_guard_trips() {
        let mut table = FmeaTable::new("big");
        let mut catalog = MechanismCatalog::new();
        for i in 0..40 {
            table.push(FmeaRow {
                component: format!("C{i}"),
                type_key: Some("X".into()),
                fit: Fit::new(10.0),
                failure_mode: "Open".into(),
                nature: FailureNature::LossOfFunction,
                distribution: 1.0,
                safety_related: true,
                impact: None,
                mechanism: None,
                coverage: Coverage::NONE,
                warning: None,
            });
        }
        for name in ["a", "b", "c"] {
            catalog.push(MechanismSpec {
                component_type: "X".into(),
                failure_mode: "Open".into(),
                name: name.into(),
                coverage: Coverage::new(0.9),
                cost_hours: 1.0,
            });
        }
        assert!(matches!(
            exhaustive(&table, &catalog, 0.9),
            Err(CoreError::SearchSpaceTooLarge { .. })
        ));
        // Greedy handles the same space without enumeration.
        assert!(greedy(&table, &catalog, 0.9).is_some());
    }

    #[test]
    fn pareto_dp_matches_brute_force_on_small_spaces() {
        // Brute force: enumerate every assignment and keep non-dominated
        // outcomes; the DP must produce the same (cost, spfm) front.
        let table = case_study_table();
        let catalog = rich_catalog();
        let slots = choices(&table, &catalog);
        let mut all: Vec<SearchOutcome> = Vec::new();
        let combos: usize = slots.iter().map(|(_, o)| o.len() + 1).product();
        for mask in 0..combos {
            let mut rest = mask;
            let mut deployment = Deployment::new();
            for (row, options) in &slots {
                let pick = rest % (options.len() + 1);
                rest /= options.len() + 1;
                if pick > 0 {
                    deploy_spec(&mut deployment, &table, *row, options[pick - 1]);
                }
            }
            all.push(outcome(&table, deployment));
        }
        all.sort_by(|a, b| {
            a.cost.partial_cmp(&b.cost).unwrap().then(b.spfm.partial_cmp(&a.spfm).unwrap())
        });
        let mut reference: Vec<(f64, f64)> = Vec::new();
        for c in all {
            if reference.last().is_none_or(|(_, s)| c.spfm > *s + 1e-15) {
                reference.push((c.cost, c.spfm));
            }
        }
        let dp: Vec<(f64, f64)> =
            pareto_front(&table, &catalog).unwrap().iter().map(|o| (o.cost, o.spfm)).collect();
        assert_eq!(dp.len(), reference.len());
        for ((dc, ds), (rc, rs)) in dp.iter().zip(&reference) {
            assert!(
                (dc - rc).abs() < 1e-9 && (ds - rs).abs() < 1e-12,
                "dp {dp:?} vs ref {reference:?}"
            );
        }
    }

    #[test]
    fn pareto_scales_to_many_slots() {
        // 40 slots × 3 options ≈ 4^40 combinations — enumeration would never
        // finish; the DP front stays small.
        let mut table = FmeaTable::new("big");
        let mut catalog = MechanismCatalog::new();
        for i in 0..40 {
            table.push(FmeaRow {
                component: format!("C{i}"),
                type_key: Some("X".into()),
                fit: Fit::new(10.0),
                failure_mode: "Open".into(),
                nature: FailureNature::LossOfFunction,
                distribution: 1.0,
                safety_related: true,
                impact: None,
                mechanism: None,
                coverage: Coverage::NONE,
                warning: None,
            });
        }
        for (name, cov, cost) in [("a", 0.9, 1.0), ("b", 0.99, 2.0), ("c", 0.5, 0.25)] {
            catalog.push(MechanismSpec {
                component_type: "X".into(),
                failure_mode: "Open".into(),
                name: name.into(),
                coverage: Coverage::new(cov),
                cost_hours: cost,
            });
        }
        let front = pareto_front(&table, &catalog).unwrap();
        assert!(front.len() > 10, "rich trade-off space");
        for pair in front.windows(2) {
            assert!(pair[0].cost <= pair[1].cost && pair[0].spfm < pair[1].spfm);
        }
    }

    #[test]
    fn rows_without_catalog_options_are_ignored() {
        let mut table = case_study_table();
        table.rows[0].type_key = None; // D1 loses its type key
        let best = exhaustive(&table, &catalog(), 0.90).unwrap().unwrap();
        assert_eq!(best.deployment.len(), 1, "only MC1 has options");
    }
}
