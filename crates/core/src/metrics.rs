//! Architectural metrics and ASIL targets (ISO 26262-5).

use serde::{Deserialize, Serialize};

use decisive_ssam::architecture::{FailureImpact, Fit};
use decisive_ssam::base::IntegrityLevel;

use crate::fmea::FmeaTable;

/// The hardware architectural metrics of an analysed design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureMetrics {
    /// Single Point Fault Metric (paper Eq. 1).
    pub spfm: f64,
    /// Total FIT of safety-related hardware (the Eq. 1 denominator).
    pub total_sr_fit: Fit,
    /// Residual single-point FIT after diagnostics (the Eq. 1 numerator).
    pub residual_spf_fit: Fit,
    /// The highest ASIL whose SPFM target the design meets.
    pub achieved_asil: IntegrityLevel,
}

/// Computes the metrics of `table`.
///
/// # Examples
///
/// ```
/// use decisive_core::{fmea::FmeaTable, metrics};
///
/// let metrics = metrics::compute(&FmeaTable::new("empty"));
/// assert_eq!(metrics.spfm, 1.0);
/// ```
pub fn compute(table: &FmeaTable) -> ArchitectureMetrics {
    let sr = table.safety_related_components();
    let mut seen = std::collections::BTreeSet::new();
    let mut total = Fit::ZERO;
    for row in &table.rows {
        if sr.contains(&row.component) && seen.insert(row.component.clone()) {
            total += row.fit;
        }
    }
    let residual: Fit = table.rows.iter().map(|r| r.residual_fit()).sum();
    let spfm = table.spfm();
    ArchitectureMetrics {
        spfm,
        total_sr_fit: total,
        residual_spf_fit: residual,
        achieved_asil: achieved_asil(spfm),
    }
}

/// The SPFM target for an ASIL (ISO 26262-5 Table 4): ≥ 90 % for ASIL-B,
/// ≥ 97 % for ASIL-C, ≥ 99 % for ASIL-D. ASIL-A and QM have no target.
pub fn spfm_target(asil: IntegrityLevel) -> Option<f64> {
    match asil {
        IntegrityLevel::AsilB => Some(0.90),
        IntegrityLevel::AsilC => Some(0.97),
        IntegrityLevel::AsilD => Some(0.99),
        _ => None,
    }
}

/// The Latent Fault Metric target for an ASIL (ISO 26262-5 Table 5):
/// ≥ 60 % for ASIL-B, ≥ 80 % for ASIL-C, ≥ 90 % for ASIL-D.
pub fn lfm_target(asil: IntegrityLevel) -> Option<f64> {
    match asil {
        IntegrityLevel::AsilB => Some(0.60),
        IntegrityLevel::AsilC => Some(0.80),
        IntegrityLevel::AsilD => Some(0.90),
        _ => None,
    }
}

/// The highest ASIL whose SPFM target `spfm` meets; designs below the
/// ASIL-B threshold report ASIL-A (which carries no SPFM requirement).
pub fn achieved_asil(spfm: f64) -> IntegrityLevel {
    if spfm >= 0.99 {
        IntegrityLevel::AsilD
    } else if spfm >= 0.97 {
        IntegrityLevel::AsilC
    } else if spfm >= 0.90 {
        IntegrityLevel::AsilB
    } else {
        IntegrityLevel::AsilA
    }
}

/// `true` if `table` meets the SPFM target of `target` (trivially true for
/// targets without an SPFM requirement).
pub fn meets_target(table: &FmeaTable, target: IntegrityLevel) -> bool {
    match spfm_target(target) {
        Some(t) => table.spfm() >= t,
        None => true,
    }
}

/// An extension beyond the paper: the Probabilistic Metric for random
/// Hardware Failures (ISO 26262-5 §9) approximated as the residual
/// single-point failure rate, in failures/hour.
///
/// ISO 26262 targets: `< 10⁻⁷/h` for ASIL-B/C, `< 10⁻⁸/h` for ASIL-D.
pub fn pmhf(table: &FmeaTable) -> f64 {
    table.rows.iter().map(|r| r.residual_fit()).sum::<Fit>().per_hour()
}

/// The PMHF target for an ASIL (ISO 26262-5 Table 6), in failures/hour.
pub fn pmhf_target(asil: IntegrityLevel) -> Option<f64> {
    match asil {
        IntegrityLevel::AsilB | IntegrityLevel::AsilC => Some(1e-7),
        IntegrityLevel::AsilD => Some(1e-8),
        _ => None,
    }
}

/// An extension beyond the paper: the Latent Fault Metric, counting
/// indirect-violation (IVF) failure modes that no diagnostic covers as
/// latent. Requires rows to carry impact classifications via `nature` — the
/// caller provides the classification map from effects analysis.
pub fn latent_fault_metric(
    table: &FmeaTable,
    impact_of: impl Fn(&crate::fmea::FmeaRow) -> FailureImpact,
) -> f64 {
    let sr = table.safety_related_components();
    if sr.is_empty() {
        return 1.0;
    }
    let mut total = Fit::ZERO;
    let mut latent = Fit::ZERO;
    for row in &table.rows {
        if !sr.contains(&row.component) {
            continue;
        }
        total += row.mode_fit();
        if impact_of(row) == FailureImpact::IndirectViolation {
            latent += row.mode_fit() * row.coverage.residual();
        }
    }
    if total.value() == 0.0 {
        1.0
    } else {
        1.0 - latent.value() / total.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmea::FmeaRow;
    use decisive_ssam::architecture::{Coverage, FailureNature};

    fn table() -> FmeaTable {
        let mut t = FmeaTable::new("t");
        t.push(FmeaRow {
            component: "A".into(),
            type_key: None,
            fit: Fit::new(100.0),
            failure_mode: "Open".into(),
            nature: FailureNature::LossOfFunction,
            distribution: 0.5,
            safety_related: true,
            impact: None,
            mechanism: Some("wd".into()),
            coverage: Coverage::new(0.9),
            warning: None,
        });
        t.push(FmeaRow {
            component: "A".into(),
            type_key: None,
            fit: Fit::new(100.0),
            failure_mode: "Short".into(),
            nature: FailureNature::Erroneous,
            distribution: 0.5,
            safety_related: false,
            impact: None,
            mechanism: None,
            coverage: Coverage::NONE,
            warning: None,
        });
        t
    }

    #[test]
    fn compute_aggregates_fit() {
        let m = compute(&table());
        assert_eq!(m.total_sr_fit, Fit::new(100.0));
        // residual = 100 * 0.5 * 0.1 = 5
        assert!((m.residual_spf_fit.value() - 5.0).abs() < 1e-9);
        assert!((m.spfm - 0.95).abs() < 1e-12);
        assert_eq!(m.achieved_asil, IntegrityLevel::AsilB);
    }

    #[test]
    fn targets_match_iso_26262() {
        assert_eq!(spfm_target(IntegrityLevel::AsilB), Some(0.90));
        assert_eq!(spfm_target(IntegrityLevel::AsilC), Some(0.97));
        assert_eq!(spfm_target(IntegrityLevel::AsilD), Some(0.99));
        assert_eq!(spfm_target(IntegrityLevel::AsilA), None);
        assert_eq!(lfm_target(IntegrityLevel::AsilD), Some(0.90));
    }

    #[test]
    fn achieved_asil_thresholds() {
        assert_eq!(achieved_asil(0.995), IntegrityLevel::AsilD);
        assert_eq!(achieved_asil(0.98), IntegrityLevel::AsilC);
        assert_eq!(achieved_asil(0.9677), IntegrityLevel::AsilB);
        assert_eq!(achieved_asil(0.0538), IntegrityLevel::AsilA);
    }

    #[test]
    fn meets_target_logic() {
        let t = table(); // spfm 0.95
        assert!(meets_target(&t, IntegrityLevel::AsilB));
        assert!(!meets_target(&t, IntegrityLevel::AsilC));
        assert!(meets_target(&t, IntegrityLevel::Qm));
    }

    #[test]
    fn pmhf_is_residual_rate_per_hour() {
        let t = table(); // residual 5 FIT = 5e-9 /h
        assert!((pmhf(&t) - 5e-9).abs() < 1e-18);
        assert_eq!(pmhf_target(IntegrityLevel::AsilB), Some(1e-7));
        assert_eq!(pmhf_target(IntegrityLevel::AsilD), Some(1e-8));
        assert_eq!(pmhf_target(IntegrityLevel::Qm), None);
        // The paper's refined design: 10.5 FIT residual → 1.05e-8 /h,
        // meeting the ASIL-B PMHF target.
        assert!(10.5e-9 < pmhf_target(IntegrityLevel::AsilB).unwrap());
    }

    #[test]
    fn lfm_counts_uncovered_ivf_modes() {
        let t = table();
        // Classify the short as IVF with no coverage: latent = 50 of 100.
        let lfm = latent_fault_metric(&t, |r| {
            if r.failure_mode == "Short" {
                FailureImpact::IndirectViolation
            } else {
                FailureImpact::DirectViolation
            }
        });
        assert!((lfm - 0.5).abs() < 1e-12);
        // No IVF modes → perfect LFM.
        let lfm = latent_fault_metric(&t, |_| FailureImpact::DirectViolation);
        assert_eq!(lfm, 1.0);
    }
}
