//! Runtime monitor generation from SSAM models — the paper's *dynamic*
//! component facility ("the SSAM model … can also be easily converted to a
//! runtime monitoring algorithm", §IV-B6; future work item 4).
//!
//! Components declared `dynamic` contribute one check per IO node that has
//! admissible limits; the generated [`RuntimeMonitor`] evaluates streams of
//! runtime samples against those limits.

use serde::{Deserialize, Serialize};

use decisive_ssam::model::SsamModel;

/// One generated limit check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorCheck {
    /// Monitored component instance.
    pub component: String,
    /// Monitored IO node.
    pub io_node: String,
    /// Lower admissible limit.
    pub lower: Option<f64>,
    /// Upper admissible limit.
    pub upper: Option<f64>,
}

/// Which limit a sample violated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bound {
    /// The sample fell below the lower limit.
    Lower,
    /// The sample exceeded the upper limit.
    Upper,
}

/// A detected limit violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The violating component.
    pub component: String,
    /// The violating IO node.
    pub io_node: String,
    /// The observed value.
    pub value: f64,
    /// Which limit was violated.
    pub bound: Bound,
}

/// A runtime monitor generated from an SSAM model.
///
/// # Examples
///
/// ```
/// use decisive_core::{case_study, monitor::RuntimeMonitor};
///
/// let (model, _) = case_study::ssam_model();
/// let monitor = RuntimeMonitor::generate(&model);
/// assert!(!monitor.checks().is_empty());
/// // A healthy reading passes; a collapsed supply does not.
/// assert!(monitor.observe("CS1", "reading", 0.1).is_none());
/// assert!(monitor.observe("CS1", "reading", 0.0).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RuntimeMonitor {
    checks: Vec<MonitorCheck>,
}

impl RuntimeMonitor {
    /// Generates a monitor from every limited IO node of every component
    /// that is `dynamic` or whose *owner chain* contains a dynamic
    /// component.
    pub fn generate(model: &SsamModel) -> RuntimeMonitor {
        let mut checks = Vec::new();
        for (_, node) in model.io_nodes.iter() {
            if node.lower_limit.is_none() && node.upper_limit.is_none() {
                continue;
            }
            let owner = &model.components[node.owner];
            let dynamic_context = owner.dynamic || {
                // Walk up the containment chain.
                let mut cur = owner.parent;
                let mut found = false;
                while let Some(p) = cur {
                    if model.components[p].dynamic {
                        found = true;
                        break;
                    }
                    cur = model.components[p].parent;
                }
                found
            };
            if dynamic_context {
                checks.push(MonitorCheck {
                    component: owner.core.name.value().to_owned(),
                    io_node: node.core.name.value().to_owned(),
                    lower: node.lower_limit,
                    upper: node.upper_limit,
                });
            }
        }
        RuntimeMonitor { checks }
    }

    /// The generated checks.
    pub fn checks(&self) -> &[MonitorCheck] {
        &self.checks
    }

    /// Evaluates one sample; returns the violation if any check trips.
    /// Samples for unmonitored nodes pass silently.
    pub fn observe(&self, component: &str, io_node: &str, value: f64) -> Option<Violation> {
        let check =
            self.checks.iter().find(|c| c.component == component && c.io_node == io_node)?;
        if let Some(lo) = check.lower {
            if value < lo {
                return Some(Violation {
                    component: component.to_owned(),
                    io_node: io_node.to_owned(),
                    value,
                    bound: Bound::Lower,
                });
            }
        }
        if let Some(hi) = check.upper {
            if value > hi {
                return Some(Violation {
                    component: component.to_owned(),
                    io_node: io_node.to_owned(),
                    value,
                    bound: Bound::Upper,
                });
            }
        }
        None
    }

    /// Evaluates a stream of `(component, io_node, value)` samples,
    /// returning all violations in order.
    pub fn run_stream<'a>(
        &self,
        samples: impl IntoIterator<Item = (&'a str, &'a str, f64)>,
    ) -> Vec<Violation> {
        samples.into_iter().filter_map(|(c, n, v)| self.observe(c, n, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decisive_ssam::architecture::{Component, ComponentKind, IoDirection};

    fn model_with_limits(dynamic: bool) -> SsamModel {
        let mut model = SsamModel::new("m");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let c = model.add_child_component(top, Component::new("sensor", ComponentKind::Hardware));
        model.components[c].dynamic = dynamic;
        let node = model.add_io_node(c, "out", IoDirection::Output);
        model.io_nodes[node].lower_limit = Some(1.0);
        model.io_nodes[node].upper_limit = Some(2.0);
        model
    }

    #[test]
    fn only_dynamic_components_are_monitored() {
        let monitor = RuntimeMonitor::generate(&model_with_limits(false));
        assert!(monitor.checks().is_empty());
        let monitor = RuntimeMonitor::generate(&model_with_limits(true));
        assert_eq!(monitor.checks().len(), 1);
    }

    #[test]
    fn dynamic_flag_propagates_down_the_containment_chain() {
        let mut model = SsamModel::new("m");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        model.components[top].dynamic = true;
        let c = model.add_child_component(top, Component::new("child", ComponentKind::Hardware));
        let node = model.add_io_node(c, "out", IoDirection::Output);
        model.io_nodes[node].upper_limit = Some(5.0);
        let monitor = RuntimeMonitor::generate(&model);
        assert_eq!(monitor.checks().len(), 1, "dynamic container implies dynamic children");
    }

    #[test]
    fn observe_detects_both_bounds() {
        let monitor = RuntimeMonitor::generate(&model_with_limits(true));
        assert!(monitor.observe("sensor", "out", 1.5).is_none());
        assert_eq!(monitor.observe("sensor", "out", 0.5).unwrap().bound, Bound::Lower);
        assert_eq!(monitor.observe("sensor", "out", 2.5).unwrap().bound, Bound::Upper);
        assert!(monitor.observe("unknown", "out", 99.0).is_none());
    }

    #[test]
    fn stream_evaluation_collects_all_violations() {
        let monitor = RuntimeMonitor::generate(&model_with_limits(true));
        let violations = monitor.run_stream([
            ("sensor", "out", 1.2),
            ("sensor", "out", 0.2),
            ("sensor", "out", 1.9),
            ("sensor", "out", 3.0),
        ]);
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].bound, Bound::Lower);
        assert_eq!(violations[1].bound, Bound::Upper);
        assert_eq!(violations[1].value, 3.0);
    }

    #[test]
    fn nodes_without_limits_generate_no_checks() {
        let mut model = SsamModel::new("m");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let c = model.add_child_component(top, Component::new("c", ComponentKind::Hardware));
        model.components[c].dynamic = true;
        model.add_io_node(c, "free", IoDirection::Output);
        assert!(RuntimeMonitor::generate(&model).checks().is_empty());
    }
}
