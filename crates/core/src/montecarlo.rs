//! Monte-Carlo sampling over the reliability model — the stochastic
//! counterpart of the point-estimate pipeline.
//!
//! The paper's Table II states component FITs and failure-mode shares as
//! single numbers, but handbook failure rates are order-of-magnitude
//! estimates. Following Nagy et al.'s simulation-based safety assessment,
//! this module perturbs the [`ReliabilityDb`] per trial — lognormal noise
//! on each type's FIT, Dirichlet-style noise on its mode shares — so an
//! N-trial injection sweep yields a mean and 95 % confidence interval on
//! SPFM/LFM/PMHF instead of a point estimate.
//!
//! Determinism contract: every sampling decision is driven by a
//! [`StdRng`] seeded from [`mix`]`(master_seed, trial_index)`, and the
//! database is traversed in sorted type-key order. Trial *i* therefore
//! draws the same perturbed database no matter which scheduler worker
//! runs it, which thread count is configured, or whether the artifact
//! cache is warm — the report is bitwise identical across all of them.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use decisive_ssam::architecture::Fit;

use crate::fmea::FmeaTable;
use crate::metrics;
use crate::reliability::{ComponentReliability, ReliabilityDb};

/// Lognormal σ applied to each type's FIT: `FIT′ = FIT·exp(σ·z)`. At 0.25
/// the 95 % band spans roughly ±40 % of the nominal rate — the spread of
/// a handbook estimate, not a measured one.
pub const FIT_SIGMA: f64 = 0.25;

/// Lognormal σ applied to each mode share before renormalisation — the
/// Dirichlet-style perturbation of the share vector.
pub const SHARE_SIGMA: f64 = 0.25;

/// Default trial count when a request does not specify one.
pub const DEFAULT_TRIALS: usize = 128;

/// Derives the per-trial RNG seed from the campaign master seed — a
/// splitmix64-style finalizer, so neighbouring trial indices land in
/// unrelated parts of the stream. Trial identity, not worker identity,
/// decides the draw; this is what makes the report thread-count
/// independent.
pub fn mix(master_seed: u64, trial: u64) -> u64 {
    let mut z = master_seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One standard-normal draw via Box–Muller from two uniforms. The first
/// uniform is reflected into `(0, 1]` so the logarithm stays finite.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A multiplicative lognormal noise factor `exp(σ·z)`, always positive.
fn lognormal_factor<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    (sigma * standard_normal(rng)).exp()
}

/// Draws one perturbed copy of `db`: every type's FIT is scaled by a
/// lognormal factor and its mode shares are jittered multiplicatively,
/// then renormalised back to the type's original share sum (so a
/// deliberately partial allocation stays partial). Types are visited in
/// sorted key order, making the draw independent of `HashMap` iteration
/// order.
pub fn perturb<R: Rng>(db: &ReliabilityDb, rng: &mut R) -> ReliabilityDb {
    let mut entries: Vec<&ComponentReliability> = db.iter().collect();
    entries.sort_by(|a, b| a.type_key.cmp(&b.type_key));
    let mut out = ReliabilityDb::new();
    for entry in entries {
        let fit = entry.fit.value() * lognormal_factor(rng, FIT_SIGMA);
        let mut modes = entry.modes.clone();
        if modes.len() > 1 {
            let original: f64 = modes.iter().map(|m| m.distribution).sum();
            let weights: Vec<f64> =
                modes.iter().map(|m| m.distribution * lognormal_factor(rng, SHARE_SIGMA)).collect();
            let total: f64 = weights.iter().sum();
            if total > 0.0 && original > 0.0 {
                for (mode, w) in modes.iter_mut().zip(&weights) {
                    mode.distribution = w / total * original;
                }
            }
        }
        out.insert(ComponentReliability {
            type_key: entry.type_key.clone(),
            fit: Fit::new(fit),
            modes,
        });
    }
    out
}

/// The RNG for one trial, seeded from the campaign master seed and the
/// trial index only.
pub fn trial_rng(master_seed: u64, trial: usize) -> StdRng {
    StdRng::seed_from_u64(mix(master_seed, trial as u64))
}

/// The architecture metrics of one Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialMetrics {
    /// Single-point fault metric of the trial's FMEA table.
    pub spfm: f64,
    /// Latent fault metric.
    pub lfm: f64,
    /// Probabilistic metric for random hardware failures, per hour.
    pub pmhf: f64,
}

impl TrialMetrics {
    /// Reads the three metrics off a trial's FMEA table.
    pub fn of(table: &FmeaTable) -> TrialMetrics {
        TrialMetrics { spfm: table.spfm(), lfm: table.lfm(), pmhf: metrics::pmhf(table) }
    }
}

/// A mean with its 95 % confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiEstimate {
    /// Sample mean over the trials.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval: `1.96·s/√N` with the
    /// sample standard deviation `s`; `0` for fewer than two trials.
    pub half_width: f64,
}

impl CiEstimate {
    /// Estimates mean and 95 % half-width from per-trial samples,
    /// accumulating in slice order so the result is reproducible.
    pub fn from_samples(samples: &[f64]) -> CiEstimate {
        let n = samples.len();
        if n == 0 {
            return CiEstimate { mean: f64::NAN, half_width: f64::NAN };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return CiEstimate { mean, half_width: 0.0 };
        }
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64;
        CiEstimate { mean, half_width: 1.96 * (var / n as f64).sqrt() }
    }

    /// Lower bound of the interval.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }
}

/// The report of a Monte-Carlo campaign: interval estimates for the three
/// architecture metrics, plus enough identity (seed, trial count) to
/// reproduce it bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloReport {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Master seed the campaign was keyed on.
    pub seed: u64,
    /// SPFM interval estimate.
    pub spfm: CiEstimate,
    /// LFM interval estimate.
    pub lfm: CiEstimate,
    /// PMHF interval estimate (per hour).
    pub pmhf: CiEstimate,
}

impl MonteCarloReport {
    /// Aggregates per-trial metrics (in trial-index order) into interval
    /// estimates.
    pub fn from_trials(seed: u64, samples: &[TrialMetrics]) -> MonteCarloReport {
        let collect = |f: fn(&TrialMetrics) -> f64| {
            let values: Vec<f64> = samples.iter().map(f).collect();
            CiEstimate::from_samples(&values)
        };
        MonteCarloReport {
            trials: samples.len(),
            seed,
            spfm: collect(|t| t.spfm),
            lfm: collect(|t| t.lfm),
            pmhf: collect(|t| t.pmhf),
        }
    }

    /// Text rendering in the CLI's `# `-commented report style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# montecarlo: {} trial(s), seed {}", self.trials, self.seed);
        let _ = writeln!(
            out,
            "# SPFM {:6.2}% +/- {:.2}pp  [{:.2}%, {:.2}%] 95% CI",
            self.spfm.mean * 100.0,
            self.spfm.half_width * 100.0,
            self.spfm.lower() * 100.0,
            self.spfm.upper() * 100.0,
        );
        let _ = writeln!(
            out,
            "# LFM  {:6.2}% +/- {:.2}pp  [{:.2}%, {:.2}%] 95% CI",
            self.lfm.mean * 100.0,
            self.lfm.half_width * 100.0,
            self.lfm.lower() * 100.0,
            self.lfm.upper() * 100.0,
        );
        let _ = writeln!(
            out,
            "# PMHF {:.3e}/h +/- {:.1e}  [{:.3e}, {:.3e}] 95% CI",
            self.pmhf.mean,
            self.pmhf.half_width,
            self.pmhf.lower(),
            self.pmhf.upper(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_separates_neighbouring_trials() {
        let a = mix(42, 0);
        let b = mix(42, 1);
        assert_ne!(a, b);
        // Different master seeds diverge even on trial 0.
        assert_ne!(mix(42, 0), mix(43, 0));
        // And the map is deterministic.
        assert_eq!(mix(42, 7), mix(42, 7));
    }

    #[test]
    fn perturb_is_seed_deterministic_and_order_independent() {
        let db = ReliabilityDb::paper_table_ii();
        let a = perturb(&db, &mut trial_rng(7, 3));
        let b = perturb(&db, &mut trial_rng(7, 3));
        assert_eq!(a, b, "same seed, same draw");
        let c = perturb(&db, &mut trial_rng(7, 4));
        assert_ne!(a, c, "different trials draw differently");
    }

    #[test]
    fn perturb_preserves_share_budget_and_positivity() {
        let db = ReliabilityDb::paper_table_ii();
        for trial in 0..64 {
            let drawn = perturb(&db, &mut trial_rng(11, trial));
            for entry in drawn.iter() {
                assert!(entry.fit.value() > 0.0);
                let original: f64 =
                    db.get(&entry.type_key).unwrap().modes.iter().map(|m| m.distribution).sum();
                let sum: f64 = entry.modes.iter().map(|m| m.distribution).sum();
                assert!(
                    (sum - original).abs() < 1e-9,
                    "{}: share sum drifted {original} -> {sum}",
                    entry.type_key
                );
                for mode in &entry.modes {
                    assert!(mode.distribution > 0.0 && mode.distribution <= 1.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn fit_noise_is_centred_on_the_nominal_rate() {
        let db = ReliabilityDb::paper_table_ii();
        let nominal = db.get("Diode").unwrap().fit.value();
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|t| perturb(&db, &mut trial_rng(1, t)).get("Diode").unwrap().fit.value())
            .sum::<f64>()
            / n as f64;
        // Lognormal mean is nominal·exp(σ²/2) ≈ nominal·1.032 at σ=0.25.
        let expected = nominal * (FIT_SIGMA * FIT_SIGMA / 2.0).exp();
        assert!((mean - expected).abs() / expected < 0.05, "mean {mean}, expected ≈{expected}");
    }

    #[test]
    fn ci_estimate_shrinks_with_sample_count() {
        let draws: Vec<f64> = (0..1024)
            .map(|t| {
                let mut rng = trial_rng(5, t);
                standard_normal(&mut rng)
            })
            .collect();
        let small = CiEstimate::from_samples(&draws[..64]);
        let large = CiEstimate::from_samples(&draws);
        assert!(large.half_width < small.half_width);
        assert!(small.lower() <= small.mean && small.mean <= small.upper());
    }

    #[test]
    fn ci_estimate_edge_cases() {
        let empty = CiEstimate::from_samples(&[]);
        assert!(empty.mean.is_nan());
        let single = CiEstimate::from_samples(&[0.5]);
        assert_eq!(single.mean, 0.5);
        assert_eq!(single.half_width, 0.0);
    }

    #[test]
    fn report_aggregates_in_trial_order() {
        let samples = vec![
            TrialMetrics { spfm: 0.9, lfm: 0.8, pmhf: 1e-7 },
            TrialMetrics { spfm: 0.95, lfm: 0.85, pmhf: 2e-7 },
        ];
        let report = MonteCarloReport::from_trials(9, &samples);
        assert_eq!(report.trials, 2);
        assert_eq!(report.seed, 9);
        assert!((report.spfm.mean - 0.925).abs() < 1e-12);
        let again = MonteCarloReport::from_trials(9, &samples);
        assert_eq!(report, again, "aggregation is bitwise reproducible");
    }
}
