//! A small safety-pattern catalog and the recommendation step it feeds —
//! the "what mechanism do I add next?" half of the paper's
//! iterate-until-ASIL loop, à la Dantas et al.'s *Less Manual Work for
//! Safety Engineers*.
//!
//! Each [`SafetyPattern`] is an architectural tactic (comparison monitor,
//! redundant channel, watchdog, range check) with a typical diagnostic
//! coverage and engineering cost. [`catalog_for`] matches the patterns
//! against the failure modes an FMEA left uncovered, instantiating one
//! [`MechanismSpec`] candidate per applicable pairing; [`recommend`] then
//! scores deployments of those candidates with the existing Pareto search
//! and reports them ranked, with the projected metric deltas of each.

use serde::{Deserialize, Serialize};

use decisive_ssam::architecture::{Coverage, FailureNature};
use decisive_ssam::base::IntegrityLevel;

use crate::error::Result;
use crate::fmea::FmeaTable;
use crate::mechanism::search::{pareto_front, SearchOutcome};
use crate::mechanism::{MechanismCatalog, MechanismSpec};
use crate::metrics::{self, ArchitectureMetrics};

/// One entry of the safety-pattern catalog: an architectural tactic with
/// its typical diagnostic coverage, engineering cost, and an
/// applicability predicate over the failure mode it would guard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyPattern {
    /// Pattern name, used as the instantiated mechanism name.
    pub name: String,
    /// What the pattern does, for the recommendation table.
    pub description: String,
    /// Typical diagnostic coverage when deployed (ISO 26262-5 Annex D
    /// ballpark figures).
    pub coverage: Coverage,
    /// Engineering cost in hours, comparable across patterns.
    pub cost_hours: f64,
}

/// The failure natures a pattern can diagnose. Matching is by nature, the
/// one attribute every FMEA row carries regardless of which pass (graph
/// or injection) produced it.
fn applies(pattern_name: &str, nature: &FailureNature) -> bool {
    match pattern_name {
        // A comparison monitor cross-checks an output against an
        // independent computation — it sees wrong values, not silence.
        "Comparison monitor" => {
            matches!(nature, FailureNature::Erroneous | FailureNature::Degraded)
        }
        // A redundant channel takes over when the primary stops working,
        // and out-votes intermittent glitches.
        "Redundant channel" => matches!(
            nature,
            FailureNature::LossOfFunction | FailureNature::Intermittent | FailureNature::Other(_)
        ),
        // A watchdog catches a function that stops responding.
        "Watchdog" => {
            matches!(nature, FailureNature::LossOfFunction | FailureNature::Intermittent)
        }
        // A range check bounds a signal — it sees drift and spurious
        // activity as soon as they leave the plausible window.
        "Range check" => matches!(
            nature,
            FailureNature::Erroneous | FailureNature::Degraded | FailureNature::Commission
        ),
        _ => false,
    }
}

/// The built-in pattern catalog: the four tactics of Dantas et al.'s
/// running example, with Annex-D-flavoured coverage/cost figures.
pub fn builtin_patterns() -> Vec<SafetyPattern> {
    vec![
        SafetyPattern {
            name: "Comparison monitor".to_owned(),
            description: "cross-check the output against an independent computation".to_owned(),
            coverage: Coverage::new(0.99),
            cost_hours: 6.0,
        },
        SafetyPattern {
            name: "Redundant channel".to_owned(),
            description: "duplicate the element and switch over on failure".to_owned(),
            coverage: Coverage::new(0.99),
            cost_hours: 10.0,
        },
        SafetyPattern {
            name: "Watchdog".to_owned(),
            description: "supervise liveness with an independent timer".to_owned(),
            coverage: Coverage::new(0.90),
            cost_hours: 3.0,
        },
        SafetyPattern {
            name: "Range check".to_owned(),
            description: "bound the signal to its plausible window".to_owned(),
            coverage: Coverage::new(0.60),
            cost_hours: 1.0,
        },
    ]
}

/// `true` for a row the analysis left uncovered: safety-related, with no
/// deployed mechanism (or one providing no coverage).
pub fn is_uncovered(row: &crate::fmea::FmeaRow) -> bool {
    row.safety_related && (row.mechanism.is_none() || row.coverage == Coverage::NONE)
}

/// Builds a [`MechanismCatalog`] of candidate pattern instantiations for
/// every *uncovered* safety-related failure mode of `table`: each
/// applicable pattern becomes one catalog option keyed on the row's
/// component type and failure mode, ready for the Pareto search. Rows
/// without a type key cannot be matched and contribute nothing.
pub fn catalog_for(table: &FmeaTable) -> MechanismCatalog {
    let mut catalog = MechanismCatalog::new();
    let patterns = builtin_patterns();
    let mut seen: Vec<(String, String)> = Vec::new();
    for row in &table.rows {
        let Some(type_key) = row.type_key.as_deref() else {
            continue;
        };
        if !is_uncovered(row) {
            continue;
        }
        let slot = (type_key.to_owned(), row.failure_mode.clone());
        if seen.contains(&slot) {
            continue; // same (type, mode) on another instance: options already exist
        }
        seen.push(slot);
        for pattern in &patterns {
            if applies(&pattern.name, &row.nature) {
                catalog.push(MechanismSpec {
                    component_type: type_key.to_owned(),
                    failure_mode: row.failure_mode.clone(),
                    name: pattern.name.clone(),
                    coverage: pattern.coverage,
                    cost_hours: pattern.cost_hours,
                });
            }
        }
    }
    catalog
}

/// One pattern instantiation inside a recommended deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendedMechanism {
    /// Component instance to guard.
    pub component: String,
    /// Failure mode being covered.
    pub failure_mode: String,
    /// Pattern (mechanism) name.
    pub pattern: String,
    /// Diagnostic coverage of the instantiation.
    pub coverage: f64,
    /// Engineering cost in hours.
    pub cost_hours: f64,
}

/// One ranked recommendation: a Pareto-optimal deployment with its
/// projected architecture metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// 1-based rank (1 = highest projected SPFM).
    pub rank: usize,
    /// The pattern instantiations of this deployment.
    pub mechanisms: Vec<RecommendedMechanism>,
    /// Total engineering cost in hours.
    pub cost_hours: f64,
    /// Projected SPFM after deployment.
    pub projected_spfm: f64,
    /// Projected LFM after deployment.
    pub projected_lfm: f64,
    /// Projected PMHF (per hour) after deployment.
    pub projected_pmhf: f64,
    /// SPFM improvement over the undeployed table.
    pub spfm_delta: f64,
    /// ASIL grade the projected SPFM achieves.
    pub achieved_asil: IntegrityLevel,
}

/// The report of a recommendation pass: the baseline metrics, the
/// uncovered modes that drove the matching, and the ranked Pareto front
/// of candidate deployments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendationReport {
    /// System under analysis.
    pub system: String,
    /// Metrics of the table as analysed, before any recommendation.
    pub baseline: ArchitectureMetrics,
    /// Baseline PMHF (per hour).
    pub baseline_pmhf: f64,
    /// `component/failure-mode` labels of the uncovered rows.
    pub uncovered: Vec<String>,
    /// Pareto-ranked candidate deployments, best projected SPFM first.
    pub recommendations: Vec<Recommendation>,
}

impl RecommendationReport {
    /// The recommendations whose projected SPFM meets `target` (every
    /// recommendation, for a target without an SPFM requirement).
    pub fn meeting(&self, target: IntegrityLevel) -> impl Iterator<Item = &Recommendation> {
        let threshold = metrics::spfm_target(target).unwrap_or(0.0);
        self.recommendations.iter().filter(move |r| r.projected_spfm >= threshold)
    }

    /// Text rendering in the CLI's `# `-commented report style: the
    /// baseline, the uncovered modes that drove the matching, and one
    /// block per ranked recommendation.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# recommend: `{}` baseline SPFM {:.2}% ({}), PMHF {:.3e}/h",
            self.system,
            self.baseline.spfm * 100.0,
            self.baseline.achieved_asil,
            self.baseline_pmhf,
        );
        let _ = writeln!(
            out,
            "# {} uncovered failure mode(s): {}",
            self.uncovered.len(),
            if self.uncovered.is_empty() { "-".to_owned() } else { self.uncovered.join(", ") },
        );
        if self.recommendations.is_empty() {
            let _ = writeln!(out, "# no candidate deployments (nothing uncovered to guard)");
            return out;
        }
        for rec in &self.recommendations {
            let _ = writeln!(
                out,
                "# rank {}: SPFM {:.2}% ({}, {:+.2}pp), LFM {:.2}%, PMHF {:.3e}/h, {} h",
                rec.rank,
                rec.projected_spfm * 100.0,
                rec.achieved_asil,
                rec.spfm_delta * 100.0,
                rec.projected_lfm * 100.0,
                rec.projected_pmhf,
                rec.cost_hours,
            );
            for m in &rec.mechanisms {
                let _ = writeln!(
                    out,
                    "#   {} on {}/{} (coverage {:.2}, {} h)",
                    m.pattern, m.component, m.failure_mode, m.coverage, m.cost_hours,
                );
            }
        }
        out
    }
}

/// Runs the recommendation step on an analysed FMEA table: match the
/// pattern catalog against the uncovered modes, score candidate
/// deployments with the Pareto search, and rank them by projected SPFM
/// (ties broken by lower cost, which the front's cost ordering already
/// guarantees).
///
/// # Errors
///
/// Propagates [`pareto_front`] failures (an unsatisfiable search is not
/// one — an empty front simply yields no recommendations).
pub fn recommend(table: &FmeaTable) -> Result<RecommendationReport> {
    let catalog = catalog_for(table);
    let baseline = metrics::compute(table);
    let uncovered: Vec<String> = table
        .rows
        .iter()
        .filter(|r| is_uncovered(r))
        .map(|r| format!("{}/{}", r.component, r.failure_mode))
        .collect();
    let front: Vec<SearchOutcome> = pareto_front(table, &catalog)?;
    let mut recommendations: Vec<Recommendation> = front
        .into_iter()
        .filter(|outcome| !outcome.deployment.is_empty())
        .map(|outcome| {
            let projected = table.with_deployment(&outcome.deployment);
            let mut mechanisms: Vec<RecommendedMechanism> = outcome
                .deployment
                .iter()
                .map(|((component, mode), mech)| RecommendedMechanism {
                    component: component.clone(),
                    failure_mode: mode.clone(),
                    pattern: mech.name.clone(),
                    coverage: mech.coverage.value(),
                    cost_hours: mech.cost_hours,
                })
                .collect();
            // Deployment iteration order is unspecified; sort so the
            // report (and anything keyed on it) is reproducible.
            mechanisms.sort_by(|a, b| {
                (&a.component, &a.failure_mode).cmp(&(&b.component, &b.failure_mode))
            });
            Recommendation {
                rank: 0,
                mechanisms,
                cost_hours: outcome.cost,
                projected_spfm: outcome.spfm,
                projected_lfm: projected.lfm(),
                projected_pmhf: metrics::pmhf(&projected),
                spfm_delta: outcome.spfm - baseline.spfm,
                achieved_asil: metrics::achieved_asil(outcome.spfm),
            }
        })
        .collect();
    recommendations.sort_by(|a, b| b.projected_spfm.total_cmp(&a.projected_spfm));
    for (i, rec) in recommendations.iter_mut().enumerate() {
        rec.rank = i + 1;
    }
    Ok(RecommendationReport {
        system: table.system.clone(),
        baseline,
        baseline_pmhf: metrics::pmhf(table),
        uncovered,
        recommendations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmea::injection::{self, InjectionConfig};
    use crate::mechanism::Deployment;
    use crate::reliability::ReliabilityDb;
    use decisive_blocks::gallery;

    fn case_study_table() -> FmeaTable {
        let (diagram, _) = gallery::sensor_power_supply();
        injection::run(&diagram, &ReliabilityDb::paper_table_ii(), &InjectionConfig::default())
            .unwrap()
    }

    #[test]
    fn catalog_matches_only_uncovered_safety_related_modes() {
        let table = case_study_table();
        let catalog = catalog_for(&table);
        // D1/Open (loss) gets redundancy + watchdog; no options for the
        // masked C1/C2 modes.
        assert!(catalog.options_for("Diode", "Open").count() >= 2);
        assert_eq!(catalog.options_for("Capacitor", "Open").count(), 0);
        assert_eq!(catalog.options_for("Capacitor", "Short").count(), 0);
    }

    #[test]
    fn nature_applicability() {
        assert!(applies("Watchdog", &FailureNature::LossOfFunction));
        assert!(!applies("Watchdog", &FailureNature::Erroneous));
        assert!(applies("Comparison monitor", &FailureNature::Erroneous));
        assert!(!applies("Comparison monitor", &FailureNature::LossOfFunction));
        assert!(applies("Range check", &FailureNature::Degraded));
        assert!(applies("Redundant channel", &FailureNature::Other("jitter".into())));
    }

    #[test]
    fn recommendation_reaches_asil_b_on_the_case_study() {
        let table = case_study_table();
        let report = recommend(&table).unwrap();
        assert!(!report.uncovered.is_empty());
        assert!(!report.recommendations.is_empty());
        // Ranked best-first with contiguous ranks.
        for (i, rec) in report.recommendations.iter().enumerate() {
            assert_eq!(rec.rank, i + 1);
            if i > 0 {
                assert!(rec.projected_spfm <= report.recommendations[i - 1].projected_spfm);
            }
            assert!(rec.spfm_delta >= 0.0);
        }
        // At least one deployment meets ASIL B, and applying it to the
        // table reproduces the projected SPFM.
        let best = report.meeting(IntegrityLevel::AsilB).next().expect("an ASIL-B deployment");
        assert!(best.projected_spfm >= metrics::spfm_target(IntegrityLevel::AsilB).unwrap());
        let mut deployment = Deployment::new();
        for m in &best.mechanisms {
            deployment.deploy(
                &m.component,
                &m.failure_mode,
                crate::mechanism::DeployedMechanism {
                    name: m.pattern.clone(),
                    coverage: Coverage::new(m.coverage),
                    cost_hours: m.cost_hours,
                },
            );
        }
        let applied = table.with_deployment(&deployment);
        assert!((applied.spfm() - best.projected_spfm).abs() < 1e-12);
    }

    #[test]
    fn fully_covered_table_yields_no_recommendations() {
        let mut table = case_study_table();
        for row in &mut table.rows {
            if row.safety_related {
                row.mechanism = Some("ECC".to_owned());
                row.coverage = Coverage::new(0.99);
            }
        }
        let report = recommend(&table).unwrap();
        assert!(report.uncovered.is_empty());
        assert!(report.recommendations.is_empty());
    }
}
