//! Persistence of toolchain artefacts through the federation layer.
//!
//! SSAM models, FME(D)A tables and safety concepts serialise losslessly to
//! JSON via the serde ↔ `Value` bridge, making every artefact a federated
//! model: storable, diffable, and queryable with EQL (the paper's vision of
//! artefacts that downstream assurance tooling can re-check, §V-C).

use std::path::Path;

use decisive_federation::{json, serde_bridge, Value};
use decisive_ssam::model::SsamModel;

use crate::error::{CoreError, Result};
use crate::fmea::FmeaTable;
use crate::process::SafetyConcept;

fn io_error(path: &Path, e: std::io::Error) -> CoreError {
    CoreError::Federation(decisive_federation::FederationError::Load {
        location: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Serialises any artefact to a federation [`Value`].
///
/// # Errors
///
/// Returns [`CoreError::Federation`] for unsupported shapes.
pub fn artefact_to_value<T: serde::Serialize>(artefact: &T) -> Result<Value> {
    Ok(serde_bridge::to_value(artefact)?)
}

/// Reconstructs an artefact from a federation [`Value`].
///
/// # Errors
///
/// Returns [`CoreError::Federation`] when the value does not match.
pub fn artefact_from_value<'de, T: serde::Deserialize<'de>>(value: &'de Value) -> Result<T> {
    Ok(serde_bridge::from_value(value)?)
}

/// Saves an SSAM model as JSON. Pass `&mut f` if the writer is reused.
///
/// # Errors
///
/// Returns [`CoreError::Federation`] on serialization or I/O failure.
pub fn save_model(model: &SsamModel, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let value = artefact_to_value(model)?;
    std::fs::write(path, json::to_string(&value)).map_err(|e| io_error(path, e))
}

/// Loads an SSAM model saved by [`save_model`].
///
/// # Errors
///
/// Returns [`CoreError::Federation`] on I/O, parse or shape mismatch.
pub fn load_model(path: impl AsRef<Path>) -> Result<SsamModel> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| io_error(path, e))?;
    let value = json::parse(&text)?;
    artefact_from_value(&value)
}

/// Saves an FME(D)A table as JSON.
///
/// # Errors
///
/// Returns [`CoreError::Federation`] on serialization or I/O failure.
pub fn save_table(table: &FmeaTable, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let value = artefact_to_value(table)?;
    std::fs::write(path, json::to_string(&value)).map_err(|e| io_error(path, e))
}

/// Loads an FME(D)A table saved by [`save_table`].
///
/// # Errors
///
/// Returns [`CoreError::Federation`] on I/O, parse or shape mismatch.
pub fn load_table(path: impl AsRef<Path>) -> Result<FmeaTable> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| io_error(path, e))?;
    let value = json::parse(&text)?;
    artefact_from_value(&value)
}

/// Saves a safety concept as JSON.
///
/// # Errors
///
/// Returns [`CoreError::Federation`] on serialization or I/O failure.
pub fn save_concept(concept: &SafetyConcept, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let value = artefact_to_value(concept)?;
    std::fs::write(path, json::to_string(&value)).map_err(|e| io_error(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;
    use crate::fmea::graph::{self, GraphConfig};

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("decisive_persist_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn ssam_model_roundtrips_through_json() {
        let (model, top) = case_study::ssam_model();
        let path = temp_path("model");
        save_model(&model, &path).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(back, model);
        // The reloaded model analyses identically.
        let a = graph::run(&model, top, &GraphConfig::default()).unwrap();
        let b = graph::run(&back, top, &GraphConfig::default()).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fmea_table_roundtrips_through_json() {
        let (model, top) = case_study::ssam_model();
        let table = graph::run(&model, top, &GraphConfig::default()).unwrap();
        let path = temp_path("table");
        save_table(&table, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.spfm(), table.spfm());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn persisted_models_are_queryable_with_eql() {
        let (model, _) = case_study::ssam_model();
        let value = artefact_to_value(&model).unwrap();
        let fits = decisive_federation::eql::eval_str(
            "model.components.select(c | c.fit.isDefined()).collect(c | c.fit).sum()",
            &value,
        )
        .unwrap();
        assert_eq!(fits.as_f64(), Some(329.0), "10 + 15 + 2 + 2 + 300");
    }

    #[test]
    fn missing_file_reports_location() {
        let err = load_model("/definitely/not/here.json").unwrap_err();
        assert!(err.to_string().contains("not/here.json"));
    }
}
