//! The DECISIVE process driver — the five-step iterative methodology of
//! Fig. 1, with Steps 3–4 automated:
//!
//! 1. plan the system (definition + HARA),
//! 2. design it (block diagram or SSAM model),
//! 3. aggregate reliability data,
//! 4. evaluate (automated FME(D)A) and refine (automated safety-mechanism
//!    deployment), iterating until the target integrity level is met,
//! 5. synthesise the safety concept.

use serde::{Deserialize, Serialize};

use decisive_blocks::BlockDiagram;
use decisive_hara::HazardLog;
use decisive_ssam::architecture::Component;
use decisive_ssam::base::IntegrityLevel;
use decisive_ssam::id::Idx;
use decisive_ssam::model::SsamModel;

use crate::error::{CoreError, Result};
use crate::fmea::{graph, injection, FmeaTable};
use crate::mechanism::{search, Deployment, MechanismCatalog};
use crate::metrics;
use crate::reliability::ReliabilityDb;

/// DECISIVE Step 1's development artefact: the system definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemDefinition {
    /// System name.
    pub name: String,
    /// What the system does.
    pub description: String,
    /// System boundaries.
    pub boundaries: Vec<String>,
    /// Running environment.
    pub environment: String,
}

impl SystemDefinition {
    /// Creates a minimal definition.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        SystemDefinition {
            name: name.into(),
            description: description.into(),
            boundaries: Vec::new(),
            environment: String::new(),
        }
    }
}

/// The system design under analysis — either of SAME's two paths
/// (Fig. 10): a block-diagram ("Simulink") model analysed by fault
/// injection, or an SSAM model analysed by the graph algorithm.
// The diagram variant is by far the larger, but `DesignModel` values are
// created once per process run, never stored in bulk — boxing would only
// add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum DesignModel {
    /// A block-diagram design (analysed via fault injection).
    Diagram(BlockDiagram),
    /// An SSAM design (analysed via Algorithm 1).
    Ssam {
        /// The model.
        model: SsamModel,
        /// Its top-level component.
        top: Idx<Component>,
    },
}

/// One recorded pass through Steps 4a/4b.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub number: usize,
    /// SPFM at evaluation time.
    pub spfm: f64,
    /// The ASIL the SPFM corresponds to.
    pub achieved: IntegrityLevel,
    /// Mechanisms deployed when evaluated.
    pub mechanisms_deployed: usize,
    /// Cumulative deployment cost in engineering hours.
    pub deployment_cost: f64,
}

/// One allocation of the synthesised safety concept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyAllocation {
    /// Component instance.
    pub component: String,
    /// Covered failure mode.
    pub failure_mode: String,
    /// Deployed mechanism.
    pub mechanism: String,
    /// Diagnostic coverage.
    pub coverage: f64,
}

/// DECISIVE Step 5's artefact: the safety concept — "all relevant safety
/// requirements and their allocation to functions and components".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyConcept {
    /// The system the concept covers.
    pub system: String,
    /// Target integrity level.
    pub target: IntegrityLevel,
    /// Final SPFM.
    pub spfm: f64,
    /// Safety goals from the hazard log.
    pub safety_goals: Vec<String>,
    /// Mechanism allocations.
    pub allocations: Vec<SafetyAllocation>,
    /// Iteration history that led here.
    pub iterations: Vec<IterationRecord>,
}

/// The iterative DECISIVE process state.
///
/// # Examples
///
/// Run the paper's case study end to end (Steps 1–5):
///
/// ```
/// use decisive_core::process::{DecisiveProcess, DesignModel, SystemDefinition};
/// use decisive_core::{case_study, mechanism::MechanismCatalog, reliability::ReliabilityDb};
/// use decisive_ssam::base::IntegrityLevel;
///
/// # fn main() -> Result<(), decisive_core::CoreError> {
/// let (diagram, _) = decisive_blocks::gallery::sensor_power_supply();
/// let mut process = DecisiveProcess::new(
///     SystemDefinition::new("power-supply", "proximity sensor supply"),
///     case_study::hazard_log(),
///     DesignModel::Diagram(diagram),
/// )
/// .with_reliability(ReliabilityDb::paper_table_ii())
/// .with_catalog(MechanismCatalog::paper_table_iii());
/// let concept = process.run_to_target(10)?;
/// assert_eq!(concept.target, IntegrityLevel::AsilB);
/// assert!(concept.spfm >= 0.90);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DecisiveProcess {
    definition: SystemDefinition,
    hazard_log: HazardLog,
    design: DesignModel,
    reliability: ReliabilityDb,
    catalog: MechanismCatalog,
    target: IntegrityLevel,
    deployment: Deployment,
    iterations: Vec<IterationRecord>,
}

impl DecisiveProcess {
    /// Step 1 + 2: creates a process from the planning artefacts and the
    /// design. The target integrity level defaults to the hazard log's
    /// highest ASIL (or QM for an empty log).
    pub fn new(definition: SystemDefinition, hazard_log: HazardLog, design: DesignModel) -> Self {
        let target = hazard_log.highest_asil().unwrap_or(IntegrityLevel::Qm);
        DecisiveProcess {
            definition,
            hazard_log,
            design,
            reliability: ReliabilityDb::new(),
            catalog: MechanismCatalog::new(),
            target,
            deployment: Deployment::new(),
            iterations: Vec::new(),
        }
    }

    /// Step 3: attaches the reliability model (builder style).
    #[must_use]
    pub fn with_reliability(mut self, reliability: ReliabilityDb) -> Self {
        self.reliability = reliability;
        self
    }

    /// Step 4b input: attaches the safety mechanism catalog (builder style).
    #[must_use]
    pub fn with_catalog(mut self, catalog: MechanismCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Overrides the target integrity level (builder style).
    #[must_use]
    pub fn with_target(mut self, target: IntegrityLevel) -> Self {
        self.target = target;
        self
    }

    /// The current target integrity level.
    pub fn target(&self) -> IntegrityLevel {
        self.target
    }

    /// The system definition.
    pub fn definition(&self) -> &SystemDefinition {
        &self.definition
    }

    /// The iteration history so far.
    pub fn iterations(&self) -> &[IterationRecord] {
        &self.iterations
    }

    /// The currently explored deployment (Step 4b state).
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Step 4a: evaluates the design with the current deployment applied,
    /// producing the component safety analysis model.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (lowering, simulation, path analysis).
    pub fn evaluate(&self) -> Result<FmeaTable> {
        let base = match &self.design {
            DesignModel::Diagram(diagram) => {
                injection::run(diagram, &self.reliability, &injection::InjectionConfig::default())?
            }
            DesignModel::Ssam { model, top } => {
                // Make sure Step 3 data is present even if the caller built
                // the SSAM model without reliability annotations.
                let mut model = model.clone();
                self.reliability.aggregate_into(&mut model);
                graph::run(&model, *top, &graph::GraphConfig::default())?
            }
        };
        Ok(base.with_deployment(&self.deployment))
    }

    /// One iteration of Steps 4a/4b: evaluate; if the target is unmet,
    /// search the catalog for a deployment meeting it. Returns the record
    /// of the evaluation that ran.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn iterate(&mut self) -> Result<IterationRecord> {
        let table = self.evaluate()?;
        let m = metrics::compute(&table);
        let record = IterationRecord {
            number: self.iterations.len() + 1,
            spfm: m.spfm,
            achieved: m.achieved_asil,
            mechanisms_deployed: self.deployment.len(),
            deployment_cost: self.deployment.total_cost(),
        };
        self.iterations.push(record.clone());
        if !metrics::meets_target(&table, self.target) {
            // Step 4b: automated mechanism deployment (greedy, like SAME's
            // automated search; use `search::exhaustive` directly for the
            // provably cheapest deployment).
            let target = metrics::spfm_target(self.target).unwrap_or(0.0);
            let base = table.with_deployment(&Deployment::new());
            let found = search::greedy(&base, &self.catalog, target)
                .unwrap_or_else(|| search::greedy_best_effort(&base, &self.catalog));
            self.deployment = found.deployment;
        }
        Ok(record)
    }

    /// Runs iterations until the target holds, then synthesises the safety
    /// concept (Step 5).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TargetNotReached`] when `max_iterations` passes
    /// do not reach the target.
    pub fn run_to_target(&mut self, max_iterations: usize) -> Result<SafetyConcept> {
        let mut best = 0.0f64;
        for _ in 0..max_iterations {
            let record = self.iterate()?;
            best = best.max(record.spfm);
            let target_spfm = metrics::spfm_target(self.target).unwrap_or(0.0);
            if record.spfm >= target_spfm {
                return Ok(self.synthesise_concept(record.spfm));
            }
        }
        Err(CoreError::TargetNotReached {
            iterations: max_iterations,
            best_spfm: best,
            target_spfm: metrics::spfm_target(self.target).unwrap_or(0.0),
        })
    }

    /// Step 5: synthesises the safety concept from the current state.
    fn synthesise_concept(&self, spfm: f64) -> SafetyConcept {
        let mut allocations: Vec<SafetyAllocation> = self
            .deployment
            .iter()
            .map(|((component, failure_mode), mech)| SafetyAllocation {
                component: component.clone(),
                failure_mode: failure_mode.clone(),
                mechanism: mech.name.clone(),
                coverage: mech.coverage.value(),
            })
            .collect();
        allocations.sort_by(|a, b| {
            (a.component.clone(), a.failure_mode.clone())
                .cmp(&(b.component.clone(), b.failure_mode.clone()))
        });
        SafetyConcept {
            system: self.definition.name.clone(),
            target: self.target,
            spfm,
            safety_goals: self.hazard_log.events().iter().map(|e| e.safety_goal.clone()).collect(),
            allocations,
            iterations: self.iterations.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    fn diagram_process() -> DecisiveProcess {
        let (diagram, _) = decisive_blocks::gallery::sensor_power_supply();
        DecisiveProcess::new(
            SystemDefinition::new("power-supply", "sensor supply"),
            case_study::hazard_log(),
            DesignModel::Diagram(diagram),
        )
        .with_reliability(ReliabilityDb::paper_table_ii())
        .with_catalog(MechanismCatalog::paper_table_iii())
    }

    fn ssam_process() -> DecisiveProcess {
        let (model, top) = case_study::ssam_model();
        DecisiveProcess::new(
            SystemDefinition::new("power-supply", "sensor supply"),
            case_study::hazard_log(),
            DesignModel::Ssam { model, top },
        )
        .with_reliability(ReliabilityDb::paper_table_ii())
        .with_catalog(MechanismCatalog::paper_table_iii())
    }

    #[test]
    fn target_defaults_to_hara_outcome() {
        let p = diagram_process();
        assert_eq!(p.target(), IntegrityLevel::AsilB);
    }

    /// The full paper narrative: iteration 1 measures 5.38 %, deploys ECC,
    /// iteration 2 measures 96.77 % and meets ASIL-B — on both paths.
    #[test]
    fn case_study_converges_in_two_iterations_on_both_paths() {
        for mut p in [diagram_process(), ssam_process()] {
            let concept = p.run_to_target(10).unwrap();
            assert_eq!(concept.iterations.len(), 2);
            assert!((concept.iterations[0].spfm - 0.0538).abs() < 5e-4);
            assert!((concept.spfm - 0.9677).abs() < 5e-5);
            assert_eq!(concept.allocations.len(), 1);
            assert_eq!(concept.allocations[0].mechanism, "ECC");
            assert_eq!(concept.allocations[0].component, "MC1");
            assert_eq!(concept.target, IntegrityLevel::AsilB);
            assert_eq!(concept.safety_goals.len(), 1);
        }
    }

    #[test]
    fn unreachable_target_reports_best_effort() {
        let mut p = diagram_process().with_target(IntegrityLevel::AsilD);
        let err = p.run_to_target(3).unwrap_err();
        match err {
            CoreError::TargetNotReached { iterations, best_spfm, target_spfm } => {
                assert_eq!(iterations, 3);
                assert!(best_spfm > 0.9 && best_spfm < 0.99);
                assert_eq!(target_spfm, 0.99);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn evaluate_is_side_effect_free() {
        let p = diagram_process();
        let a = p.evaluate().unwrap();
        let b = p.evaluate().unwrap();
        assert_eq!(a, b);
        assert!(p.iterations().is_empty());
        assert!(p.deployment().is_empty());
    }

    #[test]
    fn iteration_records_accumulate() {
        let mut p = ssam_process();
        let r1 = p.iterate().unwrap();
        assert_eq!(r1.number, 1);
        assert_eq!(r1.mechanisms_deployed, 0);
        let r2 = p.iterate().unwrap();
        assert_eq!(r2.number, 2);
        assert_eq!(r2.mechanisms_deployed, 1);
        assert!((r2.deployment_cost - 2.0).abs() < 1e-12);
        assert_eq!(p.iterations().len(), 2);
    }

    #[test]
    fn qm_target_is_trivially_met() {
        let mut p = diagram_process().with_target(IntegrityLevel::Qm);
        let concept = p.run_to_target(1).unwrap();
        assert_eq!(concept.iterations.len(), 1);
        assert!(concept.allocations.is_empty());
    }
}
