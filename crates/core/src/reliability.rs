//! The component reliability model — DECISIVE Step 3's input ("reliability
//! data related to each component … is aggregated into the system design").
//!
//! Reliability data is keyed by component *type* (Table II: Diode,
//! Capacitor, Inductor, MC) and carries the FIT and the failure-mode
//! probability distribution. It can be built programmatically, parsed from
//! CSV (the paper's Excel spreadsheet), or pulled through the federation
//! layer from any registered model technology.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use decisive_federation::{FederationDiagnostic, Value};
use decisive_ssam::architecture::{FailureNature, Fit};
use decisive_ssam::model::SsamModel;

use crate::error::{CoreError, Result};

/// Outcome of a lenient reliability load: the database built from every
/// usable row, provenance warnings for each substituted field, and
/// diagnostics for rows (or document-level defects) that had to be
/// dropped entirely.
#[derive(Debug, Clone, Default)]
pub struct LenientReliabilityLoad {
    /// The database built from the usable rows.
    pub db: ReliabilityDb,
    /// One provenance warning per substituted field, e.g. `` row 3
    /// (Diode): FIT missing or non-numeric — substituted MIL-HDBK-338B
    /// default 10 FIT ``. These feed
    /// [`DegradedModeReport::substituted_fits`](crate::degraded::DegradedModeReport).
    pub substitutions: Vec<String>,
    /// One diagnostic per unusable row (no identifiable `Component`) or
    /// document-level defect.
    pub diagnostics: Vec<FederationDiagnostic>,
}

impl LenientReliabilityLoad {
    /// `true` when every row loaded verbatim.
    pub fn is_clean(&self) -> bool {
        self.substitutions.is_empty() && self.diagnostics.is_empty()
    }
}

/// A generic-part base failure rate in FIT for a component type, in the
/// spirit of MIL-HDBK-338B's generic part tables — the conservative
/// fallback when a reliability source has no usable FIT for a type.
/// Matching is by substring on the lowercased type key; unknown types get
/// a deliberately pessimistic 50 FIT.
pub fn mil_hdbk_338b_default_fit(type_key: &str) -> f64 {
    let key = type_key.to_ascii_lowercase();
    if key.contains("diode") {
        10.0
    } else if key.contains("capacitor") {
        2.0
    } else if key.contains("inductor") || key.contains("coil") || key.contains("transformer") {
        15.0
    } else if key.contains("resistor") {
        1.0
    } else if key.contains("transistor") || key.contains("mosfet") || key.contains("igbt") {
        20.0
    } else if key == "mc"
        || key.contains("micro")
        || key.contains("controller")
        || key.contains("processor")
    {
        300.0
    } else if key.contains("ic") || key.contains("integrated") {
        100.0
    } else {
        50.0
    }
}

/// Slack allowed when checking that a type's distribution shares sum to at
/// most 1.0 — absorbs decimal rounding in hand-written tables (e.g. thirds
/// entered as 0.333/0.333/0.334) without letting real over-allocation pass.
const SHARE_SUM_TOLERANCE: f64 = 1e-9;

/// One failure mode of a component type with its probability share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModeSpec {
    /// Mode name (Table II `Failure_Mode`): `"Open"`, `"Short"`, ….
    pub name: String,
    /// Failure nature, driving the graph-based FMEA (Algorithm 1).
    pub nature: FailureNature,
    /// Share of the type's FIT in `[0, 1]` (Table II `Distribution`).
    pub distribution: f64,
}

/// Reliability data for one component type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentReliability {
    /// The type key (Table II `Component`).
    pub type_key: String,
    /// Base failure rate.
    pub fit: Fit,
    /// Failure modes with their distribution.
    pub modes: Vec<FailureModeSpec>,
}

/// A reliability database keyed by component type.
///
/// # Examples
///
/// ```
/// use decisive_core::reliability::ReliabilityDb;
///
/// # fn main() -> Result<(), decisive_core::CoreError> {
/// let db = ReliabilityDb::from_csv_str(
///     "Component,FIT,Failure_Mode,Distribution\n\
///      Diode,10,Open,0.3\n\
///      Diode,10,Short,0.7\n",
/// )?;
/// assert_eq!(db.get("Diode").unwrap().fit.value(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReliabilityDb {
    entries: HashMap<String, ComponentReliability>,
}

impl ReliabilityDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ReliabilityDb::default()
    }

    /// Inserts (or replaces) an entry, returning the previous one if any.
    pub fn insert(&mut self, entry: ComponentReliability) -> Option<ComponentReliability> {
        self.entries.insert(entry.type_key.clone(), entry)
    }

    /// Looks up reliability data for a component type.
    pub fn get(&self, type_key: &str) -> Option<&ComponentReliability> {
        self.entries.get(type_key)
    }

    /// Number of component types covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &ComponentReliability> {
        self.entries.values()
    }

    /// Builds a database from a federated model value shaped like Table II:
    /// a list of records with `Component`, `FIT`, `Failure_Mode` and
    /// `Distribution` fields (an optional `Nature` field overrides the
    /// heuristic nature inference).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for rows missing required
    /// fields or with out-of-range distributions.
    pub fn from_value(rows: &Value) -> Result<ReliabilityDb> {
        let items = rows.as_list().ok_or_else(|| CoreError::InvalidParameter {
            message: format!("reliability model must be a list of rows, got {}", rows.type_name()),
        })?;
        let mut db = ReliabilityDb::new();
        for (i, row) in items.iter().enumerate() {
            let field = |name: &str| {
                row.get(name).ok_or_else(|| CoreError::InvalidParameter {
                    message: format!("reliability row {i} is missing `{name}`"),
                })
            };
            let type_key = field("Component")?
                .as_str()
                .ok_or_else(|| CoreError::InvalidParameter {
                    message: format!("reliability row {i}: `Component` must be a string"),
                })?
                .to_owned();
            let fit_value = field("FIT")?.as_f64().ok_or_else(|| CoreError::InvalidParameter {
                message: format!("reliability row {i}: `FIT` must be numeric"),
            })?;
            if !(fit_value.is_finite() && fit_value >= 0.0) {
                return Err(CoreError::InvalidParameter {
                    message: format!("reliability row {i}: FIT {fit_value} out of range"),
                });
            }
            let mode_name = field("Failure_Mode")?
                .as_str()
                .ok_or_else(|| CoreError::InvalidParameter {
                    message: format!("reliability row {i}: `Failure_Mode` must be a string"),
                })?
                .to_owned();
            let distribution =
                field("Distribution")?.as_f64().ok_or_else(|| CoreError::InvalidParameter {
                    message: format!("reliability row {i}: `Distribution` must be numeric"),
                })?;
            if !(0.0..=1.0).contains(&distribution) {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "reliability row {i}: distribution {distribution} outside [0, 1]"
                    ),
                });
            }
            let nature = match row.get("Nature").and_then(Value::as_str) {
                Some(n) => nature_from_str(n),
                None => infer_nature(&mode_name),
            };
            let entry = db.entries.entry(type_key.clone()).or_insert_with(|| {
                ComponentReliability { type_key, fit: Fit::new(fit_value), modes: Vec::new() }
            });
            entry.modes.push(FailureModeSpec { name: mode_name, nature, distribution });
        }
        for entry in db.entries.values() {
            let share_sum: f64 = entry.modes.iter().map(|m| m.distribution).sum();
            if share_sum > 1.0 + SHARE_SUM_TOLERANCE {
                return Err(CoreError::InvalidParameter {
                    message: format!(
                        "reliability type `{}`: failure-mode distribution shares sum to \
                         {share_sum} — a component cannot spend more than its whole FIT budget",
                        entry.type_key
                    ),
                });
            }
        }
        Ok(db)
    }

    /// Parses a Table II-shaped CSV document.
    ///
    /// # Errors
    ///
    /// Propagates CSV parse errors and the validation errors of
    /// [`ReliabilityDb::from_value`].
    pub fn from_csv_str(text: &str) -> Result<ReliabilityDb> {
        let rows = decisive_federation::csv::parse(text)?;
        ReliabilityDb::from_value(&rows)
    }

    /// Builds a database from a Table II-shaped value without aborting on
    /// bad rows — the degraded-mode counterpart of
    /// [`ReliabilityDb::from_value`].
    ///
    /// Rows whose `Component` is missing or not a string cannot be keyed
    /// and are dropped with one diagnostic each. For rows with a usable
    /// key, malformed fields are substituted conservatively, with one
    /// provenance warning per substitution:
    ///
    /// * a missing, non-numeric or out-of-range `FIT` becomes the
    ///   [`mil_hdbk_338b_default_fit`] for the type;
    /// * a missing `Failure_Mode` becomes `"Unspecified"` (loss of
    ///   function);
    /// * a missing or non-numeric `Distribution` becomes `1.0`, and a
    ///   finite out-of-range one is clamped into `[0, 1]`.
    ///
    /// `source` labels the diagnostics (a file path or driver location).
    pub fn from_value_lenient(rows: &Value, source: &str) -> LenientReliabilityLoad {
        let mut out = LenientReliabilityLoad::default();
        let Some(items) = rows.as_list() else {
            out.diagnostics.push(FederationDiagnostic::malformed(
                source,
                0,
                format!("reliability model must be a list of rows, got {}", rows.type_name()),
            ));
            return out;
        };
        for (i, row) in items.iter().enumerate() {
            // Header + 1-based data rows, matching CSV line numbering.
            let line = i + 2;
            let Some(type_key) = row.get("Component").and_then(Value::as_str) else {
                out.diagnostics.push(FederationDiagnostic::malformed(
                    source,
                    line,
                    format!(
                        "reliability row {i}: `Component` missing or not a string; row dropped"
                    ),
                ));
                continue;
            };
            let type_key = type_key.to_owned();
            let fit_value = match row.get("FIT").and_then(Value::as_f64) {
                Some(v) if v.is_finite() && v >= 0.0 => v,
                got => {
                    let default = mil_hdbk_338b_default_fit(&type_key);
                    let defect = match got {
                        Some(v) => format!("FIT {v} out of range"),
                        None => "FIT missing or non-numeric".to_owned(),
                    };
                    out.substitutions.push(format!(
                        "row {i} ({type_key}): {defect} — substituted MIL-HDBK-338B default {default} FIT"
                    ));
                    default
                }
            };
            let mode_name = match row.get("Failure_Mode").and_then(Value::as_str) {
                Some(m) => m.to_owned(),
                None => {
                    out.substitutions.push(format!(
                        "row {i} ({type_key}): `Failure_Mode` missing — substituted `Unspecified` (loss of function)"
                    ));
                    "Unspecified".to_owned()
                }
            };
            let distribution = match row.get("Distribution").and_then(Value::as_f64) {
                Some(d) if (0.0..=1.0).contains(&d) => d,
                Some(d) if d.is_finite() => {
                    let clamped = d.clamp(0.0, 1.0);
                    out.substitutions.push(format!(
                        "row {i} ({type_key}): distribution {d} outside [0, 1] — clamped to {clamped}"
                    ));
                    clamped
                }
                _ => {
                    out.substitutions.push(format!(
                        "row {i} ({type_key}): `Distribution` missing or non-numeric — substituted 1.0"
                    ));
                    1.0
                }
            };
            let nature = match row.get("Nature").and_then(Value::as_str) {
                Some(n) => nature_from_str(n),
                None if mode_name == "Unspecified" => FailureNature::LossOfFunction,
                None => infer_nature(&mode_name),
            };
            let entry = out.db.entries.entry(type_key.clone()).or_insert_with(|| {
                ComponentReliability { type_key, fit: Fit::new(fit_value), modes: Vec::new() }
            });
            entry.modes.push(FailureModeSpec { name: mode_name, nature, distribution });
        }
        // A type whose shares sum above 1.0 would spend more than its whole
        // FIT budget; renormalise to a unit budget with a provenance trail.
        let mut keys: Vec<String> = out.db.entries.keys().cloned().collect();
        keys.sort();
        for key in keys {
            let entry = out.db.entries.get_mut(&key).expect("key enumerated above");
            let share_sum: f64 = entry.modes.iter().map(|m| m.distribution).sum();
            if share_sum > 1.0 + SHARE_SUM_TOLERANCE {
                for mode in &mut entry.modes {
                    mode.distribution /= share_sum;
                }
                out.substitutions.push(format!(
                    "type {key}: distribution shares sum to {share_sum} > 1.0 — normalised to a unit budget"
                ));
            }
        }
        out
    }

    /// Parses a Table II-shaped CSV document leniently: structurally
    /// broken CSV rows are skipped with a diagnostic, and row-level
    /// defects degrade per [`ReliabilityDb::from_value_lenient`]. Never
    /// fails — worst case is an empty database with diagnostics
    /// explaining why.
    pub fn from_csv_str_lenient(text: &str, source: &str) -> LenientReliabilityLoad {
        let (rows, csv_diags) = decisive_federation::csv::parse_lenient(text, source);
        let mut out = ReliabilityDb::from_value_lenient(&rows, source);
        // CSV-level diagnostics first: they explain rows that never
        // reached the row validator.
        let mut diagnostics = csv_diags;
        diagnostics.append(&mut out.diagnostics);
        out.diagnostics = diagnostics;
        out
    }

    /// Serialises the database back into a Table II-shaped value.
    pub fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort();
        let mut rows = Vec::new();
        for key in keys {
            let entry = &self.entries[key];
            for mode in &entry.modes {
                rows.push(Value::record([
                    ("Component", Value::from(entry.type_key.as_str())),
                    ("FIT", Value::Real(entry.fit.value())),
                    ("Failure_Mode", Value::from(mode.name.as_str())),
                    ("Distribution", Value::Real(mode.distribution)),
                ]));
            }
        }
        Value::List(rows)
    }

    /// The paper's example reliability model (Table II), used by the case
    /// study and the examples.
    pub fn paper_table_ii() -> ReliabilityDb {
        ReliabilityDb::from_csv_str(
            "Component,FIT,Failure_Mode,Distribution\n\
             Diode,10,Open,0.3\n\
             Diode,10,Short,0.7\n\
             Capacitor,2,Open,0.3\n\
             Capacitor,2,Short,0.7\n\
             Inductor,15,Open,0.3\n\
             Inductor,15,Short,0.7\n\
             MC,300,RAM Failure,1.0\n",
        )
        .expect("static table parses")
    }

    /// DECISIVE Step 3: aggregates reliability data into an SSAM model —
    /// every component whose `type_key` has an entry receives its FIT and
    /// failure modes. Returns how many components were annotated.
    pub fn aggregate_into(&self, model: &mut SsamModel) -> usize {
        let targets: Vec<_> = model
            .components
            .iter()
            .filter_map(|(idx, c)| {
                c.type_key
                    .as_deref()
                    .and_then(|k| self.entries.get(k))
                    .map(|entry| (idx, entry.clone()))
            })
            .collect();
        let count = targets.len();
        for (idx, entry) in targets {
            model.components[idx].fit = Some(entry.fit);
            if model.components[idx].failure_modes.is_empty() {
                for mode in &entry.modes {
                    let fm = model.add_failure_mode(
                        idx,
                        mode.name.clone(),
                        mode.nature.clone(),
                        mode.distribution,
                    );
                    let _ = fm;
                }
            }
        }
        count
    }
}

/// Infers a failure nature from a mode name — the heuristic used when the
/// reliability source (like Table II) does not state natures explicitly.
///
/// Loss-of-supply modes (`open`, anything containing `loss` or `failure`)
/// break the function outright; `short` produces wrong behaviour instead.
pub fn infer_nature(mode_name: &str) -> FailureNature {
    let lower = mode_name.to_ascii_lowercase();
    if lower.contains("open") || lower.contains("loss") || lower.contains("failure") {
        FailureNature::LossOfFunction
    } else if lower.contains("short") {
        FailureNature::Erroneous
    } else if lower.contains("drift") || lower.contains("degrad") {
        FailureNature::Degraded
    } else {
        FailureNature::Other(mode_name.to_owned())
    }
}

fn nature_from_str(s: &str) -> FailureNature {
    match s.to_ascii_lowercase().as_str() {
        "loss" | "loss of function" | "lossoffunction" => FailureNature::LossOfFunction,
        "erroneous" => FailureNature::Erroneous,
        "degraded" => FailureNature::Degraded,
        "intermittent" => FailureNature::Intermittent,
        "commission" => FailureNature::Commission,
        other => FailureNature::Other(other.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decisive_ssam::architecture::{Component, ComponentKind};

    #[test]
    fn paper_table_ii_shape() {
        let db = ReliabilityDb::paper_table_ii();
        assert_eq!(db.len(), 4);
        let diode = db.get("Diode").unwrap();
        assert_eq!(diode.fit, Fit::new(10.0));
        assert_eq!(diode.modes.len(), 2);
        assert_eq!(diode.modes[0].name, "Open");
        assert_eq!(diode.modes[0].nature, FailureNature::LossOfFunction);
        assert_eq!(diode.modes[1].nature, FailureNature::Erroneous);
        let mc = db.get("MC").unwrap();
        assert_eq!(
            mc.modes[0].nature,
            FailureNature::LossOfFunction,
            "RAM Failure is a loss of function"
        );
    }

    #[test]
    fn nature_inference() {
        assert_eq!(infer_nature("Open"), FailureNature::LossOfFunction);
        assert_eq!(infer_nature("Short"), FailureNature::Erroneous);
        assert_eq!(infer_nature("RAM Failure"), FailureNature::LossOfFunction);
        assert_eq!(infer_nature("Parameter Drift"), FailureNature::Degraded);
        assert!(matches!(infer_nature("jitter"), FailureNature::Other(_)));
    }

    #[test]
    fn explicit_nature_column_overrides() {
        let db = ReliabilityDb::from_csv_str(
            "Component,FIT,Failure_Mode,Distribution,Nature\nPLL,50,jitter,1.0,erroneous\n",
        )
        .unwrap();
        assert_eq!(db.get("PLL").unwrap().modes[0].nature, FailureNature::Erroneous);
    }

    #[test]
    fn invalid_rows_are_rejected() {
        assert!(ReliabilityDb::from_csv_str("Component,FIT\nDiode,10\n").is_err());
        assert!(ReliabilityDb::from_csv_str(
            "Component,FIT,Failure_Mode,Distribution\nDiode,-1,Open,0.3\n"
        )
        .is_err());
        assert!(ReliabilityDb::from_csv_str(
            "Component,FIT,Failure_Mode,Distribution\nDiode,10,Open,1.5\n"
        )
        .is_err());
        assert!(ReliabilityDb::from_value(&Value::from("nope")).is_err());
    }

    #[test]
    fn lenient_load_keeps_good_rows_and_diagnoses_bad_ones() {
        // Mixed file: two good rows, one with a malformed FIT (substituted),
        // one with an out-of-range distribution (clamped), one with no
        // usable Component (dropped).
        let text = "Component,FIT,Failure_Mode,Distribution\n\
                    Diode,10,Open,0.3\n\
                    Diode,10,Short,0.7\n\
                    Capacitor,banana,Open,1.0\n\
                    Inductor,15,Open,1.5\n\
                    ,12,Open,1.0\n";
        let load = ReliabilityDb::from_csv_str_lenient(text, "mixed.csv");
        assert!(!load.is_clean());
        // Good rows survive verbatim.
        assert_eq!(load.db.get("Diode").unwrap().fit, Fit::new(10.0));
        assert_eq!(load.db.get("Diode").unwrap().modes.len(), 2);
        // Malformed FIT gets the MIL-HDBK-338B default for capacitors.
        assert_eq!(load.db.get("Capacitor").unwrap().fit, Fit::new(2.0));
        // Out-of-range distribution is clamped.
        assert_eq!(load.db.get("Inductor").unwrap().modes[0].distribution, 1.0);
        // One provenance warning per substitution, one diagnostic per
        // dropped row.
        assert_eq!(load.substitutions.len(), 2, "{:?}", load.substitutions);
        assert!(load.substitutions[0].contains("MIL-HDBK-338B default 2 FIT"));
        assert!(load.substitutions[1].contains("outside [0, 1]"));
        assert_eq!(load.diagnostics.len(), 1, "{:?}", load.diagnostics);
        assert!(load.diagnostics[0].reason.contains("`Component` missing"));
        // Strict mode refuses the same file at the first bad row.
        let err = ReliabilityDb::from_csv_str(text).unwrap_err();
        assert!(err.to_string().contains("`FIT` must be numeric"), "{err}");
    }

    #[test]
    fn lenient_load_of_clean_file_matches_strict() {
        let text = "Component,FIT,Failure_Mode,Distribution\n\
                    Diode,10,Open,0.3\n\
                    Diode,10,Short,0.7\n";
        let load = ReliabilityDb::from_csv_str_lenient(text, "clean.csv");
        assert!(load.is_clean());
        assert_eq!(load.db, ReliabilityDb::from_csv_str(text).unwrap());
    }

    #[test]
    fn lenient_load_substitutes_missing_mode_and_distribution() {
        let rows = Value::List(vec![Value::record([("Component", Value::from("Widget"))])]);
        let load = ReliabilityDb::from_value_lenient(&rows, "inline");
        assert_eq!(load.substitutions.len(), 3, "{:?}", load.substitutions);
        let widget = load.db.get("Widget").unwrap();
        assert_eq!(widget.fit, Fit::new(50.0), "unknown type gets the generic default");
        assert_eq!(widget.modes[0].name, "Unspecified");
        assert_eq!(widget.modes[0].nature, FailureNature::LossOfFunction);
        assert_eq!(widget.modes[0].distribution, 1.0);
    }

    #[test]
    fn strict_load_rejects_over_allocated_distribution_shares() {
        let text = "Component,FIT,Failure_Mode,Distribution\n\
                    Diode,10,Open,0.6\n\
                    Diode,10,Short,0.7\n";
        let err = ReliabilityDb::from_csv_str(text).unwrap_err();
        assert!(err.to_string().contains("distribution shares sum to"), "{err}");
        // A rounding-level overshoot is not an over-allocation.
        let thirds = "Component,FIT,Failure_Mode,Distribution\n\
                      Relay,40,Stuck,0.333\n\
                      Relay,40,Chatter,0.333\n\
                      Relay,40,Weld,0.334\n";
        assert!(ReliabilityDb::from_csv_str(thirds).is_ok());
    }

    #[test]
    fn lenient_load_normalises_over_allocated_shares() {
        let text = "Component,FIT,Failure_Mode,Distribution\n\
                    Diode,10,Open,0.6\n\
                    Diode,10,Short,0.7\n\
                    Capacitor,2,Open,0.3\n";
        let load = ReliabilityDb::from_csv_str_lenient(text, "over.csv");
        let diode = load.db.get("Diode").unwrap();
        let sum: f64 = diode.modes.iter().map(|m| m.distribution).sum();
        assert!((sum - 1.0).abs() < 1e-12, "normalised sum = {sum}");
        // Relative proportions survive the normalisation.
        assert!((diode.modes[0].distribution - 0.6 / 1.3).abs() < 1e-12);
        assert!((diode.modes[1].distribution - 0.7 / 1.3).abs() < 1e-12);
        // Under-allocated types are untouched.
        assert_eq!(load.db.get("Capacitor").unwrap().modes[0].distribution, 0.3);
        assert_eq!(load.substitutions.len(), 1, "{:?}", load.substitutions);
        assert!(load.substitutions[0].contains("normalised to a unit budget"));
    }

    #[test]
    fn lenient_load_of_non_list_yields_empty_db_with_diagnostic() {
        let load = ReliabilityDb::from_value_lenient(&Value::from("nope"), "inline");
        assert!(load.db.is_empty());
        assert_eq!(load.diagnostics.len(), 1);
    }

    #[test]
    fn default_fit_table_covers_common_parts() {
        assert_eq!(mil_hdbk_338b_default_fit("Diode"), 10.0);
        assert_eq!(mil_hdbk_338b_default_fit("MC"), 300.0);
        assert_eq!(mil_hdbk_338b_default_fit("Microcontroller"), 300.0);
        assert_eq!(mil_hdbk_338b_default_fit("Resistor"), 1.0);
        assert_eq!(mil_hdbk_338b_default_fit("Flux Capacitor"), 2.0);
        assert_eq!(mil_hdbk_338b_default_fit("Widget"), 50.0);
    }

    #[test]
    fn to_value_roundtrip() {
        let db = ReliabilityDb::paper_table_ii();
        let back = ReliabilityDb::from_value(&db.to_value()).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn aggregate_into_ssam_annotates_components() {
        let db = ReliabilityDb::paper_table_ii();
        let mut model = SsamModel::new("m");
        let top = model.add_component(Component::new("top", ComponentKind::System));
        let mut d1 = Component::new("D1", ComponentKind::Hardware);
        d1.type_key = Some("Diode".to_owned());
        let d1 = model.add_child_component(top, d1);
        let mut r1 = Component::new("R1", ComponentKind::Hardware);
        r1.type_key = Some("Resistor".to_owned()); // no entry in Table II
        model.add_child_component(top, r1);
        let annotated = db.aggregate_into(&mut model);
        assert_eq!(annotated, 1);
        assert_eq!(model.components[d1].fit, Some(Fit::new(10.0)));
        assert_eq!(model.components[d1].failure_modes.len(), 2);
        // Re-aggregating must not duplicate failure modes.
        db.aggregate_into(&mut model);
        assert_eq!(model.components[d1].failure_modes.len(), 2);
    }
}
