//! The unified typed request API: one [`RunSpec`] describing *how* an
//! analysis runs, one [`AnalysisRequest`] naming *what* to run on it.
//!
//! Three front ends used to grow their own flag/field sprawl — the CLI
//! verbs parsed `--reliability`/`--mission-hours`/`--solver`/`--strict`
//! by hand, the serve protocol re-declared the same fields on every op,
//! and the fleet wire format carried `mission_hours` loose on each task
//! line. All of them now build the same [`RunSpec`] through one parser
//! pair: [`RunSpec::from_args`] for CLI-style flag lists and
//! [`RunSpec::from_value`] for JSON wire records. The historical per-verb
//! flag spellings keep working — they *are* the spellings this parser
//! accepts — but are documented as aliases of the unified request fields.

use decisive_circuit::SolverKernel;
use decisive_federation::Value;

use crate::fmea::injection::InjectionConfig;
use crate::montecarlo;

/// Mission time applied when a request names none, hours (the paper's
/// 10 000-hour evaluation horizon).
pub const DEFAULT_MISSION_HOURS: f64 = 10_000.0;

/// Which analysis a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisOp {
    /// One FMEA (graph for SSAM models, injection campaign for `.bd`).
    Analyze,
    /// The full pass pipeline (FMEA → FTA → monitors → HARA → assurance).
    #[default]
    Pipeline,
    /// A stochastic injection campaign: N perturbed trials, CI metrics.
    MonteCarlo,
    /// Safety-pattern recommendations for uncovered failure modes.
    Recommend,
}

impl AnalysisOp {
    /// The stable wire/CLI name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            AnalysisOp::Analyze => "analyze",
            AnalysisOp::Pipeline => "pipeline",
            AnalysisOp::MonteCarlo => "montecarlo",
            AnalysisOp::Recommend => "recommend",
        }
    }

    /// Parses a wire/CLI name back.
    pub fn parse(name: &str) -> Option<AnalysisOp> {
        match name {
            "analyze" => Some(AnalysisOp::Analyze),
            "pipeline" => Some(AnalysisOp::Pipeline),
            "montecarlo" => Some(AnalysisOp::MonteCarlo),
            "recommend" => Some(AnalysisOp::Recommend),
            _ => None,
        }
    }
}

/// How one analysis run is configured, independent of front end.
///
/// Every field has a serviceable default, so a bare request is valid; the
/// parsers only ever tighten it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Reliability CSV path override (`None` = the front end's default,
    /// ultimately the paper's Table II).
    pub reliability: Option<String>,
    /// Promote any degradation (lenient substitutions, unsolvable cases,
    /// quarantined artefacts) to a hard failure.
    pub strict: bool,
    /// FTA mission time in hours (`None` = the front end's default,
    /// ultimately [`DEFAULT_MISSION_HOURS`]).
    pub mission_hours: Option<f64>,
    /// Linear kernel behind the injection campaign's Newton iteration.
    pub solver: SolverKernel,
    /// Monte-Carlo trial count.
    pub trials: usize,
    /// Monte-Carlo master seed.
    pub seed: u64,
}

impl Default for RunSpec {
    fn default() -> RunSpec {
        RunSpec {
            reliability: None,
            strict: false,
            mission_hours: None,
            solver: SolverKernel::default(),
            trials: montecarlo::DEFAULT_TRIALS,
            seed: 0,
        }
    }
}

fn parse_solver(tag: &str) -> Result<SolverKernel, String> {
    match tag {
        "sparse" => Ok(SolverKernel::Sparse),
        "dense" => Ok(SolverKernel::Dense),
        other => Err(format!("`solver` wants sparse|dense, got `{other}`")),
    }
}

impl RunSpec {
    /// The injection configuration this spec asks for.
    pub fn injection_config(&self) -> InjectionConfig {
        let mut config = InjectionConfig::default();
        config.campaign.solver.kernel = self.solver;
        config
    }

    /// The effective mission time.
    pub fn mission_hours_or_default(&self) -> f64 {
        self.mission_hours.unwrap_or(DEFAULT_MISSION_HOURS)
    }

    /// The single CLI-side parser: reads `--reliability <csv>`,
    /// `--strict`, `--mission-hours <h>`, `--solver sparse|dense`,
    /// `--trials <n>` and `--seed <n>` out of a raw argument list.
    /// Unrelated flags are ignored (the verb's own `check_flags` already
    /// rejected unknown ones).
    ///
    /// # Errors
    ///
    /// A usage-style message naming the offending flag and value.
    pub fn from_args(args: &[String]) -> Result<RunSpec, String> {
        let value_of = |flag: &str| args.windows(2).find(|w| w[0] == flag).map(|w| w[1].as_str());
        let mut spec = RunSpec {
            reliability: value_of("--reliability").map(str::to_owned),
            strict: args.iter().any(|a| a == "--strict"),
            ..RunSpec::default()
        };
        if let Some(h) = value_of("--mission-hours") {
            spec.mission_hours =
                Some(h.parse::<f64>().ok().filter(|&h| h > 0.0 && h.is_finite()).ok_or_else(
                    || format!("--mission-hours wants a positive number, got `{h}`"),
                )?);
        }
        if let Some(tag) = value_of("--solver") {
            spec.solver = parse_solver(tag).map_err(|e| format!("--{e}"))?;
        }
        if let Some(n) = value_of("--trials") {
            spec.trials = n
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--trials wants a positive integer, got `{n}`"))?;
        }
        if let Some(n) = value_of("--seed") {
            spec.seed = n
                .parse::<u64>()
                .map_err(|_| format!("--seed wants an unsigned integer, got `{n}`"))?;
        }
        Ok(spec)
    }

    /// The single wire-side parser: reads the same fields (snake_case
    /// keys) out of a JSON record — the serve request body and the fleet
    /// task line both go through here. Missing fields keep their
    /// defaults; ill-typed ones are errors, never silently dropped.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn from_value(value: &Value) -> Result<RunSpec, String> {
        let mut spec = RunSpec::default();
        match value.get("reliability") {
            None | Some(Value::Null) => {}
            Some(Value::Str(csv)) => spec.reliability = Some(csv.clone()),
            Some(_) => return Err("`reliability` must be a string path".to_owned()),
        }
        match value.get("strict") {
            None | Some(Value::Null) => {}
            Some(Value::Bool(strict)) => spec.strict = *strict,
            Some(_) => return Err("`strict` must be a boolean".to_owned()),
        }
        match value.get("mission_hours") {
            None | Some(Value::Null) => {}
            Some(v) => {
                spec.mission_hours = Some(
                    v.as_f64()
                        .filter(|h| *h > 0.0 && h.is_finite())
                        .ok_or_else(|| "`mission_hours` wants a positive number".to_owned())?,
                );
            }
        }
        match value.get("solver") {
            None | Some(Value::Null) => {}
            Some(Value::Str(tag)) => spec.solver = parse_solver(tag)?,
            Some(_) => return Err("`solver` wants sparse|dense".to_owned()),
        }
        match value.get("trials") {
            None | Some(Value::Null) => {}
            Some(v) => {
                spec.trials = v
                    .as_i64()
                    .filter(|&n| n > 0)
                    .map(|n| n as usize)
                    .ok_or_else(|| "`trials` wants a positive integer".to_owned())?;
            }
        }
        match value.get("seed") {
            None | Some(Value::Null) => {}
            Some(v) => {
                spec.seed = v
                    .as_i64()
                    .filter(|&n| n >= 0)
                    .map(|n| n as u64)
                    .ok_or_else(|| "`seed` wants a non-negative integer".to_owned())?;
            }
        }
        Ok(spec)
    }

    /// The wire record form, round-trippable through
    /// [`RunSpec::from_value`]. Defaults are written out explicitly — a
    /// journaled fleet row must not change meaning if a default drifts.
    pub fn to_value(&self) -> Value {
        Value::record([
            ("reliability", self.reliability.as_deref().map_or(Value::Null, Value::from)),
            ("strict", Value::Bool(self.strict)),
            ("mission_hours", self.mission_hours.map_or(Value::Null, Value::Real)),
            ("solver", Value::from(self.solver.tag())),
            ("trials", Value::Int(self.trials as i64)),
            ("seed", Value::Int(self.seed as i64)),
        ])
    }
}

/// One complete analysis request: the operation, the model it applies to
/// and the run configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisRequest {
    /// Which analysis to run.
    pub op: AnalysisOp,
    /// Model path (`.json` SSAM graph or `.bd` block diagram).
    pub path: String,
    /// How to run it.
    pub spec: RunSpec,
}

impl AnalysisRequest {
    /// Bundles an operation, a model path and a spec.
    pub fn new(op: AnalysisOp, path: impl Into<String>, spec: RunSpec) -> AnalysisRequest {
        AnalysisRequest { op, path: path.into(), spec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decisive_federation::json;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn cli_and_wire_parsers_agree_on_the_same_request() {
        let from_cli = RunSpec::from_args(&args(&[
            "--reliability",
            "fits.csv",
            "--strict",
            "--mission-hours",
            "5000",
            "--solver",
            "dense",
            "--trials",
            "256",
            "--seed",
            "99",
        ]))
        .unwrap();
        let from_wire = RunSpec::from_value(
            &json::parse(
                r#"{"reliability":"fits.csv","strict":true,"mission_hours":5000,
                    "solver":"dense","trials":256,"seed":99}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(from_cli, from_wire);
        assert_eq!(from_cli.trials, 256);
        assert_eq!(from_cli.solver, SolverKernel::Dense);
        assert_eq!(from_cli.mission_hours_or_default(), 5000.0);
    }

    #[test]
    fn defaults_survive_an_empty_request() {
        let spec = RunSpec::from_args(&[]).unwrap();
        assert_eq!(spec, RunSpec::default());
        assert_eq!(spec.trials, montecarlo::DEFAULT_TRIALS);
        assert_eq!(spec.mission_hours_or_default(), DEFAULT_MISSION_HOURS);
        assert_eq!(spec.injection_config().campaign.solver.kernel, SolverKernel::Sparse);
    }

    #[test]
    fn wire_form_round_trips() {
        let spec = RunSpec {
            reliability: Some("r.csv".to_owned()),
            strict: true,
            mission_hours: Some(1234.5),
            solver: SolverKernel::Dense,
            trials: 64,
            seed: 7,
        };
        assert_eq!(RunSpec::from_value(&spec.to_value()).unwrap(), spec);
        assert_eq!(
            RunSpec::from_value(&RunSpec::default().to_value()).unwrap(),
            RunSpec::default()
        );
    }

    #[test]
    fn malformed_fields_are_named_errors() {
        for (flags, needle) in [
            (vec!["--mission-hours", "-1"], "--mission-hours"),
            (vec!["--solver", "magic"], "sparse|dense"),
            (vec!["--trials", "0"], "--trials"),
            (vec!["--seed", "minus"], "--seed"),
        ] {
            let err = RunSpec::from_args(&args(&flags)).unwrap_err();
            assert!(err.contains(needle), "{flags:?}: {err}");
        }
        for (line, needle) in [
            (r#"{"trials":0}"#, "trials"),
            (r#"{"seed":-1}"#, "seed"),
            (r#"{"solver":7}"#, "solver"),
            (r#"{"mission_hours":"soon"}"#, "mission_hours"),
            (r#"{"strict":"yes"}"#, "strict"),
            (r#"{"reliability":[1]}"#, "reliability"),
        ] {
            let err = RunSpec::from_value(&json::parse(line).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn ops_round_trip_their_names() {
        for op in [
            AnalysisOp::Analyze,
            AnalysisOp::Pipeline,
            AnalysisOp::MonteCarlo,
            AnalysisOp::Recommend,
        ] {
            assert_eq!(AnalysisOp::parse(op.name()), Some(op));
        }
        assert_eq!(AnalysisOp::parse("frobnicate"), None);
    }
}
