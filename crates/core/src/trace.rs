//! Traceability reporting across the federated model — the paper's §II-C
//! requirement that "components and their respective requirement shall
//! typically link, and the failure modes of a component shall also be
//! associated with identified hazards".
//!
//! The report walks every failure mode and collects, through SSAM's `cite`
//! and reference facilities: the hazards it can cause, the mechanisms
//! covering it, and the requirements allocated to its component.

use serde::{Deserialize, Serialize};

use decisive_ssam::base::CiteRef;
use decisive_ssam::model::SsamModel;

/// One traceability row: a failure mode with everything linked to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Component instance.
    pub component: String,
    /// Failure mode name.
    pub failure_mode: String,
    /// Hazards this failure mode is associated with.
    pub hazards: Vec<String>,
    /// Safety mechanisms covering this failure mode.
    pub mechanisms: Vec<String>,
    /// Requirements citing the component.
    pub requirements: Vec<String>,
}

impl TraceEntry {
    /// `true` when the failure mode has no hazard association — a gap a
    /// reviewer should close.
    pub fn is_unassociated(&self) -> bool {
        self.hazards.is_empty()
    }
}

/// Builds the traceability report of `model`, one entry per failure mode,
/// in component allocation order.
pub fn traceability_report(model: &SsamModel) -> Vec<TraceEntry> {
    let mut report = Vec::new();
    for (cidx, component) in model.components.iter() {
        // Requirements citing this component.
        let requirements: Vec<String> = model
            .requirements
            .iter()
            .filter(|(_, r)| {
                r.core.cites.iter().any(|c| matches!(c, CiteRef::Component(i) if *i == cidx))
            })
            .map(|(_, r)| r.core.name.value().to_owned())
            .collect();
        for (fm_idx, fm) in model.failure_modes_of(cidx) {
            let hazards =
                fm.hazards.iter().map(|&h| model.hazards[h].core.name.value().to_owned()).collect();
            let mechanisms = model
                .mechanisms_covering(cidx, fm_idx)
                .map(|m| m.core.name.value().to_owned())
                .collect();
            report.push(TraceEntry {
                component: component.core.name.value().to_owned(),
                failure_mode: fm.core.name.value().to_owned(),
                hazards,
                mechanisms,
                requirements: requirements.clone(),
            });
        }
    }
    report
}

/// Renders the report as aligned text, flagging unassociated failure modes.
pub fn render_report(report: &[TraceEntry]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for entry in report {
        let _ = writeln!(
            out,
            "{}/{} -> hazards [{}] mechanisms [{}] requirements [{}]{}",
            entry.component,
            entry.failure_mode,
            entry.hazards.join(", "),
            entry.mechanisms.join(", "),
            entry.requirements.join(", "),
            if entry.is_unassociated() { "  (!) no hazard association" } else { "" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    #[test]
    fn case_study_traces_loss_modes_to_h1() {
        let (model, _) = case_study::ssam_model();
        let report = traceability_report(&model);
        let entry = |component: &str, mode: &str| {
            report
                .iter()
                .find(|e| e.component == component && e.failure_mode == mode)
                .unwrap_or_else(|| panic!("missing {component}/{mode}"))
        };
        assert_eq!(entry("D1", "Open").hazards, vec!["H1"]);
        assert_eq!(entry("L1", "Open").hazards, vec!["H1"]);
        assert_eq!(entry("MC1", "RAM Failure").hazards, vec!["H1"]);
        // Erroneous modes are not tied to the loss hazard.
        assert!(entry("D1", "Short").is_unassociated());
    }

    #[test]
    fn requirements_trace_to_the_sensing_chain() {
        let (model, _) = case_study::ssam_model();
        let report = traceability_report(&model);
        let mc1 = report.iter().find(|e| e.component == "MC1").expect("MC1 entry");
        assert_eq!(mc1.requirements, vec!["SR-1"]);
    }

    #[test]
    fn deployed_mechanisms_appear_in_the_report() {
        let (mut model, _) = case_study::ssam_model();
        let mc1 = model.component_by_name("MC1").expect("MC1");
        let ram = model.components[mc1].failure_modes[0];
        model.deploy_safety_mechanism(
            mc1,
            "ECC",
            ram,
            decisive_ssam::architecture::Coverage::new(0.99),
            2.0,
        );
        let report = traceability_report(&model);
        let entry = report
            .iter()
            .find(|e| e.component == "MC1" && e.failure_mode == "RAM Failure")
            .expect("MC1 RAM entry");
        assert_eq!(entry.mechanisms, vec!["ECC"]);
    }

    #[test]
    fn rendering_flags_gaps() {
        let (model, _) = case_study::ssam_model();
        let text = render_report(&traceability_report(&model));
        assert!(text.contains("D1/Open -> hazards [H1]"));
        assert!(text.contains("no hazard association"));
    }
}
