//! Supervised fault-campaign integration tests: the checked-in
//! pathological brown-out circuit flips from a conservative warning to a
//! genuine simulated verdict via the recovery ladder, the campaign circuit
//! breaker trips on modelling bugs, and dual-point joint failures leave an
//! auditable trail.

use decisive_blocks::gallery;
use decisive_circuit::SolverOptions;
use decisive_core::campaign::{CampaignConfig, CaseOutcome};
use decisive_core::fmea::injection::{self, InjectionConfig};
use decisive_core::reliability::{ComponentReliability, FailureModeSpec, ReliabilityDb};
use decisive_core::CoreError;
use decisive_ssam::architecture::{FailureImpact, FailureNature, Fit};

/// Reliability data for the brown-out gallery circuit: a resistor that can
/// drift to twice its value and an MCU with a functional failure.
fn brownout_reliability() -> ReliabilityDb {
    let mut db = ReliabilityDb::new();
    db.insert(ComponentReliability {
        type_key: "Resistor".into(),
        fit: Fit::new(5.0),
        modes: vec![FailureModeSpec {
            name: "Drift".into(),
            nature: FailureNature::Degraded,
            distribution: 1.0,
        }],
    });
    db.insert(ComponentReliability {
        type_key: "MC".into(),
        fit: Fit::new(300.0),
        modes: vec![FailureModeSpec {
            name: "RAM Failure".into(),
            nature: FailureNature::Erroneous,
            distribution: 1.0,
        }],
    });
    db
}

/// Without the ladder, the drifted-resistor case is unsolvable and the row
/// falls back to the conservative verdict the paper-era engine produced.
#[test]
fn without_ladder_the_pathological_case_is_conservative() {
    let (diagram, _) = gallery::brownout_threshold_supply();
    let config = InjectionConfig {
        campaign: CampaignConfig {
            solver: SolverOptions::plain_newton_only(),
            ..CampaignConfig::default()
        },
        ..InjectionConfig::default()
    };
    let (table, health) = injection::run_supervised(&diagram, &brownout_reliability(), &config)
        .expect("breaker holds at 50% with 1 of 2 cases failing");
    let row = table
        .rows
        .iter()
        .find(|r| r.component == "R1" && r.failure_mode == "Drift")
        .expect("R1/Drift row");
    assert!(row.safety_related, "unsolvable cases stay conservatively safety-related");
    assert!(
        row.warning.as_deref().unwrap().contains("conservatively safety-related"),
        "warning: {:?}",
        row.warning
    );
    assert_eq!(row.impact, None, "no simulated verdict without a solution");
    assert_eq!(health.unsolvable, 1);
    assert_eq!(health.failed_cases, vec!["R1/Drift".to_string()]);
}

/// The acceptance criterion: with the recovery ladder the same row flips
/// to a genuine simulated verdict carrying `Recovered` diagnostics.
#[test]
fn ladder_flips_pathological_row_to_genuine_verdict() {
    let (diagram, _) = gallery::brownout_threshold_supply();
    let (table, health) =
        injection::run_supervised(&diagram, &brownout_reliability(), &InjectionConfig::default())
            .unwrap();
    let row = table
        .rows
        .iter()
        .find(|r| r.component == "R1" && r.failure_mode == "Drift")
        .expect("R1/Drift row");
    // The drifted supply browns the load out: ~2.2 A vs 3.0 A nominal is a
    // genuine 26% deviation, not a conservative guess.
    assert!(row.safety_related);
    assert_eq!(row.impact, Some(FailureImpact::DirectViolation));
    assert!(
        row.warning.as_deref().unwrap().contains("solver recovered via damped-newton"),
        "warning: {:?}",
        row.warning
    );
    // Health: MC1's functional failure converges plainly, R1's drift needs
    // the ladder.
    assert_eq!(health.total, 2);
    assert_eq!(health.converged, 1);
    assert_eq!(health.recovered, 1);
    assert_eq!(health.unsolvable, 0);
    assert_eq!(health.strategy_histogram.get("damped-newton"), Some(&1));
    assert!(health.render().contains("damped-newton x1"));
}

/// A per-case budget too small for anything to converge represents a
/// modelling bug; the campaign breaker must abort instead of emitting a
/// fully conservative (i.e. wrong) table.
#[test]
fn campaign_breaker_aborts_on_mass_unsolvability() {
    let (diagram, _) = gallery::sensor_power_supply();
    let config = InjectionConfig {
        campaign: CampaignConfig {
            max_unsolvable_fraction: 0.25,
            min_cases: 4,
            solver: SolverOptions { budget: 1, ..SolverOptions::default() },
        },
        ..InjectionConfig::default()
    };
    let err = injection::run(&diagram, &ReliabilityDb::paper_table_ii(), &config).unwrap_err();
    match err {
        CoreError::CampaignAborted { failed, total, limit } => {
            assert_eq!(total, 9, "the case study sweeps 9 cases");
            assert!(failed > 2, "with a 1-iteration budget most cases fail, got {failed}");
            assert!((limit - 0.25).abs() < 1e-12);
        }
        other => panic!("expected CampaignAborted, got {other}"),
    }
}

/// With the breaker disabled the same campaign degrades gracefully:
/// conservative rows plus an honest health report.
#[test]
fn disabled_breaker_degrades_gracefully() {
    let (diagram, _) = gallery::sensor_power_supply();
    let config = InjectionConfig {
        campaign: CampaignConfig {
            max_unsolvable_fraction: 1.0,
            min_cases: 4,
            solver: SolverOptions { budget: 1, ..SolverOptions::default() },
        },
        ..InjectionConfig::default()
    };
    let (table, health) =
        injection::run_supervised(&diagram, &ReliabilityDb::paper_table_ii(), &config).unwrap();
    assert_eq!(table.rows.len(), 9);
    assert!(health.unsolvable > 2);
    assert!(health.failure_fraction() > 0.25);
    for case in &health.failed_cases {
        let (component, mode) = case.split_once('/').expect("case label is component/mode");
        let row = table
            .rows
            .iter()
            .find(|r| r.component == component && r.failure_mode == mode)
            .expect("failed case has a row");
        assert!(row.safety_related, "{case} must be conservatively safety-related");
    }
}

/// The healthy case study is untouched by supervision: all nine cases
/// converge plainly and the verdicts pin the paper's Table IV.
#[test]
fn healthy_campaign_is_all_converged() {
    let (diagram, _) = gallery::sensor_power_supply();
    let (table, health) = injection::run_supervised(
        &diagram,
        &ReliabilityDb::paper_table_ii(),
        &InjectionConfig::default(),
    )
    .unwrap();
    assert_eq!(health.total, 9);
    assert_eq!(health.converged, 9);
    assert_eq!(health.recovered, 0);
    assert_eq!(health.unsolvable + health.panicked + health.skipped, 0);
    assert!(health.strategy_histogram.is_empty());
    assert!((table.spfm() - 0.0538).abs() < 5e-4);
}

/// Builds the dual-drift diagram: two series resistors whose individual
/// drifts are masked but whose joint drift is the pathological circuit.
fn dual_drift_diagram() -> decisive_blocks::BlockDiagram {
    use decisive_blocks::{BlockDiagram, BlockKind, Port};
    let ok = "static wiring";
    let mut d = BlockDiagram::new("dual-drift");
    let dc1 = d.add_block("DC1", BlockKind::DcVoltageSource { volts: 5.0 });
    let r_a = d.add_block("R_A", BlockKind::Resistor { ohms: 0.25 });
    let r_b = d.add_block("R_B", BlockKind::Resistor { ohms: 0.25 });
    let cs1 = d.add_block("CS1", BlockKind::CurrentSensor);
    let mc1 =
        d.add_block("MC1", BlockKind::Mcu { on_amps: 3.0, brownout_volts: 2.75, fault_amps: 0.1 });
    let gnd1 = d.add_block("GND1", BlockKind::Ground);
    d.connect(dc1, Port(0), r_a, Port(0)).expect(ok);
    d.connect(r_a, Port(1), r_b, Port(0)).expect(ok);
    d.connect(r_b, Port(1), cs1, Port(0)).expect(ok);
    d.connect(cs1, Port(1), mc1, Port(0)).expect(ok);
    d.connect(mc1, Port(1), gnd1, Port(0)).expect(ok);
    d.connect(dc1, Port(1), gnd1, Port(0)).expect(ok);
    d
}

fn resistor_only_reliability() -> ReliabilityDb {
    let mut db = ReliabilityDb::new();
    db.insert(ComponentReliability {
        type_key: "Resistor".into(),
        fit: Fit::new(5.0),
        modes: vec![FailureModeSpec {
            name: "Drift".into(),
            nature: FailureNature::Degraded,
            distribution: 1.0,
        }],
    });
    db
}

/// With the ladder, the joint drift is *simulated*: a genuine latent pair
/// with `Recovered` diagnostics and no warnings.
#[test]
fn dual_point_joint_failure_is_simulated_via_ladder() {
    let outcome = injection::run_dual_point(
        &dual_drift_diagram(),
        &resistor_only_reliability(),
        &InjectionConfig::default(),
    )
    .unwrap();
    assert_eq!(outcome.latent_pairs.len(), 1, "the joint drift browns the load out");
    assert!(outcome.pair_warnings.is_empty(), "warnings: {:?}", outcome.pair_warnings);
    // 2 single cases + 1 joint case; the joint one needed recovery.
    assert_eq!(outcome.health.total, 3);
    assert_eq!(outcome.health.recovered, 1);
    for r in ["R_A", "R_B"] {
        let row = outcome.table.rows.iter().find(|row| row.component == r).expect("resistor row");
        assert!(!row.safety_related, "single drift is masked");
        assert_eq!(row.impact, Some(FailureImpact::IndirectViolation), "{r} is latent");
    }
}

/// Without the ladder the joint solve fails: still counted as deviating
/// (conservative), but now with an auditable per-pair warning and an
/// `Unsolvable` case in the health report.
#[test]
fn dual_point_unsolvable_joint_failure_leaves_audit_trail() {
    let config = InjectionConfig {
        campaign: CampaignConfig {
            solver: SolverOptions::plain_newton_only(),
            ..CampaignConfig::default()
        },
        ..InjectionConfig::default()
    };
    let outcome =
        injection::run_dual_point(&dual_drift_diagram(), &resistor_only_reliability(), &config)
            .unwrap();
    assert_eq!(outcome.latent_pairs.len(), 1, "unsolvable pairs count as deviating");
    assert_eq!(outcome.pair_warnings.len(), 1);
    let warning = &outcome.pair_warnings[0];
    assert!(warning.contains("R_A/Drift+R_B/Drift"), "warning: {warning}");
    assert!(warning.contains("counted as deviating"), "warning: {warning}");
    assert_eq!(outcome.health.unsolvable, 1);
    assert!(outcome.health.failed_cases.iter().any(|c| c == "R_A/Drift+R_B/Drift"));
}

/// Supervision must not change any verdict of the healthy parallel sweep.
#[test]
fn supervised_parallel_sweep_matches_sequential() {
    let (diagram, _) = gallery::sensor_power_supply();
    let db = ReliabilityDb::paper_table_ii();
    let sequential = injection::run_supervised(&diagram, &db, &InjectionConfig::default()).unwrap();
    let parallel = injection::run_supervised(
        &diagram,
        &db,
        &InjectionConfig { parallelism: 4, ..InjectionConfig::default() },
    )
    .unwrap();
    assert_eq!(sequential.0.disagreement(&parallel.0), 0.0);
    assert_eq!(sequential.1.total, parallel.1.total);
    assert_eq!(sequential.1.converged, parallel.1.converged);
}

/// Outcome classification is visible through the public supervised API.
#[test]
fn skipped_cases_are_classified_not_converged() {
    use decisive_blocks::{BlockDiagram, BlockKind, Port};
    let mut diagram = BlockDiagram::new("sw");
    let v = diagram.add_block("V1", BlockKind::DcVoltageSource { volts: 5.0 });
    let g = diagram.add_block("G", BlockKind::Ground);
    diagram.add_block("SW1", BlockKind::Software);
    diagram.connect(v, Port(1), g, Port(0)).unwrap();
    let mut db = ReliabilityDb::new();
    db.insert(ComponentReliability {
        type_key: "Software".into(),
        fit: Fit::new(50.0),
        modes: vec![FailureModeSpec {
            name: "Crash".into(),
            nature: FailureNature::LossOfFunction,
            distribution: 1.0,
        }],
    });
    let (_, health) =
        injection::run_supervised(&diagram, &db, &InjectionConfig::default()).unwrap();
    assert_eq!(health.total, 1);
    assert_eq!(health.skipped, 1);
    assert_eq!(health.converged, 0);
    let _ = CaseOutcome::Skipped; // the classification is part of the API
}

/// The sparse kernel (default) and the dense differential oracle must
/// produce identical campaign verdicts — same rows, same safety
/// classifications, same impacts, same ladder outcomes — on every gallery
/// design, including the pathological brown-out case that exercises the
/// whole recovery ladder.
#[test]
fn dense_and_sparse_kernels_agree_on_every_campaign_verdict() {
    use decisive_circuit::SolverKernel;
    let dense_config = InjectionConfig {
        campaign: CampaignConfig {
            solver: SolverOptions { kernel: SolverKernel::Dense, ..SolverOptions::default() },
            ..CampaignConfig::default()
        },
        ..InjectionConfig::default()
    };
    let cases = [
        (gallery::sensor_power_supply().0, ReliabilityDb::paper_table_ii()),
        (gallery::redundant_power_supply().0, ReliabilityDb::paper_table_ii()),
        (gallery::brownout_threshold_supply().0, brownout_reliability()),
    ];
    for (diagram, db) in &cases {
        let (sparse_table, sparse_health) =
            injection::run_supervised(diagram, db, &InjectionConfig::default()).unwrap();
        let (dense_table, dense_health) =
            injection::run_supervised(diagram, db, &dense_config).unwrap();
        assert_eq!(
            sparse_table.disagreement(&dense_table),
            0.0,
            "kernels disagree on {}",
            diagram.name()
        );
        for (s, d) in sparse_table.rows.iter().zip(dense_table.rows.iter()) {
            assert_eq!(
                s.impact,
                d.impact,
                "{}: {}/{}",
                diagram.name(),
                s.component,
                s.failure_mode
            );
        }
        assert_eq!(sparse_health.converged, dense_health.converged, "{}", diagram.name());
        assert_eq!(sparse_health.recovered, dense_health.recovered, "{}", diagram.name());
        assert_eq!(sparse_health.unsolvable, dense_health.unsolvable, "{}", diagram.name());
    }
}
