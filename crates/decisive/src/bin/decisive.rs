//! `decisive` — command-line front end to the toolchain: validate, analyse
//! and render SSAM models persisted as JSON.
//!
//! ```text
//! decisive demo model.json                 # write the case-study model
//! decisive validate model.json             # SSAM well-formedness report
//! decisive fmea model.json [--csv out.csv] # automated FMEA (Algorithm 1)
//! decisive analyze model.json --cache .dc  # incremental FMEA via the engine
//! decisive analyze design.bd --strict      # fault-injection campaign (.bd)
//! decisive pipeline design.bd --cache .dc  # full pass pipeline (FMEA → FTA → HARA → assurance)
//! decisive montecarlo design.bd --trials 256 --seed 7  # stochastic campaign: mean + 95% CI metrics
//! decisive recommend design.bd             # safety-pattern recommendations for uncovered modes
//! decisive passes design.bd --cache .dc    # pass DAG with per-pass cache status
//! decisive rerun old.json new.json --cache .dc  # diff-driven re-analysis
//! decisive spfm table.json                 # metrics of a saved FMEA table
//! decisive render model.json [--dot]       # ASCII tree or Graphviz DOT
//! decisive monitor model.json              # generated runtime checks
//! decisive serve --cache .dc               # daemon: line-JSON requests on stdin/stdout
//! decisive serve --socket /tmp/d.sock      # daemon on a unix socket (concurrent sessions)
//! decisive serve --watch design.bd         # re-run the pipeline on every file change
//! ```
//!
//! Observability: `analyze`, `pipeline` and `rerun` accept
//! `--trace-out <path>` (chrome://tracing JSON, load it in Perfetto) and
//! `--metrics` (one `OBS_metrics {...}` summary line); `analyze`,
//! `pipeline` and `passes` accept `--format {text,json}` for a single
//! machine-readable document instead of the text rendering.
//!
//! Exit codes: `0` success, `1` analysis or I/O failure, `2` bad usage
//! (unknown command, unknown flag, missing argument).

use std::process::ExitCode;
use std::sync::Arc;

use decisive::core::fmea::graph::{self, GraphAlgorithm, GraphConfig};
use decisive::core::monitor::RuntimeMonitor;
use decisive::core::reliability::ReliabilityDb;
use decisive::core::request::{AnalysisOp, AnalysisRequest, RunSpec};
use decisive::core::{case_study, metrics, persist};
use decisive::engine::Engine;
use decisive::obs::{RecordingSink, Telemetry};
use decisive::output::{
    self, AnalyzeOutput, MonteCarloOutput, PassesOutput, PipelineOutput, RecommendOutput,
};
use decisive::ssam::model::SsamModel;

/// CLI failures, split by who got it wrong: `Usage` is the caller's
/// mistake (exit code 2), `Failure` is the analysis' or filesystem's
/// (exit code 1).
enum CliError {
    Usage(String),
    Failure(String),
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError::Usage(message.into())
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Failure(message)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("import") => cmd_import(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("fmea") => cmd_fmea(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("pipeline") => cmd_pipeline(&args[1..]),
        Some("montecarlo") => cmd_montecarlo(&args[1..]),
        Some("recommend") => cmd_recommend(&args[1..]),
        Some("passes") => cmd_passes(&args[1..]),
        Some("rerun") => cmd_rerun(&args[1..]),
        Some("spfm") => cmd_spfm(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("monitor") => cmd_monitor(&args[1..]),
        Some("impact") => cmd_impact(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        // Hidden: the re-exec target of the fleet supervisor. Not part of
        // the user-facing surface; its protocol lives in `decisive::fleet`.
        Some("fleet-worker") => {
            return ExitCode::from(decisive::fleet::run_worker().clamp(0, 255) as u8)
        }
        Some("--version" | "-V") => {
            println!("decisive {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        Some("--help" | "-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!("unknown command `{other}` (try --help)"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Failure(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(message)) => {
            eprintln!("usage error: {message}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "decisive — iterative automated safety analysis\n\n\
         usage:\n  decisive demo <model.json>\n  decisive import <design.bd> <model.json>\n  decisive validate <model.json>\n  \
         decisive fmea <model.json> [--algorithm paths|cut] [--csv <out.csv>] [--json <out.json>]\n  \
         decisive analyze <model.json|design.bd> [--cache <dir>] [--jobs <n>] [--deadline-ms <ms>] [--csv <out.csv>] [--json <out.json>] [--reliability <csv>] [--solver sparse|dense] [--strict] [--format text|json] [--trace-out <trace.json>] [--metrics]\n  \
         decisive pipeline <model.json|design.bd> [--cache <dir>] [--jobs <n>] [--deadline-ms <ms>] [--mission-hours <h>] [--csv <out.csv>] [--json <out.json>] [--reliability <csv>] [--solver sparse|dense] [--strict] [--format text|json] [--trace-out <trace.json>] [--metrics]\n  \
         decisive montecarlo <design.bd> [--trials <n>] [--seed <n>] [--cache <dir>] [--jobs <n>] [--deadline-ms <ms>] [--reliability <csv>] [--solver sparse|dense] [--strict] [--format text|json] [--trace-out <trace.json>] [--metrics]\n  \
         decisive recommend <design.bd> [--cache <dir>] [--jobs <n>] [--deadline-ms <ms>] [--reliability <csv>] [--solver sparse|dense] [--strict] [--format text|json] [--trace-out <trace.json>] [--metrics]\n  \
         decisive passes [<model.json|design.bd>] [--cache <dir>] [--jobs <n>] [--format text|json]\n  \
         decisive rerun <old.json|old.bd> <new.json|new.bd> [--cache <dir>] [--jobs <n>] [--deadline-ms <ms>] [--reliability <csv>] [--strict] [--trace-out <trace.json>] [--metrics]\n  \
         decisive spfm <table.json>\n  decisive render <model.json> [--dot]\n  \
         decisive monitor <model.json>\n  decisive impact <old.json> <new.json>\n  \
         decisive trace <model.json>\n  \
         decisive serve [--socket <path>|--watch <model>] [--poll-ms <ms>] [--idle-timeout-ms <ms>] [--cache <dir>] [--jobs <n>] [--deadline-ms <ms>] [--reliability <csv>] [--mission-hours <h>] [--fleet <journal-dir>] [--trace-out <trace.json>] [--metrics]\n  \
         decisive fleet [<dir>...] [--workload Set0..Set5|all --scale <k>] [--seed <n>] [--workers <n>] [--deadline-ms <ms>] [--retries <n>] [--backoff-ms <ms>] [--poison-kills <n>] [--journal <dir>] [--resume] [--montecarlo] [--trials <n>] [--reliability <fit.csv>] [--solver dense|sparse] [--mission-hours <h>] [--format text|json] [--trace-out <trace.json>] [--metrics]\n  \
         decisive store status|compact --cache <dir> [--format text|json]\n  \
         decisive store export|import <snapshot.json> --cache <dir>\n  \
         decisive --version\n\n\
         The run flags (--reliability, --strict, --mission-hours, --solver, --trials, --seed)\n\
         are one unified request spec parsed identically by every analysis verb, the serve\n\
         protocol and the fleet journal; the historical per-verb spellings are aliases of it."
    );
}

/// Flags that consume the following argument as their value.
const VALUE_FLAGS: [&str; 25] = [
    "--algorithm",
    "--solver",
    "--trials",
    "--csv",
    "--json",
    "--cache",
    "--jobs",
    "--reliability",
    "--deadline-ms",
    "--mission-hours",
    "--trace-out",
    "--format",
    "--socket",
    "--watch",
    "--poll-ms",
    "--idle-timeout-ms",
    "--workload",
    "--scale",
    "--seed",
    "--workers",
    "--retries",
    "--backoff-ms",
    "--poison-kills",
    "--journal",
    "--fleet",
];

/// How a verb renders its result: the historical text rendering (the
/// default, byte-stable for scripts that scrape it) or one JSON document
/// per invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

fn output_format(args: &[String]) -> Result<OutputFormat, CliError> {
    match flag_value(args, "--format") {
        None | Some("text") => Ok(OutputFormat::Text),
        Some("json") => Ok(OutputFormat::Json),
        Some(other) => Err(CliError::usage(format!("unknown format `{other}` (text|json)"))),
    }
}

/// Rejects any `--flag` the command does not understand (naming the
/// flag), and any trailing value-flag left without its value.
fn check_flags(command: &str, args: &[String], allowed: &[&str]) -> Result<(), CliError> {
    let mut wants_value: Option<&str> = None;
    for arg in args {
        if wants_value.take().is_some() {
            continue;
        }
        if arg.starts_with("--") {
            if !allowed.contains(&arg.as_str()) {
                return Err(CliError::usage(format!(
                    "unknown flag `{arg}` for `decisive {command}` (allowed: {})",
                    if allowed.is_empty() { "none".to_owned() } else { allowed.join(", ") }
                )));
            }
            if VALUE_FLAGS.contains(&arg.as_str()) {
                wants_value = Some(arg);
            }
        }
    }
    match wants_value {
        Some(flag) => Err(CliError::usage(format!("flag `{flag}` wants a value"))),
        None => Ok(()),
    }
}

/// The positional arguments: everything that is neither a flag nor the
/// value consumed by a value-taking flag.
fn positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if arg.starts_with("--") {
            skip_value = VALUE_FLAGS.contains(&arg.as_str());
        } else {
            out.push(arg.as_str());
        }
    }
    out
}

fn one_path<'a>(command: &str, args: &'a [String]) -> Result<&'a str, CliError> {
    match positionals(args)[..] {
        [path] => Ok(path),
        [] => Err(CliError::usage(format!("`decisive {command}` needs a <path> argument"))),
        _ => Err(CliError::usage(format!("`decisive {command}` takes exactly one path"))),
    }
}

fn two_paths<'a>(command: &str, args: &'a [String]) -> Result<(&'a str, &'a str), CliError> {
    match positionals(args)[..] {
        [a, b] => Ok((a, b)),
        _ => Err(CliError::usage(format!("`decisive {command}` takes exactly two paths"))),
    }
}

fn load(path: &str) -> Result<SsamModel, CliError> {
    persist::load_model(path).map_err(|e| CliError::Failure(e.to_string()))
}

fn top_of(
    model: &SsamModel,
) -> Result<decisive::ssam::id::Idx<decisive::ssam::architecture::Component>, CliError> {
    model
        .components
        .iter()
        .find(|(_, c)| c.parent.is_none())
        .map(|(i, _)| i)
        .ok_or_else(|| CliError::Failure("model has no top-level component".to_owned()))
}

fn cmd_import(args: &[String]) -> Result<(), CliError> {
    check_flags("import", args, &[])?;
    let (input, output) = two_paths("import", args)?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let diagram = decisive::blocks::text::from_text(&text).map_err(|e| e.to_string())?;
    let model = decisive::blocks::to_ssam(&diagram);
    persist::save_model(&model, output).map_err(|e| e.to_string())?;
    println!(
        "imported `{}` ({} blocks, {} connections) -> {output}",
        diagram.name(),
        diagram.block_count(),
        diagram.connections().len()
    );
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), CliError> {
    check_flags("demo", args, &[])?;
    let path = one_path("demo", args)?;
    let (model, _) = case_study::ssam_model();
    persist::save_model(&model, path).map_err(|e| e.to_string())?;
    println!("wrote the power-supply case study ({} elements) to {path}", model.element_count());
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), CliError> {
    check_flags("validate", args, &[])?;
    let path = one_path("validate", args)?;
    let model = load(path)?;
    let issues = decisive::ssam::validate::validate(&model);
    if issues.is_empty() {
        println!("{path}: well-formed ({} elements)", model.element_count());
        Ok(())
    } else {
        for issue in &issues {
            println!("{issue}");
        }
        Err(CliError::Failure(format!("{} issue(s) found", issues.len())))
    }
}

fn cmd_fmea(args: &[String]) -> Result<(), CliError> {
    check_flags("fmea", args, &["--algorithm", "--csv", "--json"])?;
    let path = one_path("fmea", args)?;
    let model = load(path)?;
    let top = top_of(&model)?;
    let algorithm = match flag_value(args, "--algorithm").unwrap_or("cut") {
        "paths" => GraphAlgorithm::ExhaustivePaths,
        "cut" => GraphAlgorithm::CutVertex,
        other => return Err(CliError::usage(format!("unknown algorithm `{other}` (paths|cut)"))),
    };
    let table = graph::run(&model, top, &GraphConfig { algorithm, ..GraphConfig::default() })
        .map_err(|e| e.to_string())?;
    print_table(&table, args)
}

fn cmd_analyze(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "analyze",
        args,
        &[
            "--cache",
            "--jobs",
            "--deadline-ms",
            "--csv",
            "--json",
            "--reliability",
            "--solver",
            "--strict",
            "--format",
            "--trace-out",
            "--metrics",
        ],
    )?;
    let format = output_format(args)?;
    let request = analysis_request(AnalysisOp::Analyze, "analyze", args)?;
    if request.path.ends_with(".bd") {
        return analyze_diagram(&request, args);
    }
    let model = load(&request.path)?;
    let top = top_of(&model)?;
    let (mut engine, sink) = engine_from_flags(args)?;
    install_interrupt_flush(args, sink.as_ref());
    // The trace is flushed even when the analysis fails — that is when
    // the spans are most interesting.
    let result = (|| {
        let table = engine.analyze_graph(&model, top).map_err(|e| e.to_string())?;
        if let Some(dir) = flag_value(args, "--cache") {
            engine.save_cache(dir).map_err(|e| e.to_string())?;
        }
        match format {
            OutputFormat::Text => {
                print_table(&table, args)?;
                print!("{}", engine.stats().render());
                print!("{}", engine.degraded_report().render());
            }
            OutputFormat::Json => {
                write_table_files(&table, args, true)?;
                println!(
                    "{}",
                    output::to_json_string(&AnalyzeOutput::new(table, &engine))
                        .map_err(CliError::Failure)?
                );
            }
        }
        enforce_strict(request.spec.strict, &engine)
    })();
    finish_observability(args, sink)?;
    result
}

/// Builds the verb's [`AnalysisRequest`]: the one positional path plus the
/// unified run spec parsed out of the flag list.
fn analysis_request(
    op: AnalysisOp,
    command: &str,
    args: &[String],
) -> Result<AnalysisRequest, CliError> {
    let path = one_path(command, args)?;
    let spec = RunSpec::from_args(args).map_err(CliError::usage)?;
    Ok(AnalysisRequest::new(op, path, spec))
}

/// `decisive pipeline`: one full DECISIVE iteration through the pass
/// manager — FMEA (graph, plus the injection campaign for `.bd` designs),
/// FTA subtrees, runtime monitors, the HARA risk log and the evaluated
/// assurance case — executed as a DAG with cross-pass parallelism and one
/// shared artefact cache.
fn cmd_pipeline(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "pipeline",
        args,
        &[
            "--cache",
            "--jobs",
            "--deadline-ms",
            "--mission-hours",
            "--csv",
            "--json",
            "--reliability",
            "--solver",
            "--strict",
            "--format",
            "--trace-out",
            "--metrics",
        ],
    )?;
    let format = output_format(args)?;
    let request = analysis_request(AnalysisOp::Pipeline, "pipeline", args)?;
    let (mut engine, sink) = engine_from_flags(args)?;
    install_interrupt_flush(args, sink.as_ref());
    let result = run_pipeline_verb(&request, args, format, &mut engine);
    finish_observability(args, sink)?;
    result
}

/// The `pipeline` body proper, split out so `cmd_pipeline` can flush the
/// trace regardless of how the run ends.
fn run_pipeline_verb(
    request: &AnalysisRequest,
    args: &[String],
    format: OutputFormat,
    engine: &mut Engine,
) -> Result<(), CliError> {
    let path = request.path.as_str();
    let spec = &request.spec;
    let mission_hours = spec.mission_hours_or_default();
    // Both arms keep the loaded data alive for the borrow-carrying input.
    let diagram;
    let reliability;
    let model;
    let (pipeline, input) = if path.ends_with(".bd") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        diagram = decisive::blocks::text::from_text(&text).map_err(|e| e.to_string())?;
        reliability = load_reliability(spec, engine)?;
        let mut ssam = decisive::blocks::to_ssam(&diagram);
        reliability.aggregate_into(&mut ssam);
        model = ssam;
        let top = top_of(&model)?;
        let input = decisive::engine::PipelineInput::for_model(&model, top)
            .with_diagram(&diagram, &reliability)
            .with_injection_config(spec.injection_config())
            .with_mission_hours(mission_hours);
        (decisive::engine::Pipeline::standard(true), input)
    } else {
        model = load(path)?;
        let top = top_of(&model)?;
        let input = decisive::engine::PipelineInput::for_model(&model, top)
            .with_mission_hours(mission_hours);
        (decisive::engine::Pipeline::standard(false), input)
    };

    let run = match engine.run_pipeline(&pipeline, &input) {
        Ok(run) => run,
        Err(e) => {
            // The campaign breaker (and any other pass failure) still
            // leaves health, stats and degradation behind — print them,
            // the operator needs the failed-case list most on failure.
            if let Some(health) = engine.campaign_health() {
                print!("{}", health.render());
            }
            print!("{}", engine.degraded_report().render());
            return Err(CliError::Failure(e.to_string()));
        }
    };
    if let Some(dir) = flag_value(args, "--cache") {
        engine.save_cache(dir).map_err(|e| e.to_string())?;
    }
    if format == OutputFormat::Json {
        if let Some(table) = run.fmea() {
            write_table_files(table, args, true)?;
        }
        println!(
            "{}",
            output::to_json_string(&PipelineOutput::new(&run, engine))
                .map_err(CliError::Failure)?
        );
        return enforce_strict(spec.strict, engine);
    }
    if let Some(table) = run.fmea() {
        print_table(table, args)?;
    }
    if let Some(subtrees) = run.fta() {
        for summary in subtrees {
            if summary.analysable {
                println!(
                    "# fta {}: top probability {:.3e}, {} single point(s), {} cut set(s)",
                    summary.container,
                    summary.top_probability,
                    summary.single_points.len(),
                    summary.minimal_cut_sets.len(),
                );
            }
        }
    }
    if let Some(monitor) = run.monitor() {
        println!("# monitors: {} runtime check(s)", monitor.checks().len());
    }
    if let Some(risk) = run.risk_log() {
        print!("{}", risk.render());
    }
    if let Some(assurance) = run.assurance() {
        print!("{}", assurance.render());
    }
    // The campaign-health render includes the absorbed degraded-mode
    // report, so it is not printed separately here.
    if let Some(health) = engine.campaign_health() {
        print!("{}", health.render());
    } else {
        print!("{}", engine.degraded_report().render());
    }
    print!("{}", engine.stats().render());
    enforce_strict(spec.strict, engine)
}

/// `decisive passes`: the pass DAG in topological order, with each pass's
/// dependencies, cache namespaces and how many cache entries those
/// namespaces currently hold (pass `--cache` to inspect a persisted one).
/// The optional path only selects the pipeline shape: `.bd` designs
/// include the injection pass.
fn cmd_passes(args: &[String]) -> Result<(), CliError> {
    check_flags("passes", args, &["--cache", "--jobs", "--format"])?;
    let format = output_format(args)?;
    let with_injection = match positionals(args)[..] {
        [] => false,
        [path] => path.ends_with(".bd"),
        _ => return Err(CliError::usage("`decisive passes` takes at most one path")),
    };
    let (engine, _) = engine_from_flags(args)?;
    let pipeline = decisive::engine::Pipeline::standard(with_injection);
    let statuses = engine.pipeline_status(&pipeline).map_err(|e| e.to_string())?;
    if format == OutputFormat::Json {
        println!(
            "{}",
            output::to_json_string(&PassesOutput::new(&statuses)).map_err(CliError::Failure)?
        );
        return Ok(());
    }
    println!("# pass pipeline ({} pass(es), topological order)", statuses.len());
    for status in statuses {
        let deps = if status.depends_on.is_empty() {
            "-".to_owned()
        } else {
            status.depends_on.join(", ")
        };
        let kinds: Vec<&str> = status.kinds.iter().map(|k| k.tag()).collect();
        println!(
            "{:<16} needs [{deps}]  artefacts [{}]  cached {}",
            status.id,
            kinds.join(", "),
            status.cached_entries,
        );
    }
    Ok(())
}

fn cmd_rerun(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "rerun",
        args,
        &[
            "--cache",
            "--jobs",
            "--deadline-ms",
            "--csv",
            "--json",
            "--reliability",
            "--strict",
            "--trace-out",
            "--metrics",
        ],
    )?;
    let (old_path, new_path) = two_paths("rerun", args)?;
    let spec = RunSpec::from_args(args).map_err(CliError::usage)?;
    if new_path.ends_with(".bd") || old_path.ends_with(".bd") {
        if !(new_path.ends_with(".bd") && old_path.ends_with(".bd")) {
            return Err(CliError::usage(
                "`decisive rerun` needs both paths to be .bd files (or both SSAM .json)",
            ));
        }
        // The injection cache is content-addressed by the whole circuit:
        // rows of an unchanged diagram are pure hits, any edit misses.
        let request = AnalysisRequest::new(AnalysisOp::Analyze, new_path, spec);
        return analyze_diagram(&request, args);
    }
    let old_model = load(old_path)?;
    let new_model = load(new_path)?;
    let top = top_of(&new_model)?;
    let (mut engine, sink) = engine_from_flags(args)?;
    install_interrupt_flush(args, sink.as_ref());
    let result = (|| {
        let (table, report) =
            engine.rerun(&old_model, &new_model, top).map_err(|e| e.to_string())?;
        print!("{}", report.render());
        if let Some(dir) = flag_value(args, "--cache") {
            engine.save_cache(dir).map_err(|e| e.to_string())?;
        }
        print_table(&table, args)?;
        print!("{}", engine.stats().render());
        print!("{}", engine.degraded_report().render());
        enforce_strict(spec.strict, &engine)
    })();
    finish_observability(args, sink)?;
    result
}

/// The block-diagram arm of `analyze`/`rerun`: a supervised fault-injection
/// campaign through the incremental engine, with the campaign-health report
/// printed after the table — even when the campaign breaker aborts the run,
/// since that is exactly when the failed-case list matters.
fn analyze_diagram(request: &AnalysisRequest, args: &[String]) -> Result<(), CliError> {
    let path = request.path.as_str();
    let spec = &request.spec;
    let format = output_format(args)?;
    let (mut engine, sink) = engine_from_flags(args)?;
    install_interrupt_flush(args, sink.as_ref());
    let result = (|| {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let diagram = decisive::blocks::text::from_text(&text).map_err(|e| e.to_string())?;
        let reliability = load_reliability(spec, &mut engine)?;
        let table = match engine.analyze_injection(&diagram, &reliability, &spec.injection_config())
        {
            Ok(table) => table,
            Err(e) => {
                if let Some(health) = engine.campaign_health() {
                    print!("{}", health.render());
                }
                return Err(CliError::Failure(e.to_string()));
            }
        };
        if let Some(dir) = flag_value(args, "--cache") {
            engine.save_cache(dir).map_err(|e| e.to_string())?;
        }
        if format == OutputFormat::Json {
            write_table_files(&table, args, true)?;
            println!(
                "{}",
                output::to_json_string(&AnalyzeOutput::new(table, &engine))
                    .map_err(CliError::Failure)?
            );
            return enforce_strict(spec.strict, &engine);
        }
        print_table(&table, args)?;
        // The campaign-health render includes the absorbed degraded-mode
        // report, so it is not printed separately here.
        if let Some(health) = engine.campaign_health() {
            print!("{}", health.render());
        } else {
            print!("{}", engine.degraded_report().render());
        }
        print!("{}", engine.stats().render());
        enforce_strict(spec.strict, &engine)
    })();
    finish_observability(args, sink)?;
    result
}

/// Flag set shared by `montecarlo` and `recommend` (the `montecarlo`-only
/// `--trials`/`--seed` flags are harmless aliases of spec defaults for
/// `recommend`, so both verbs accept the full unified-request set).
const STOCHASTIC_FLAGS: [&str; 11] = [
    "--cache",
    "--jobs",
    "--deadline-ms",
    "--reliability",
    "--solver",
    "--strict",
    "--trials",
    "--seed",
    "--format",
    "--trace-out",
    "--metrics",
];

/// Loads the `.bd` diagram a stochastic/recommendation verb applies to;
/// the SSAM graph path has no injection campaign to sample or cover, so
/// anything else is a usage error.
fn load_diagram(request: &AnalysisRequest) -> Result<decisive::blocks::BlockDiagram, CliError> {
    let path = request.path.as_str();
    if !path.ends_with(".bd") {
        return Err(CliError::usage(format!(
            "`decisive {}` needs a `.bd` block-diagram path, got `{path}`",
            request.op.name()
        )));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    decisive::blocks::text::from_text(&text).map_err(|e| CliError::Failure(e.to_string()))
}

/// `decisive montecarlo`: a stochastic injection campaign — `--trials`
/// perturbed reliability annexes (lognormal FIT noise, jittered
/// distribution shares), each run through the supervised campaign, and
/// the three architecture metrics reported as mean ± 95 % CI. Seeded by
/// `--seed`; the report is bitwise identical for a given seed regardless
/// of `--jobs` or cache warmth.
fn cmd_montecarlo(args: &[String]) -> Result<(), CliError> {
    check_flags("montecarlo", args, &STOCHASTIC_FLAGS)?;
    let format = output_format(args)?;
    let request = analysis_request(AnalysisOp::MonteCarlo, "montecarlo", args)?;
    let spec = &request.spec;
    let (mut engine, sink) = engine_from_flags(args)?;
    install_interrupt_flush(args, sink.as_ref());
    let result = (|| {
        let diagram = load_diagram(&request)?;
        let reliability = load_reliability(spec, &mut engine)?;
        let report = engine
            .analyze_montecarlo(
                &diagram,
                &reliability,
                &spec.injection_config(),
                spec.trials,
                spec.seed,
            )
            .map_err(|e| e.to_string())?;
        if let Some(dir) = flag_value(args, "--cache") {
            engine.save_cache(dir).map_err(|e| e.to_string())?;
        }
        match format {
            OutputFormat::Text => {
                print!("{}", report.render());
                print!("{}", engine.degraded_report().render());
                print!("{}", engine.stats().render());
            }
            OutputFormat::Json => {
                println!(
                    "{}",
                    output::to_json_string(&MonteCarloOutput::new(report, &engine))
                        .map_err(CliError::Failure)?
                );
            }
        }
        enforce_strict(spec.strict, &engine)
    })();
    finish_observability(args, sink)?;
    result
}

/// `decisive recommend`: match the safety-pattern catalog (comparison
/// monitor, redundant channel, watchdog, range check) against every
/// uncovered failure mode of the analysed design, score the candidate
/// deployments with the Pareto search, and print the ranked table with
/// projected SPFM/LFM/PMHF deltas.
fn cmd_recommend(args: &[String]) -> Result<(), CliError> {
    check_flags("recommend", args, &STOCHASTIC_FLAGS)?;
    let format = output_format(args)?;
    let request = analysis_request(AnalysisOp::Recommend, "recommend", args)?;
    let spec = &request.spec;
    let (mut engine, sink) = engine_from_flags(args)?;
    install_interrupt_flush(args, sink.as_ref());
    let result = (|| {
        let diagram = load_diagram(&request)?;
        let reliability = load_reliability(spec, &mut engine)?;
        let report = engine
            .analyze_recommend(&diagram, &reliability, &spec.injection_config())
            .map_err(|e| e.to_string())?;
        if let Some(dir) = flag_value(args, "--cache") {
            engine.save_cache(dir).map_err(|e| e.to_string())?;
        }
        match format {
            OutputFormat::Text => {
                print!("{}", report.render());
                print!("{}", engine.degraded_report().render());
                print!("{}", engine.stats().render());
            }
            OutputFormat::Json => {
                println!(
                    "{}",
                    output::to_json_string(&RecommendOutput::new(report, &engine))
                        .map_err(CliError::Failure)?
                );
            }
        }
        enforce_strict(spec.strict, &engine)
    })();
    finish_observability(args, sink)?;
    result
}

/// Resolves the spec's reliability override. Without `strict` the file is
/// loaded leniently: malformed rows degrade per the MIL-HDBK-338B defaults
/// (one provenance warning each), and a missing file falls back to the
/// paper's Table II with an unresolved-reference entry — all recorded in
/// the engine's degraded-mode report. Under `strict` any defect is an
/// immediate failure.
fn load_reliability(spec: &RunSpec, engine: &mut Engine) -> Result<ReliabilityDb, CliError> {
    let strict = spec.strict;
    let Some(csv) = spec.reliability.as_deref() else {
        return Ok(ReliabilityDb::paper_table_ii());
    };
    match std::fs::read_to_string(csv) {
        Ok(text) if strict => ReliabilityDb::from_csv_str(&text).map_err(|e| e.to_string().into()),
        Ok(text) => {
            let load = ReliabilityDb::from_csv_str_lenient(&text, csv);
            let degraded = engine.degraded_report_mut();
            degraded.substituted_fits.extend(load.substitutions);
            degraded.notes.extend(load.diagnostics.iter().map(ToString::to_string));
            Ok(load.db)
        }
        Err(e) if strict => Err(CliError::Failure(format!("{csv}: {e}"))),
        Err(e) => {
            engine
                .degraded_report_mut()
                .unresolved_references
                .push(format!("{csv}: {e}; used paper Table II defaults"));
            Ok(ReliabilityDb::paper_table_ii())
        }
    }
}

/// Applies `--strict`: any unsolvable or panicked campaign case fails the
/// invocation even though its row was conservatively classified, and any
/// degradation (quarantined cache entries, substituted FITs, unresolved
/// references, timed-out jobs) is promoted to a failure. A pristine run
/// without campaign health (the SSAM graph path) passes vacuously.
fn enforce_strict(strict: bool, engine: &Engine) -> Result<(), CliError> {
    if !strict {
        return Ok(());
    }
    if let Some(health) = engine.campaign_health() {
        let failed = health.unsolvable + health.panicked;
        if failed > 0 {
            return Err(CliError::Failure(format!(
                "--strict: {failed} campaign case(s) unsolvable or panicked: {}",
                health.failed_cases.join(", ")
            )));
        }
    }
    let degraded = engine.degraded_report();
    if degraded.is_degraded() {
        return Err(CliError::Failure(format!(
            "--strict: run degraded in {} way(s) (see degraded-mode report above)",
            degraded.degradation_count()
        )));
    }
    Ok(())
}

/// Builds an [`Engine`] through [`Engine::builder`] from
/// `--jobs`/`--deadline-ms`/`--cache`, attaching a recording telemetry
/// sink when `--trace-out` or `--metrics` asks for one. The returned sink
/// (when present) is drained by [`finish_observability`] after the verb's
/// body, succeed or fail.
fn engine_from_flags(args: &[String]) -> Result<(Engine, Option<Arc<RecordingSink>>), CliError> {
    let mut builder = Engine::builder();
    if let Some(n) = flag_value(args, "--jobs") {
        builder = builder.jobs(n.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
            CliError::usage(format!("--jobs wants a positive integer, got `{n}`"))
        })?);
    }
    if let Some(ms) = flag_value(args, "--deadline-ms") {
        let ms =
            ms.parse::<f64>().ok().filter(|&ms| ms > 0.0 && ms.is_finite()).ok_or_else(|| {
                CliError::usage(format!("--deadline-ms wants a positive number, got `{ms}`"))
            })?;
        builder = builder.deadline_ms(ms);
    }
    if let Some(dir) = flag_value(args, "--cache") {
        builder = builder.cache_dir(dir);
    }
    let sink = if flag_value(args, "--trace-out").is_some() || args.iter().any(|a| a == "--metrics")
    {
        let (telemetry, sink) = Telemetry::recording();
        builder = builder.telemetry(telemetry);
        Some(sink)
    } else {
        None
    };
    let engine = builder.build().map_err(|e| e.to_string())?;
    Ok((engine, sink))
}

/// Drains the recording sink (when one was attached): writes the
/// chrome://tracing JSON to `--trace-out` and prints the one-line
/// `OBS_metrics` summary for `--metrics`. The trace-file note goes to
/// stderr so `--format json` stdout stays a single parseable document.
fn finish_observability(args: &[String], sink: Option<Arc<RecordingSink>>) -> Result<(), CliError> {
    let Some(sink) = sink else { return Ok(()) };
    flush_observability(
        flag_value(args, "--trace-out"),
        args.iter().any(|a| a == "--metrics"),
        &sink,
    )
}

/// The flush itself, shared by the normal end-of-run path and the
/// interrupt watchdog.
fn flush_observability(
    trace_out: Option<&str>,
    metrics: bool,
    sink: &RecordingSink,
) -> Result<(), CliError> {
    let report = sink.drain();
    if let Some(out) = trace_out {
        std::fs::write(out, report.to_chrome_json())
            .map_err(|e| CliError::Failure(format!("{out}: {e}")))?;
        eprintln!("# trace: {} span(s) written to {out}", report.spans.len());
    }
    if metrics {
        println!("OBS_metrics {}", report.metrics_json());
    }
    Ok(())
}

/// Arms the SIGINT/SIGTERM watchdog for a one-shot verb: on interrupt the
/// recording sink is drained and flushed — a valid (partial) trace beats
/// a missing or truncated one — before the process exits with 130. A
/// no-op when no observability was requested.
fn install_interrupt_flush(args: &[String], sink: Option<&Arc<RecordingSink>>) {
    let Some(sink) = sink else { return };
    let sink = sink.clone();
    let trace_out = flag_value(args, "--trace-out").map(str::to_owned);
    let metrics = args.iter().any(|a| a == "--metrics");
    decisive::serve::interrupt::install();
    decisive::serve::interrupt::watchdog(move || {
        if let Err(CliError::Failure(message) | CliError::Usage(message)) =
            flush_observability(trace_out.as_deref(), metrics, &sink)
        {
            eprintln!("error: {message}");
        }
    });
}

/// Prints a table as CSV with its SPFM summary line, honouring the
/// `--csv`/`--json` output flags.
fn print_table(table: &decisive::core::fmea::FmeaTable, args: &[String]) -> Result<(), CliError> {
    print!("{}", table.to_csv_string());
    let m = metrics::compute(table);
    println!(
        "# SPFM {:.2}% ({}) over {} FIT of safety-related hardware",
        m.spfm * 100.0,
        m.achieved_asil,
        m.total_sr_fit.value()
    );
    write_table_files(table, args, false)
}

/// Honours the `--csv`/`--json` file-output flags; in JSON output mode
/// the `# written to` notes move to stderr to keep stdout machine-clean.
fn write_table_files(
    table: &decisive::core::fmea::FmeaTable,
    args: &[String],
    notes_to_stderr: bool,
) -> Result<(), CliError> {
    let note = |line: String| {
        if notes_to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    if let Some(out) = flag_value(args, "--csv") {
        std::fs::write(out, table.to_csv_string()).map_err(|e| e.to_string())?;
        note(format!("# written to {out}"));
    }
    if let Some(out) = flag_value(args, "--json") {
        persist::save_table(table, out).map_err(|e| e.to_string())?;
        note(format!("# written to {out}"));
    }
    Ok(())
}

fn cmd_spfm(args: &[String]) -> Result<(), CliError> {
    check_flags("spfm", args, &[])?;
    let path = one_path("spfm", args)?;
    let table = persist::load_table(path).map_err(|e| e.to_string())?;
    let m = metrics::compute(&table);
    println!("system:            {}", table.system);
    println!("rows:              {}", table.rows.len());
    println!("safety-related:    {:?}", table.safety_related_components());
    println!("SPFM:              {:.4} ({:.2}%)", m.spfm, m.spfm * 100.0);
    println!("achieved ASIL:     {}", m.achieved_asil);
    println!("SR hardware FIT:   {}", m.total_sr_fit);
    println!("residual SPF FIT:  {}", m.residual_spf_fit);
    Ok(())
}

fn cmd_render(args: &[String]) -> Result<(), CliError> {
    check_flags("render", args, &["--dot"])?;
    let path = one_path("render", args)?;
    let model = load(path)?;
    if args.iter().any(|a| a == "--dot") {
        let top = top_of(&model)?;
        print!("{}", decisive::ssam::render::dot_graph(&model, top));
    } else {
        print!("{}", decisive::ssam::render::ascii_tree(&model));
    }
    Ok(())
}

fn cmd_monitor(args: &[String]) -> Result<(), CliError> {
    check_flags("monitor", args, &[])?;
    let path = one_path("monitor", args)?;
    let model = load(path)?;
    let monitor = RuntimeMonitor::generate(&model);
    if monitor.checks().is_empty() {
        println!("no runtime checks (no dynamic components with limited IO nodes)");
    }
    for check in monitor.checks() {
        println!(
            "{}::{} in [{}, {}]",
            check.component,
            check.io_node,
            check.lower.map(|v| v.to_string()).unwrap_or_else(|| "-inf".into()),
            check.upper.map(|v| v.to_string()).unwrap_or_else(|| "+inf".into()),
        );
    }
    Ok(())
}

fn cmd_impact(args: &[String]) -> Result<(), CliError> {
    check_flags("impact", args, &[])?;
    let (old_path, new_path) = two_paths("impact", args)?;
    let old_model = load(old_path)?;
    let new_model = load(new_path)?;
    let report = decisive::core::impact::diff_models(&old_model, &new_model);
    print!("{}", report.render());
    if report.requires_reanalysis() {
        Err(CliError::Failure("re-analysis required".to_owned()))
    } else {
        Ok(())
    }
}

fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    check_flags("trace", args, &[])?;
    let path = one_path("trace", args)?;
    let model = load(path)?;
    let report = decisive::core::trace::traceability_report(&model);
    print!("{}", decisive::core::trace::render_report(&report));
    let gaps = report.iter().filter(|e| e.is_unassociated()).count();
    println!("# {} failure mode(s), {} without a hazard association", report.len(), gaps);
    Ok(())
}

/// `decisive serve`: the persistent analysis daemon. Default transport is
/// line-JSON on stdin/stdout; `--socket <path>` listens on a unix socket
/// (many concurrent connections, each multiplexing any number of
/// sessions); `--watch <model>` re-runs the pipeline on every mtime
/// change of the model file and streams the results. The engine flags
/// (`--cache`, `--jobs`, `--deadline-ms`, `--reliability`,
/// `--mission-hours`) set daemon-wide defaults; requests can override
/// reliability and mission time per call.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "serve",
        args,
        &[
            "--socket",
            "--watch",
            "--poll-ms",
            "--idle-timeout-ms",
            "--cache",
            "--jobs",
            "--deadline-ms",
            "--reliability",
            "--mission-hours",
            "--fleet",
            "--trace-out",
            "--metrics",
        ],
    )?;
    if !positionals(args).is_empty() {
        return Err(CliError::usage(
            "`decisive serve` takes no positional arguments (requests carry their model paths)",
        ));
    }
    let socket = flag_value(args, "--socket");
    let watch_path = flag_value(args, "--watch");
    if socket.is_some() && watch_path.is_some() {
        return Err(CliError::usage("--socket and --watch are mutually exclusive"));
    }
    if flag_value(args, "--poll-ms").is_some() && watch_path.is_none() {
        return Err(CliError::usage("--poll-ms only applies to --watch mode"));
    }
    let poll_ms = match flag_value(args, "--poll-ms") {
        Some(ms) => ms.parse::<u64>().ok().filter(|&ms| ms > 0).ok_or_else(|| {
            CliError::usage(format!("--poll-ms wants a positive integer, got `{ms}`"))
        })?,
        None => 250,
    };
    let jobs = match flag_value(args, "--jobs") {
        Some(n) => Some(n.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
            CliError::usage(format!("--jobs wants a positive integer, got `{n}`"))
        })?),
        None => None,
    };
    let deadline_ms = match flag_value(args, "--deadline-ms") {
        Some(ms) => {
            Some(ms.parse::<f64>().ok().filter(|&ms| ms > 0.0 && ms.is_finite()).ok_or_else(
                || CliError::usage(format!("--deadline-ms wants a positive number, got `{ms}`")),
            )?)
        }
        None => None,
    };
    // The daemon-wide defaults are a unified run spec like any other
    // front end's; requests override per call.
    let defaults = RunSpec::from_args(args).map_err(CliError::usage)?;
    let sink = if flag_value(args, "--trace-out").is_some() || args.iter().any(|a| a == "--metrics")
    {
        Some(Telemetry::recording())
    } else {
        None
    };
    let (telemetry, sink) = match sink {
        Some((telemetry, sink)) => (telemetry, Some(sink)),
        None => (Telemetry::noop(), None),
    };
    let idle_timeout_ms = match flag_value(args, "--idle-timeout-ms") {
        Some(ms) => {
            if socket.is_none() {
                return Err(CliError::usage("--idle-timeout-ms only applies to --socket mode"));
            }
            Some(ms.parse::<u64>().ok().filter(|&ms| ms > 0).ok_or_else(|| {
                CliError::usage(format!("--idle-timeout-ms wants a positive integer, got `{ms}`"))
            })?)
        }
        None => None,
    };
    let options = decisive::serve::ServeOptions {
        jobs,
        deadline_ms,
        cache_dir: flag_value(args, "--cache").map(std::path::PathBuf::from),
        reliability: defaults.reliability.clone(),
        mission_hours: defaults.mission_hours,
        idle_timeout_ms,
        fleet_status: flag_value(args, "--fleet")
            .map(|dir| std::path::Path::new(dir).join(decisive::fleet::STATUS_FILE)),
    };
    let daemon = decisive::serve::Daemon::new(options, telemetry).map_err(CliError::Failure)?;
    // The serve loops poll the interrupt flag and exit through their
    // normal path (persisting the shared store), so no watchdog here —
    // the flush below runs on interrupt too.
    decisive::serve::interrupt::install();
    let served = if let Some(path) = watch_path {
        let watch_options = decisive::serve::WatchOptions { poll_ms, max_results: None };
        decisive::serve::watch::watch(
            &daemon,
            std::path::Path::new(path),
            "watch",
            &watch_options,
            &mut std::io::stdout(),
        )
        .map(|_| ())
        .and_then(|()| daemon.persist().map_err(std::io::Error::other))
        .map_err(|e| CliError::Failure(e.to_string()))
    } else if let Some(path) = socket {
        serve_on_socket(daemon, path)
    } else {
        decisive::serve::daemon::run_stdio(&daemon, std::io::stdin(), std::io::stdout())
            .map_err(|e| CliError::Failure(e.to_string()))
    };
    finish_observability(args, sink)?;
    served
}

/// Parses a positive-integer flag with a default.
fn uint_flag(args: &[String], flag: &str, default: u64) -> Result<u64, CliError> {
    match flag_value(args, flag) {
        Some(n) => {
            n.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                CliError::usage(format!("{flag} wants a positive integer, got `{n}`"))
            })
        }
        None => Ok(default),
    }
}

/// `decisive fleet`: a fault-tolerant sweep of the full analysis pipeline
/// over every model under the given directories and/or scaled instances of
/// the Table VI workload sets, sharded across worker *processes* so a
/// crash, hang or poison model never takes down the campaign. Terminal
/// rows are journaled (append + fsync) through the segmented store, so
/// `--resume` after any interruption re-runs only unfinished models.
/// Under `--montecarlo` each `.bd` model instead runs the stochastic
/// campaign and its row reports the SPFM mean plus 95%-CI half-width.
fn cmd_fleet(args: &[String]) -> Result<(), CliError> {
    check_flags(
        "fleet",
        args,
        &[
            "--workload",
            "--scale",
            "--seed",
            "--workers",
            "--deadline-ms",
            "--retries",
            "--backoff-ms",
            "--poison-kills",
            "--journal",
            "--resume",
            "--montecarlo",
            "--trials",
            "--reliability",
            "--solver",
            "--mission-hours",
            "--format",
            "--trace-out",
            "--metrics",
        ],
    )?;
    let format = output_format(args)?;
    let mut tasks = Vec::new();
    for dir in positionals(args) {
        tasks.extend(decisive::fleet::discover(std::path::Path::new(dir))?);
    }
    if let Some(selector) = flag_value(args, "--workload") {
        let scale = uint_flag(args, "--scale", 10)?;
        let seed = match flag_value(args, "--seed") {
            Some(n) => n.parse::<u64>().map_err(|_| {
                CliError::usage(format!("--seed wants an unsigned integer, got `{n}`"))
            })?,
            None => 42,
        };
        tasks.extend(
            decisive::fleet::workload_tasks(selector, scale, seed).map_err(CliError::usage)?,
        );
    } else if flag_value(args, "--scale").is_some() {
        return Err(CliError::usage("--scale only applies together with --workload"));
    }
    if tasks.is_empty() {
        return Err(CliError::usage(
            "`decisive fleet` needs models: a <dir> with .bd/.json files and/or --workload <set|all>",
        ));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let journal = flag_value(args, "--journal").unwrap_or(".decisive-fleet");
    let mut options = decisive::fleet::FleetOptions::new(journal, exe);
    options.workers = uint_flag(args, "--workers", 4)? as usize;
    options.deadline_ms = uint_flag(args, "--deadline-ms", 30_000)?;
    let retries = uint_flag(args, "--retries", 2)? as usize;
    let backoff_ms = match flag_value(args, "--backoff-ms") {
        Some(ms) => {
            ms.parse::<f64>().ok().filter(|&ms| ms >= 0.0 && ms.is_finite()).ok_or_else(|| {
                CliError::usage(format!("--backoff-ms wants a non-negative number, got `{ms}`"))
            })?
        }
        None => 10.0,
    };
    options.retry = decisive::engine::RetryPolicy::backoff(retries, backoff_ms);
    options.poison_kills = uint_flag(args, "--poison-kills", 2)? as u32;
    options.resume = args.iter().any(|a| a == "--resume");
    // The unified run spec travels to every worker on the task line;
    // `--seed` seeds both the workload generators and (under
    // `--montecarlo`) the stochastic campaigns.
    options.spec = RunSpec::from_args(args).map_err(CliError::usage)?;
    if args.iter().any(|a| a == "--montecarlo") {
        options.op = AnalysisOp::MonteCarlo;
    }
    let (telemetry, sink) =
        if flag_value(args, "--trace-out").is_some() || args.iter().any(|a| a == "--metrics") {
            let (telemetry, sink) = Telemetry::recording();
            (telemetry, Some(sink))
        } else {
            (Telemetry::noop(), None)
        };
    let result = decisive::fleet::run_fleet(tasks, &options, &telemetry).map_err(CliError::Failure);
    finish_observability(args, sink)?;
    let report = result?;
    match format {
        OutputFormat::Text => print!("{}", report.render()),
        OutputFormat::Json => {
            println!("{}", decisive::federation::json::to_string(&report.to_value()));
        }
    }
    Ok(())
}

/// `decisive store <verb> --cache <dir>` — direct maintenance of the
/// segmented artifact store backing `--cache`:
///
/// - `status`: recovery + health snapshot (segments, live/dead frames,
///   quarantine counter, last compaction);
/// - `compact`: force a compaction regardless of the dead-frame
///   thresholds and report what it reclaimed;
/// - `export <snapshot.json>`: write the live entries as a portable v3
///   `cache.json` document (the pre-store wholesale format);
/// - `import <snapshot.json>`: append a v3 document's entries into the
///   log (invalid entries are audited and skipped, like the engine's
///   lenient load).
///
/// Opening the store performs the same recovery the engine does: torn
/// tails truncate, corrupt frames quarantine, a legacy `cache.json` in
/// the directory migrates into the log once.
fn cmd_store(args: &[String]) -> Result<(), CliError> {
    check_flags("store", args, &["--cache", "--format"])?;
    let format = output_format(args)?;
    let positionals = positionals(args);
    let Some((&verb, rest)) = positionals.split_first() else {
        return Err(CliError::usage("`decisive store` needs a verb: status|compact|export|import"));
    };
    let dir = flag_value(args, "--cache")
        .ok_or_else(|| CliError::usage("`decisive store` needs --cache <dir>"))?;
    let (shared, recovery) = decisive::engine::SharedStore::open_durable(
        std::path::Path::new(dir),
        decisive::engine::StoreOptions::default(),
        Telemetry::noop(),
    )
    .map_err(|e| CliError::Failure(e.to_string()))?;
    let log = shared.durable().expect("open_durable always attaches a log").clone();
    let snapshot_path = |what: &str| match rest {
        [path] => Ok(*path),
        _ => Err(CliError::usage(format!(
            "`decisive store {what}` takes exactly one <snapshot.json> path"
        ))),
    };
    use decisive::federation::{json, Value};
    match verb {
        "status" => {
            if !rest.is_empty() {
                return Err(CliError::usage("`decisive store status` takes no extra arguments"));
            }
            let health = log.health();
            match format {
                OutputFormat::Json => {
                    let document = Value::record([
                        ("recovery", recovery.to_value()),
                        ("health", health.to_value()),
                    ]);
                    println!("{}", json::to_string(&document));
                }
                OutputFormat::Text => {
                    println!(
                        "# store: {} segment(s), {} live / {} dead frame(s) ({:.1}% live), \
                         generation {}, {} byte(s)",
                        health.segments,
                        health.live_frames,
                        health.dead_frames,
                        health.live_ratio() * 100.0,
                        health.generation,
                        health.bytes,
                    );
                    println!(
                        "# recovery: {}{}",
                        if recovery.is_clean() { "clean" } else { "repaired" },
                        format_args!(
                            " ({} quarantined frame(s), {} truncated byte(s), \
                             {} orphan segment(s) removed, {} legacy entr(ies) migrated)",
                            recovery.quarantined_frames,
                            recovery.truncated_bytes,
                            recovery.removed_orphan_segments,
                            recovery.migrated_entries,
                        ),
                    );
                    for note in &recovery.notes {
                        println!("#   {note}");
                    }
                    if let Some(compaction) = &health.last_compaction {
                        println!(
                            "# last compaction: {} live copied, {} dropped, {} byte(s) reclaimed",
                            compaction.live_frames,
                            compaction.dropped_frames,
                            compaction.reclaimed_bytes,
                        );
                    }
                }
            }
        }
        "compact" => {
            if !rest.is_empty() {
                return Err(CliError::usage("`decisive store compact` takes no extra arguments"));
            }
            let summary = log.compact().map_err(|e| CliError::Failure(e.to_string()))?;
            match format {
                OutputFormat::Json => println!("{}", json::to_string(&summary.to_value())),
                OutputFormat::Text => println!(
                    "# compacted: {} -> {} segment(s), {} live frame(s) kept, {} dropped, \
                     {} byte(s) reclaimed in {:.1} ms",
                    summary.segments_before,
                    summary.segments_after,
                    summary.live_frames,
                    summary.dropped_frames,
                    summary.reclaimed_bytes,
                    summary.wall_ms,
                ),
            }
        }
        "export" => {
            let out = snapshot_path("export")?;
            let snapshot = log.export();
            let entries = snapshot.len();
            std::fs::write(out, json::to_string(&snapshot.to_value()))
                .map_err(|e| CliError::Failure(format!("{out}: {e}")))?;
            println!("# exported {entries} entr(ies) to {out}");
        }
        "import" => {
            let source = snapshot_path("import")?;
            let text = std::fs::read_to_string(source)
                .map_err(|e| CliError::Failure(format!("{source}: {e}")))?;
            let value =
                json::parse(&text).map_err(|e| CliError::Failure(format!("{source}: {e}")))?;
            let (snapshot, report, _) = decisive::engine::CacheStore::from_value_audited(&value);
            let imported = log.import(&snapshot).map_err(|e| CliError::Failure(e.to_string()))?;
            println!("# imported {imported} entr(ies) from {source}");
            for reason in &report.reasons {
                eprintln!("# skipped: {reason}");
            }
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown store verb `{other}` (status|compact|export|import)"
            )));
        }
    }
    Ok(())
}

#[cfg(unix)]
fn serve_on_socket(daemon: decisive::serve::Daemon, path: &str) -> Result<(), CliError> {
    eprintln!("# serve: listening on {path}");
    decisive::serve::daemon::run_socket(&Arc::new(daemon), std::path::Path::new(path))
        .map_err(|e| CliError::Failure(e.to_string()))
}

#[cfg(not(unix))]
fn serve_on_socket(_daemon: decisive::serve::Daemon, _path: &str) -> Result<(), CliError> {
    Err(CliError::Failure("--socket needs a unix platform (use stdio mode)".to_owned()))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].as_str())
}
