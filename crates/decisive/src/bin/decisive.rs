//! `decisive` — command-line front end to the toolchain: validate, analyse
//! and render SSAM models persisted as JSON.
//!
//! ```text
//! decisive demo model.json                 # write the case-study model
//! decisive validate model.json             # SSAM well-formedness report
//! decisive fmea model.json [--csv out.csv] # automated FMEA (Algorithm 1)
//! decisive spfm table.json                 # metrics of a saved FMEA table
//! decisive render model.json [--dot]       # ASCII tree or Graphviz DOT
//! decisive monitor model.json              # generated runtime checks
//! ```

use std::process::ExitCode;

use decisive::core::fmea::graph::{self, GraphAlgorithm, GraphConfig};
use decisive::core::monitor::RuntimeMonitor;
use decisive::core::{case_study, metrics, persist};
use decisive::ssam::model::SsamModel;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("import") => cmd_import(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("fmea") => cmd_fmea(&args[1..]),
        Some("spfm") => cmd_spfm(&args[1..]),
        Some("render") => cmd_render(&args[1..]),
        Some("monitor") => cmd_monitor(&args[1..]),
        Some("impact") => cmd_impact(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("--help" | "-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "decisive — iterative automated safety analysis\n\n\
         usage:\n  decisive demo <model.json>\n  decisive import <design.bd> <model.json>\n  decisive validate <model.json>\n  \
         decisive fmea <model.json> [--algorithm paths|cut] [--csv <out.csv>] [--json <out.json>]\n  \
         decisive spfm <table.json>\n  decisive render <model.json> [--dot]\n  \
         decisive monitor <model.json>\n  decisive impact <old.json> <new.json>\n  \
         decisive trace <model.json>"
    );
}

fn required_path(args: &[String]) -> Result<&str, String> {
    args.first().map(String::as_str).ok_or_else(|| "missing <path> argument".to_owned())
}

fn load(path: &str) -> Result<SsamModel, String> {
    persist::load_model(path).map_err(|e| e.to_string())
}

fn top_of(model: &SsamModel) -> Result<decisive::ssam::id::Idx<decisive::ssam::architecture::Component>, String> {
    model
        .components
        .iter()
        .find(|(_, c)| c.parent.is_none())
        .map(|(i, _)| i)
        .ok_or_else(|| "model has no top-level component".to_owned())
}

fn cmd_import(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("usage: decisive import <design.bd> <model.json>".to_owned());
    };
    let text = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let diagram = decisive::blocks::text::from_text(&text).map_err(|e| e.to_string())?;
    let model = decisive::blocks::to_ssam(&diagram);
    persist::save_model(&model, output).map_err(|e| e.to_string())?;
    println!(
        "imported `{}` ({} blocks, {} connections) -> {output}",
        diagram.name(),
        diagram.block_count(),
        diagram.connections().len()
    );
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let path = required_path(args)?;
    let (model, _) = case_study::ssam_model();
    persist::save_model(&model, path).map_err(|e| e.to_string())?;
    println!("wrote the power-supply case study ({} elements) to {path}", model.element_count());
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let path = required_path(args)?;
    let model = load(path)?;
    let issues = decisive::ssam::validate::validate(&model);
    if issues.is_empty() {
        println!("{path}: well-formed ({} elements)", model.element_count());
        Ok(())
    } else {
        for issue in &issues {
            println!("{issue}");
        }
        Err(format!("{} issue(s) found", issues.len()))
    }
}

fn cmd_fmea(args: &[String]) -> Result<(), String> {
    let path = required_path(args)?;
    let model = load(path)?;
    let top = top_of(&model)?;
    let algorithm = match flag_value(args, "--algorithm").unwrap_or("cut") {
        "paths" => GraphAlgorithm::ExhaustivePaths,
        "cut" => GraphAlgorithm::CutVertex,
        other => return Err(format!("unknown algorithm `{other}` (paths|cut)")),
    };
    let table = graph::run(&model, top, &GraphConfig { algorithm, ..GraphConfig::default() })
        .map_err(|e| e.to_string())?;
    print!("{}", table.to_csv_string());
    let m = metrics::compute(&table);
    println!(
        "# SPFM {:.2}% ({}) over {} FIT of safety-related hardware",
        m.spfm * 100.0,
        m.achieved_asil,
        m.total_sr_fit.value()
    );
    if let Some(out) = flag_value(args, "--csv") {
        std::fs::write(out, table.to_csv_string()).map_err(|e| e.to_string())?;
        println!("# written to {out}");
    }
    if let Some(out) = flag_value(args, "--json") {
        persist::save_table(&table, out).map_err(|e| e.to_string())?;
        println!("# written to {out}");
    }
    Ok(())
}

fn cmd_spfm(args: &[String]) -> Result<(), String> {
    let path = required_path(args)?;
    let table = persist::load_table(path).map_err(|e| e.to_string())?;
    let m = metrics::compute(&table);
    println!("system:            {}", table.system);
    println!("rows:              {}", table.rows.len());
    println!("safety-related:    {:?}", table.safety_related_components());
    println!("SPFM:              {:.4} ({:.2}%)", m.spfm, m.spfm * 100.0);
    println!("achieved ASIL:     {}", m.achieved_asil);
    println!("SR hardware FIT:   {}", m.total_sr_fit);
    println!("residual SPF FIT:  {}", m.residual_spf_fit);
    Ok(())
}

fn cmd_render(args: &[String]) -> Result<(), String> {
    let path = required_path(args)?;
    let model = load(path)?;
    if args.iter().any(|a| a == "--dot") {
        let top = top_of(&model)?;
        print!("{}", decisive::ssam::render::dot_graph(&model, top));
    } else {
        print!("{}", decisive::ssam::render::ascii_tree(&model));
    }
    Ok(())
}

fn cmd_monitor(args: &[String]) -> Result<(), String> {
    let path = required_path(args)?;
    let model = load(path)?;
    let monitor = RuntimeMonitor::generate(&model);
    if monitor.checks().is_empty() {
        println!("no runtime checks (no dynamic components with limited IO nodes)");
    }
    for check in monitor.checks() {
        println!(
            "{}::{} in [{}, {}]",
            check.component,
            check.io_node,
            check.lower.map(|v| v.to_string()).unwrap_or_else(|| "-inf".into()),
            check.upper.map(|v| v.to_string()).unwrap_or_else(|| "+inf".into()),
        );
    }
    Ok(())
}

fn cmd_impact(args: &[String]) -> Result<(), String> {
    let [old_path, new_path] = args else {
        return Err("usage: decisive impact <old.json> <new.json>".to_owned());
    };
    let old_model = load(old_path)?;
    let new_model = load(new_path)?;
    let report = decisive::core::impact::diff_models(&old_model, &new_model);
    print!("{}", report.render());
    if report.requires_reanalysis() {
        Err("re-analysis required".to_owned())
    } else {
        Ok(())
    }
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let path = required_path(args)?;
    let model = load(path)?;
    let report = decisive::core::trace::traceability_report(&model);
    print!("{}", decisive::core::trace::render_report(&report));
    let gaps = report.iter().filter(|e| e.is_unassociated()).count();
    println!("# {} failure mode(s), {} without a hazard association", report.len(), gaps);
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].as_str())
}
