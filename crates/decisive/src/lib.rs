//! # decisive
//!
//! The facade crate of the **DECISIVE** reproduction — *DEsigning CrItical
//! Systems with IteratiVe automated safEty analysis* (DAC 2022) — tying the
//! whole toolchain together:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`ssam`] | `decisive-ssam` | the Structured System Architecture Metamodel |
//! | [`circuit`] | `decisive-circuit` | the fault-injectable analog simulator (Simulink substitute) |
//! | [`blocks`] | `decisive-blocks` | block-diagram authoring + lossless SSAM transformation |
//! | [`federation`] | `decisive-federation` | heterogeneous model drivers, EQL, scalable stores |
//! | [`hara`] | `decisive-hara` | hazard analysis & risk assessment (ISO 26262 risk graph) |
//! | [`core`] | `decisive-core` | automated FME(D)A, SPFM, mechanism search, the process driver |
//! | [`engine`] | `decisive-engine` | incremental analysis: content-addressed cache + parallel scheduler |
//! | [`fta`] | `decisive-fta` | fault tree analysis (HiP-HOPS-style baseline + future work) |
//! | [`assurance`] | `decisive-assurance` | GSN assurance cases with automated evaluation |
//! | [`workload`] | `decisive-workload` | evaluation subjects and the simulated analyst |
//! | [`obs`] | `decisive-obs` | structured tracing + metrics (spans, counters, chrome://tracing export) |
//! | [`serve`] | `decisive-serve` | persistent analysis daemon: line-JSON protocol, concurrent sessions, watch mode |
//! | [`fleet`] | `decisive-fleet` | fault-tolerant ecosystem-scale sweeps: process-isolated workers, journaled resume |
//!
//! See the repository's `examples/` for runnable walk-throughs, starting
//! with `quickstart.rs` (the paper's case study end to end), and
//! `EXPERIMENTS.md` for the paper-versus-measured record of every table
//! and figure.
//!
//! ## Quickstart
//!
//! ```
//! use decisive::core::{case_study, fmea::graph, mechanism, metrics};
//!
//! # fn main() -> Result<(), decisive::core::CoreError> {
//! let (model, top) = case_study::ssam_model();
//! let table = graph::run(&model, top, &graph::GraphConfig::default())?;
//! assert!((table.spfm() - 0.0538).abs() < 5e-4); // the paper's 5.38 %
//! let refined = mechanism::search::greedy(
//!     &table,
//!     &mechanism::MechanismCatalog::paper_table_iii(),
//!     0.90,
//! )
//! .expect("ECC reaches ASIL-B");
//! assert!((refined.spfm - 0.9677).abs() < 5e-5); // the paper's 96.77 %
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

/// The typed output documents (`AnalyzeOutput`, `PipelineOutput`, …)
/// behind `--format json` and the daemon wire protocol. Hosted by
/// `decisive-serve`; re-exported here so existing `decisive::output`
/// users are unaffected.
pub use decisive_serve::output;

pub use decisive_assurance as assurance;
pub use decisive_blocks as blocks;
pub use decisive_circuit as circuit;
pub use decisive_core as core;
pub use decisive_engine as engine;
pub use decisive_federation as federation;
pub use decisive_fleet as fleet;
pub use decisive_fta as fta;
pub use decisive_hara as hara;
pub use decisive_obs as obs;
pub use decisive_serve as serve;
pub use decisive_ssam as ssam;
pub use decisive_workload as workload;
