//! The content-addressed artefact cache.
//!
//! Every derived analysis artefact (per-component FMEA rows, container
//! path facts, per-candidate injection rows, FTA subtree quantifications,
//! monitor sets) is stored under `(kind, fingerprint-of-its-inputs)`.
//! Content addressing makes invalidation automatic — an edited input hashes
//! to a new key and simply misses — so the explicit
//! [`CacheStore::invalidate_owner`] pass exists to *garbage-collect* stale
//! entries and to report how many keys a change dirtied.
//!
//! The store persists through the federation layer (`serde_bridge` +
//! `json`) as a single `cache.json` in the cache directory, so warm caches
//! survive CLI invocations.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use decisive_federation::{json, serde_bridge, Value};

use crate::error::{EngineError, Result};
use crate::fingerprint::Fingerprint;

/// Which analysis produced a cached artefact. Kinds namespace the key
/// space: the same input digest keys different artefacts per analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// Path-criticality facts of one container (`graph::container_facts`).
    GraphFacts,
    /// FMEA rows of one component on the SSAM graph path (Algorithm 1).
    GraphRow,
    /// FMEA row of one fault-injection candidate (the simulation path).
    InjectionRow,
    /// Quantified fault subtree of one container.
    FtaSubtree,
    /// Generated runtime monitor checks of one model.
    MonitorSet,
}

impl ArtifactKind {
    /// All kinds, for iteration.
    pub const ALL: [ArtifactKind; 5] = [
        ArtifactKind::GraphFacts,
        ArtifactKind::GraphRow,
        ArtifactKind::InjectionRow,
        ArtifactKind::FtaSubtree,
        ArtifactKind::MonitorSet,
    ];

    fn tag(self) -> &'static str {
        match self {
            ArtifactKind::GraphFacts => "graph-facts",
            ArtifactKind::GraphRow => "graph-row",
            ArtifactKind::InjectionRow => "injection-row",
            ArtifactKind::FtaSubtree => "fta-subtree",
            ArtifactKind::MonitorSet => "monitor-set",
        }
    }

    fn parse(tag: &str) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

/// One cached artefact: its serialized value plus the name of the model
/// element it was derived *for* (the invalidation handle).
#[derive(Debug, Clone, PartialEq)]
struct CacheEntry {
    owner: String,
    value: Value,
}

/// An in-memory artefact store keyed by `(kind, fingerprint)`, optionally
/// persisted to a cache directory.
#[derive(Debug, Clone, Default)]
pub struct CacheStore {
    entries: HashMap<(ArtifactKind, Fingerprint), CacheEntry>,
}

/// File name of the persisted store inside a cache directory.
pub const CACHE_FILE: &str = "cache.json";

/// Version stamp of the persisted format; mismatches load as empty.
/// Version 2: injection rows carry their campaign outcome
/// (`InjectionArtifact`) instead of a bare `FmeaRow`.
const FORMAT_VERSION: i64 = 2;

impl CacheStore {
    /// An empty store.
    pub fn new() -> Self {
        CacheStore::default()
    }

    /// Number of cached artefacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fetches and deserialises a cached artefact.
    ///
    /// Returns `None` both on a missing key and on a shape mismatch (a
    /// corrupt entry is treated as a miss and recomputed).
    pub fn get<T: serde::DeserializeOwned>(
        &self,
        kind: ArtifactKind,
        key: Fingerprint,
    ) -> Option<T> {
        let entry = self.entries.get(&(kind, key))?;
        serde_bridge::from_value(&entry.value).ok()
    }

    /// Stores an artefact under `(kind, key)`, owned by the named model
    /// element (used by [`CacheStore::invalidate_owner`]).
    pub fn put<T: serde::Serialize>(
        &mut self,
        kind: ArtifactKind,
        key: Fingerprint,
        owner: &str,
        artefact: &T,
    ) -> Result<()> {
        let value = serde_bridge::to_value(artefact)
            .map_err(|e| EngineError::Cache(format!("unserialisable artefact: {e}")))?;
        self.entries.insert((kind, key), CacheEntry { owner: owner.to_owned(), value });
        Ok(())
    }

    /// Drops every entry owned by `owner`; returns how many were dropped.
    pub fn invalidate_owner(&mut self, owner: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.owner != owner);
        before - self.entries.len()
    }

    /// Drops every entry of one kind; returns how many were dropped.
    pub fn invalidate_kind(&mut self, kind: ArtifactKind) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(k, _), _| *k != kind);
        before - self.entries.len()
    }

    /// Serialises the whole store as a federation [`Value`].
    pub fn to_value(&self) -> Value {
        // Deterministic entry order, so persisted caches diff cleanly.
        let mut keys: Vec<&(ArtifactKind, Fingerprint)> = self.entries.keys().collect();
        keys.sort_by_key(|(kind, fp)| (kind.tag(), *fp));
        Value::record([
            ("version", Value::Int(FORMAT_VERSION)),
            (
                "entries",
                Value::List(
                    keys.into_iter()
                        .map(|k| {
                            let entry = &self.entries[k];
                            Value::record([
                                ("kind", Value::from(k.0.tag())),
                                ("key", Value::from(k.1.to_string().as_str())),
                                ("owner", Value::from(entry.owner.as_str())),
                                ("value", entry.value.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a store from [`CacheStore::to_value`] output. Entries with
    /// unknown kinds or malformed keys are skipped, and a version mismatch
    /// yields an empty store — a cache may always be cold, never wrong.
    pub fn from_value(value: &Value) -> CacheStore {
        let mut store = CacheStore::new();
        if value.get("version").and_then(Value::as_i64) != Some(FORMAT_VERSION) {
            return store;
        }
        let Some(Value::List(entries)) = value.get("entries") else {
            return store;
        };
        for entry in entries {
            let kind = entry.get("kind").and_then(Value::as_str).and_then(ArtifactKind::parse);
            let key = entry.get("key").and_then(Value::as_str).and_then(Fingerprint::parse);
            let owner = entry.get("owner").and_then(Value::as_str);
            if let (Some(kind), Some(key), Some(owner), Some(value)) =
                (kind, key, owner, entry.get("value"))
            {
                store.entries.insert(
                    (kind, key),
                    CacheEntry { owner: owner.to_owned(), value: value.clone() },
                );
            }
        }
        store
    }

    fn file_of(dir: &Path) -> PathBuf {
        dir.join(CACHE_FILE)
    }

    /// Loads the store persisted in `dir`, or an empty store when no cache
    /// file exists yet.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Cache`] when the file exists but cannot be
    /// read or parsed.
    pub fn load(dir: impl AsRef<Path>) -> Result<CacheStore> {
        let file = Self::file_of(dir.as_ref());
        if !file.exists() {
            return Ok(CacheStore::new());
        }
        let text = std::fs::read_to_string(&file)
            .map_err(|e| EngineError::Cache(format!("{}: {e}", file.display())))?;
        let value = json::parse(&text)
            .map_err(|e| EngineError::Cache(format!("{}: {e}", file.display())))?;
        Ok(CacheStore::from_value(&value))
    }

    /// Persists the store into `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Cache`] on I/O failure.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| EngineError::Cache(format!("{}: {e}", dir.display())))?;
        let file = Self::file_of(dir);
        std::fs::write(&file, json::to_string(&self.to_value()))
            .map_err(|e| EngineError::Cache(format!("{}: {e}", file.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Hasher;

    fn fp(text: &str) -> Fingerprint {
        Hasher::new().write_str(text).finish()
    }

    #[test]
    fn roundtrips_through_value_and_disk() {
        let mut store = CacheStore::new();
        store.put(ArtifactKind::GraphRow, fp("a"), "D1", &vec![1.5f64, 2.5]).unwrap();
        store.put(ArtifactKind::GraphFacts, fp("b"), "top", &"facts".to_owned()).unwrap();
        let back = CacheStore::from_value(&store.to_value());
        assert_eq!(back.len(), 2);
        assert_eq!(back.get::<Vec<f64>>(ArtifactKind::GraphRow, fp("a")), Some(vec![1.5, 2.5]));
        assert_eq!(back.get::<String>(ArtifactKind::GraphFacts, fp("b")), Some("facts".into()));

        let dir = std::env::temp_dir().join(format!("decisive_cache_{}", std::process::id()));
        store.save(&dir).unwrap();
        let loaded = CacheStore::load(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_loads_empty() {
        let store = CacheStore::load("/definitely/not/here").unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn owner_invalidation_is_selective() {
        let mut store = CacheStore::new();
        store.put(ArtifactKind::GraphRow, fp("a"), "D1", &1i64).unwrap();
        store.put(ArtifactKind::GraphRow, fp("b"), "L1", &2i64).unwrap();
        store.put(ArtifactKind::GraphFacts, fp("c"), "D1", &3i64).unwrap();
        assert_eq!(store.invalidate_owner("D1"), 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get::<i64>(ArtifactKind::GraphRow, fp("b")), Some(2));
    }

    #[test]
    fn kind_namespaces_the_key_space() {
        let mut store = CacheStore::new();
        store.put(ArtifactKind::GraphRow, fp("k"), "x", &1i64).unwrap();
        store.put(ArtifactKind::InjectionRow, fp("k"), "x", &2i64).unwrap();
        assert_eq!(store.get::<i64>(ArtifactKind::GraphRow, fp("k")), Some(1));
        assert_eq!(store.get::<i64>(ArtifactKind::InjectionRow, fp("k")), Some(2));
        assert_eq!(store.invalidate_kind(ArtifactKind::InjectionRow), 1);
    }

    #[test]
    fn version_mismatch_loads_empty() {
        let mut store = CacheStore::new();
        store.put(ArtifactKind::MonitorSet, fp("m"), "model", &0i64).unwrap();
        let mut value = store.to_value();
        if let Value::Record(fields) = &mut value {
            fields[0].1 = Value::Int(999);
        }
        assert!(CacheStore::from_value(&value).is_empty());
    }
}
