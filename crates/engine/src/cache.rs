//! The content-addressed artefact cache.
//!
//! Every derived analysis artefact (per-component FMEA rows, container
//! path facts, per-candidate injection rows, FTA subtree quantifications,
//! monitor sets) is stored under `(kind, fingerprint-of-its-inputs)`.
//! Content addressing makes invalidation automatic — an edited input hashes
//! to a new key and simply misses — so the explicit
//! [`CacheStore::invalidate_owner`] pass exists to *garbage-collect* stale
//! entries and to report how many keys a change dirtied.
//!
//! The store persists through the federation layer (`serde_bridge` +
//! `json`) as a single `cache.json` in the cache directory, so warm caches
//! survive CLI invocations — or, preferred since the segmented store
//! landed, through a durable [`SharedStore`] backed by the append-only
//! log of [`crate::store`] (see [`SharedStore::open_durable`]), which
//! makes every completed pass durable immediately and warm starts
//! O(touched artifacts). The v3 JSON format remains the portable
//! interchange format (`decisive store import`/`export`).
//!
//! ## Crash safety (format v3)
//!
//! A killed run must never poison the next one, so persistence is built
//! around two mechanisms:
//!
//! * **Atomic writes** — the store is written to a temp file, fsynced,
//!   and renamed over `cache.json`, so readers only ever see the old or
//!   the new file, never a torn one.
//! * **Checksummed quarantine loads** — every persisted entry carries a
//!   fingerprint checksum and the header a whole-file checksum. On load,
//!   entries failing checksum or shape validation are moved to
//!   [`QUARANTINE_FILE`] and simply recomputed (a cache may always be
//!   cold, never wrong); an unparsable file is quarantined wholesale.
//!   [`CacheStore::load_with_report`] surfaces what was dropped.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use decisive_federation::{json, serde_bridge, Value};
use decisive_obs::Telemetry;

use crate::error::{EngineError, Result};
use crate::fingerprint::{Fingerprint, Hasher};
use crate::store::{
    CompactionSummary, SegmentStore, StoreHealth, StoreOptions, StoreRecovery, MANIFEST_FILE,
    STORE_DIR,
};

/// Which analysis produced a cached artefact. Kinds namespace the key
/// space: the same input digest keys different artefacts per analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// Path-criticality facts of one container (`graph::container_facts`).
    GraphFacts,
    /// FMEA rows of one component on the SSAM graph path (Algorithm 1).
    GraphRow,
    /// FMEA row of one fault-injection candidate (the simulation path).
    InjectionRow,
    /// Quantified fault subtree of one container.
    FtaSubtree,
    /// Generated runtime monitor checks of one model.
    MonitorSet,
    /// Assessed risk log of one FMEA table (the HARA pass).
    RiskLog,
    /// Evaluated assurance-case report (the assurance pass).
    AssuranceCase,
    /// Completed per-model row of a fleet sweep (the fleet journal: the
    /// supervisor appends one on completion, `--resume` replays them).
    FleetRow,
    /// Per-trial metrics of one Monte-Carlo draw (the stochastic pass).
    McTrial,
    /// Ranked safety-pattern recommendation report of one FMEA table.
    Recommendation,
}

impl ArtifactKind {
    /// All kinds, for iteration.
    pub const ALL: [ArtifactKind; 10] = [
        ArtifactKind::GraphFacts,
        ArtifactKind::GraphRow,
        ArtifactKind::InjectionRow,
        ArtifactKind::FtaSubtree,
        ArtifactKind::MonitorSet,
        ArtifactKind::RiskLog,
        ArtifactKind::AssuranceCase,
        ArtifactKind::FleetRow,
        ArtifactKind::McTrial,
        ArtifactKind::Recommendation,
    ];

    /// The stable persistence tag (also the display name in `decisive
    /// passes`).
    pub fn tag(self) -> &'static str {
        match self {
            ArtifactKind::GraphFacts => "graph-facts",
            ArtifactKind::GraphRow => "graph-row",
            ArtifactKind::InjectionRow => "injection-row",
            ArtifactKind::FtaSubtree => "fta-subtree",
            ArtifactKind::MonitorSet => "monitor-set",
            ArtifactKind::RiskLog => "risk-log",
            ArtifactKind::AssuranceCase => "assurance-case",
            ArtifactKind::FleetRow => "fleet-row",
            ArtifactKind::McTrial => "mc-trial",
            ArtifactKind::Recommendation => "recommendation",
        }
    }

    pub(crate) fn parse(tag: &str) -> Option<ArtifactKind> {
        ArtifactKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

/// One cached artefact: its serialized value plus the name of the model
/// element it was derived *for* (the invalidation handle).
#[derive(Debug, Clone, PartialEq)]
struct CacheEntry {
    owner: String,
    value: Value,
}

/// An in-memory artefact store keyed by `(kind, fingerprint)`, optionally
/// persisted to a cache directory.
///
/// A store may be layered over a [`SharedStore`]: its own entries then act
/// as a private *overlay* — lookups fall back to the shared layer on a
/// local miss, and stores write through to it — so many stores (one per
/// daemon session) deduplicate artefacts across sessions while keeping
/// invalidation and persistence local. See [`CacheStore::attach_shared`].
#[derive(Debug, Clone, Default)]
pub struct CacheStore {
    entries: HashMap<(ArtifactKind, Fingerprint), CacheEntry>,
    shared: Option<SharedStore>,
}

/// A thread-safe artefact store shared by many [`CacheStore`] overlays —
/// the cross-session dedup layer of the analysis daemon.
///
/// Content addressing is what makes sharing sound: a `(kind, fingerprint)`
/// key commits to *all* inputs of its artefact, so an entry computed by one
/// session is, by construction, the entry every other session would compute
/// for that key. The shared layer therefore only ever grows during a run
/// (overlays garbage-collect their private entries; the shared layer is
/// rebuilt from a persisted snapshot on daemon start).
///
/// A shared layer is either purely in-memory (the historical behaviour)
/// or *durable*: backed by the crash-safe segmented log of
/// [`crate::store`], opened with [`SharedStore::open_durable`]. A durable
/// layer writes every entry through to the log (committed on
/// [`SharedStore::sync_durable`]) and serves memory misses from the log's
/// index, so a restarted process pays O(touched artifacts) to get warm,
/// not O(history).
///
/// Clones are handles onto the same underlying map (and log).
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    entries: Arc<Mutex<HashMap<(ArtifactKind, Fingerprint), CacheEntry>>>,
    hits: Arc<AtomicU64>,
    log: Option<Arc<SegmentStore>>,
}

impl SharedStore {
    /// An empty, purely in-memory shared layer.
    pub fn new() -> Self {
        SharedStore::default()
    }

    /// Opens a shared layer durably persisted in `dir/store/` as a
    /// segmented append-only log, running crash recovery. On the *first*
    /// durable open of a directory still holding a legacy v3 `cache.json`,
    /// its verified entries are migrated into the log and the file is
    /// retired as `cache.json.imported` (recoverable any time via
    /// `decisive store import`).
    ///
    /// # Errors
    ///
    /// [`EngineError::Store`] on environment failures. Corrupt content
    /// never errors — it is quarantined and reported in the returned
    /// [`StoreRecovery`].
    pub fn open_durable(
        dir: impl AsRef<Path>,
        options: StoreOptions,
        telemetry: Telemetry,
    ) -> Result<(SharedStore, StoreRecovery)> {
        let dir = dir.as_ref();
        let store_dir = dir.join(STORE_DIR);
        let fresh = !store_dir.join(MANIFEST_FILE).exists();
        let (log, mut recovery) = SegmentStore::open(&store_dir, options, telemetry)?;
        let log = Arc::new(log);
        if fresh && dir.join(CACHE_FILE).exists() {
            let (legacy, report) = CacheStore::load_with_report(dir)?;
            recovery.migrated_entries = log.import(&legacy)?;
            recovery.quarantined_frames += report.quarantined;
            recovery.notes.extend(report.reasons);
            std::fs::rename(dir.join(CACHE_FILE), dir.join(format!("{CACHE_FILE}.imported"))).ok();
        }
        let shared = SharedStore { log: Some(log), ..SharedStore::default() };
        Ok((shared, recovery))
    }

    /// The segmented log backing this layer, when opened durable.
    pub fn durable(&self) -> Option<&Arc<SegmentStore>> {
        self.log.as_ref()
    }

    /// `true` when this layer persists through the segmented log.
    pub fn is_durable(&self) -> bool {
        self.log.is_some()
    }

    /// Fsyncs appends pending in the backing log — the commit point of
    /// incremental durability. A no-op for in-memory layers.
    ///
    /// # Errors
    ///
    /// [`EngineError::Store`] on fsync failure.
    pub fn sync_durable(&self) -> Result<()> {
        match &self.log {
            Some(log) => log.sync(),
            None => Ok(()),
        }
    }

    /// Health snapshot of the backing log, when durable.
    pub fn durable_health(&self) -> Option<StoreHealth> {
        self.log.as_ref().map(|log| log.health())
    }

    /// Compacts the backing log when its dead-frame thresholds are met.
    /// `Ok(None)` when not durable or below thresholds.
    ///
    /// # Errors
    ///
    /// [`EngineError::Store`] on I/O failure during the rewrite.
    pub fn maybe_compact(&self) -> Result<Option<CompactionSummary>> {
        match &self.log {
            Some(log) => log.maybe_compact(),
            None => Ok(None),
        }
    }

    /// Number of shared artefacts (union of the in-memory map and the
    /// backing log's live index).
    pub fn len(&self) -> usize {
        let mut keys: HashSet<(ArtifactKind, Fingerprint)> =
            self.entries.lock().expect("shared store poisoned").keys().copied().collect();
        if let Some(log) = &self.log {
            keys.extend(log.keys());
        }
        keys.len()
    }

    /// `true` when nothing is shared yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys of one artefact kind across memory and the backing log.
    pub fn keys_of_kind(&self, kind: ArtifactKind) -> Vec<Fingerprint> {
        let mut keys: HashSet<Fingerprint> = self
            .entries
            .lock()
            .expect("shared store poisoned")
            .keys()
            .filter(|(k, _)| *k == kind)
            .map(|&(_, f)| f)
            .collect();
        if let Some(log) = &self.log {
            keys.extend(log.keys_of_kind(kind));
        }
        keys.into_iter().collect()
    }

    /// How many lookups were served by this layer after missing the
    /// requesting overlay — the cross-session dedup win.
    pub fn shared_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Bulk-imports every entry of `store` (an overlay or a persisted
    /// snapshot) into the shared layer; returns how many were added. On a
    /// durable layer newly absorbed entries are also appended to the log
    /// best-effort (bulk imports should prefer `decisive store import`,
    /// which surfaces append errors).
    pub fn absorb(&self, store: &CacheStore) -> usize {
        let mut entries = self.entries.lock().expect("shared store poisoned");
        let before = entries.len();
        for (key, entry) in &store.entries {
            if let std::collections::hash_map::Entry::Vacant(vacant) = entries.entry(*key) {
                if let Some(log) = &self.log {
                    log.append(key.0, key.1, &entry.owner, &entry.value).ok();
                }
                vacant.insert(entry.clone());
            }
        }
        entries.len() - before
    }

    /// A plain [`CacheStore`] copy of the shared contents (shared layer
    /// detached), for persistence via [`CacheStore::save`]. On a durable
    /// layer this materialises the full log — the export path, not the
    /// shutdown path (durable layers persist incrementally).
    pub fn snapshot(&self) -> CacheStore {
        let mut snapshot = match &self.log {
            Some(log) => log.export(),
            None => CacheStore::new(),
        };
        for (key, entry) in self.entries.lock().expect("shared store poisoned").iter() {
            snapshot.entries.insert(*key, entry.clone());
        }
        snapshot.shared = None;
        snapshot
    }

    fn get_entry(&self, kind: ArtifactKind, key: Fingerprint) -> Option<CacheEntry> {
        if let Some(entry) =
            self.entries.lock().expect("shared store poisoned").get(&(kind, key)).cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(entry);
        }
        // Memory miss: read through the durable log's index. The decoded
        // entry is promoted into memory so the next lookup is cheap —
        // this is what makes a warm start O(touched artifacts).
        let (owner, value) = self.log.as_ref()?.get(kind, key)?;
        let entry = CacheEntry { owner, value };
        self.entries.lock().expect("shared store poisoned").insert((kind, key), entry.clone());
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(entry)
    }

    fn put_entry(&self, kind: ArtifactKind, key: Fingerprint, entry: CacheEntry) -> Result<()> {
        // Log first: if the append fails the memory layer stays in step
        // with disk and the caller sees the error.
        if let Some(log) = &self.log {
            log.append(kind, key, &entry.owner, &entry.value)?;
        }
        self.entries.lock().expect("shared store poisoned").insert((kind, key), entry);
        Ok(())
    }
}

/// File name of the persisted store inside a cache directory.
pub const CACHE_FILE: &str = "cache.json";

/// File name corrupt cache content is moved to inside a cache directory,
/// for post-mortem inspection. A later corruption event rotates an
/// existing file aside as `cache.quarantine.json.1`, `.2`, … (capped at
/// [`QUARANTINE_KEEP`]) instead of clobbering it.
pub const QUARANTINE_FILE: &str = "cache.quarantine.json";

/// How many rotated quarantine copies are retained per base name before
/// the oldest are pruned.
pub const QUARANTINE_KEEP: usize = 5;

/// Shifts an existing quarantine file aside as `<name>.<n>` (n counting
/// up) so new quarantine content can land at the base name without
/// destroying earlier evidence, pruning all but the newest
/// [`QUARANTINE_KEEP`] rotated copies. Best-effort: rotation failure must
/// never block the load that triggered it.
pub(crate) fn rotate_quarantine(path: &Path) {
    if !path.exists() {
        return;
    }
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else { return };
    let Some(parent) = path.parent() else { return };
    let parent = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
    let Ok(entries) = std::fs::read_dir(parent) else { return };
    let mut indices: Vec<u64> = entries
        .flatten()
        .filter_map(|e| {
            let file = e.file_name();
            let file = file.to_str()?;
            file.strip_prefix(name)?.strip_prefix('.')?.parse::<u64>().ok()
        })
        .collect();
    let next = indices.iter().max().map_or(1, |m| m + 1);
    if std::fs::rename(path, parent.join(format!("{name}.{next}"))).is_err() {
        return;
    }
    indices.push(next);
    indices.sort_unstable();
    while indices.len() > QUARANTINE_KEEP {
        let oldest = indices.remove(0);
        std::fs::remove_file(parent.join(format!("{name}.{oldest}"))).ok();
    }
}

/// Version stamp of the persisted format; mismatches load as empty.
/// Version 2: injection rows carry their campaign outcome
/// (`InjectionArtifact`) instead of a bare `FmeaRow`.
/// Version 3: per-entry `sum` and whole-file `checksum` fields, verified
/// on load with a quarantine path for entries that fail.
const FORMAT_VERSION: i64 = 3;

/// What a [`CacheStore::load_with_report`] had to drop to produce a
/// usable store. A clean load has zero quarantined items and no notes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheLoadReport {
    /// Entries (or, for an unparsable file, the whole file counted as
    /// one item) moved to [`QUARANTINE_FILE`] and scheduled for
    /// recomputation.
    pub quarantined: usize,
    /// One human-readable reason per dropped or suspicious item.
    pub reasons: Vec<String>,
}

impl CacheLoadReport {
    /// `true` when nothing was dropped and nothing looked suspicious.
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0 && self.reasons.is_empty()
    }
}

/// Checksum of one persisted entry, covering everything that round-trips:
/// kind tag, key, owner, and the serialized artefact value.
fn entry_sum(kind: ArtifactKind, key: Fingerprint, owner: &str, value: &Value) -> Fingerprint {
    Hasher::new()
        .write_str(kind.tag())
        .write_fingerprint(key)
        .write_str(owner)
        .write_str(&json::to_string(value))
        .finish()
}

/// Whole-file checksum: a fingerprint over the per-entry checksums in
/// serialized order, detecting spliced or truncated entry lists that
/// still parse as JSON.
fn file_sum(sums: &[Fingerprint]) -> Fingerprint {
    let mut h = Hasher::new();
    for s in sums {
        h.write_fingerprint(*s);
    }
    h.finish()
}

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, fsync, rename over the target, then fsync the directory so
/// the rename itself is durable. Readers see the old file or the new
/// one — never a torn mix.
pub fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("file");
    let tmp = path.with_file_name(format!("{name}.tmp"));
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    if let Some(parent) = path.parent() {
        // Best-effort: directory fsync is not supported everywhere.
        if let Ok(dir) = std::fs::File::open(parent) {
            dir.sync_all().ok();
        }
    }
    Ok(())
}

impl CacheStore {
    /// An empty store.
    pub fn new() -> Self {
        CacheStore::default()
    }

    /// Number of cached artefacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Live entries of one kind — the per-pass cache status shown by
    /// `decisive passes`. With a shared layer attached this is the union
    /// of overlay, shared memory, and (when durable) the backing log, so
    /// warm stores report their real coverage.
    pub fn count_kind(&self, kind: ArtifactKind) -> usize {
        let local = self.entries.keys().filter(|(k, _)| *k == kind);
        let Some(shared) = &self.shared else { return local.count() };
        let mut keys: HashSet<Fingerprint> = local.map(|&(_, f)| f).collect();
        keys.extend(shared.keys_of_kind(kind));
        keys.len()
    }

    /// Layers this store over `shared`: lookups missing the local entries
    /// fall back to the shared layer (counted by
    /// [`SharedStore::shared_hits`]) and stores write through to it.
    /// Persistence ([`CacheStore::to_value`], [`CacheStore::save`]) and
    /// invalidation stay strictly local.
    pub fn attach_shared(&mut self, shared: SharedStore) {
        self.shared = Some(shared);
    }

    /// The shared layer this store is an overlay of, if any.
    pub fn shared(&self) -> Option<&SharedStore> {
        self.shared.as_ref()
    }

    /// Fetches and deserialises a cached artefact, falling back to the
    /// attached shared layer on a local miss.
    ///
    /// Returns `None` both on a missing key and on a shape mismatch (a
    /// corrupt entry is treated as a miss and recomputed).
    pub fn get<T: serde::DeserializeOwned>(
        &self,
        kind: ArtifactKind,
        key: Fingerprint,
    ) -> Option<T> {
        if let Some(entry) = self.entries.get(&(kind, key)) {
            return serde_bridge::from_value(&entry.value).ok();
        }
        let entry = self.shared.as_ref()?.get_entry(kind, key)?;
        serde_bridge::from_value(&entry.value).ok()
    }

    /// Stores an artefact under `(kind, key)`, owned by the named model
    /// element (used by [`CacheStore::invalidate_owner`]). With a shared
    /// layer attached the artefact is also published there, so sibling
    /// overlays see it.
    pub fn put<T: serde::Serialize>(
        &mut self,
        kind: ArtifactKind,
        key: Fingerprint,
        owner: &str,
        artefact: &T,
    ) -> Result<()> {
        let value = serde_bridge::to_value(artefact)
            .map_err(|e| EngineError::Cache(format!("unserialisable artefact: {e}")))?;
        let entry = CacheEntry { owner: owner.to_owned(), value };
        if let Some(shared) = &self.shared {
            shared.put_entry(kind, key, entry.clone())?;
        }
        self.entries.insert((kind, key), entry);
        Ok(())
    }

    /// Inserts an already-serialised entry (the store export/import and
    /// legacy-migration path, which must not re-encode values).
    pub(crate) fn insert_value(
        &mut self,
        kind: ArtifactKind,
        key: Fingerprint,
        owner: String,
        value: Value,
    ) {
        self.entries.insert((kind, key), CacheEntry { owner, value });
    }

    /// Iterates the raw local entries (kind, key, owner, value).
    pub(crate) fn iter_entries(
        &self,
    ) -> impl Iterator<Item = (ArtifactKind, Fingerprint, &str, &Value)> {
        self.entries.iter().map(|(&(kind, key), e)| (kind, key, e.owner.as_str(), &e.value))
    }

    /// Fsyncs the attached durable shared layer, if any — the per-pass
    /// commit point of incremental durability. No-op otherwise.
    ///
    /// # Errors
    ///
    /// [`EngineError::Store`] on fsync failure.
    pub fn sync_durable(&self) -> Result<()> {
        match &self.shared {
            Some(shared) => shared.sync_durable(),
            None => Ok(()),
        }
    }

    /// Drops every entry owned by `owner`; returns how many were dropped.
    pub fn invalidate_owner(&mut self, owner: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.owner != owner);
        before - self.entries.len()
    }

    /// Drops every entry of one kind; returns how many were dropped.
    pub fn invalidate_kind(&mut self, kind: ArtifactKind) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(k, _), _| *k != kind);
        before - self.entries.len()
    }

    /// Serialises the whole store as a federation [`Value`] in format v3:
    /// a versioned header with a whole-file checksum, and one `sum`
    /// checksum per entry.
    pub fn to_value(&self) -> Value {
        // Deterministic entry order, so persisted caches diff cleanly.
        let mut keys: Vec<&(ArtifactKind, Fingerprint)> = self.entries.keys().collect();
        keys.sort_by_key(|(kind, fp)| (kind.tag(), *fp));
        let mut sums = Vec::with_capacity(keys.len());
        let entries: Vec<Value> = keys
            .into_iter()
            .map(|k| {
                let entry = &self.entries[k];
                let sum = entry_sum(k.0, k.1, &entry.owner, &entry.value);
                sums.push(sum);
                Value::record([
                    ("kind", Value::from(k.0.tag())),
                    ("key", Value::from(k.1.to_string().as_str())),
                    ("owner", Value::from(entry.owner.as_str())),
                    ("sum", Value::from(sum.to_string().as_str())),
                    ("value", entry.value.clone()),
                ])
            })
            .collect();
        Value::record([
            ("version", Value::Int(FORMAT_VERSION)),
            ("checksum", Value::from(file_sum(&sums).to_string().as_str())),
            ("entries", Value::List(entries)),
        ])
    }

    /// Rebuilds a store from [`CacheStore::to_value`] output, dropping
    /// anything that fails validation — a cache may always be cold, never
    /// wrong. See [`CacheStore::from_value_audited`] for what exactly is
    /// checked.
    pub fn from_value(value: &Value) -> CacheStore {
        Self::from_value_audited(value).0
    }

    /// Rebuilds a store, returning the load report and the raw rejected
    /// entries alongside it.
    ///
    /// Validation per entry: known kind tag, parsable key, string owner,
    /// present value, and a `sum` matching the recomputed entry checksum.
    /// Rejected entries land in the returned list (for quarantining) with
    /// one reason each in the report. A version mismatch yields an empty
    /// store with a note but quarantines nothing (an old format is stale,
    /// not corrupt); a whole-file checksum mismatch over individually
    /// valid entries is noted but keeps the entries.
    pub fn from_value_audited(value: &Value) -> (CacheStore, CacheLoadReport, Vec<Value>) {
        let mut store = CacheStore::new();
        let mut report = CacheLoadReport::default();
        let mut rejected = Vec::new();
        let version = value.get("version").and_then(Value::as_i64);
        if version != Some(FORMAT_VERSION) {
            report.reasons.push(format!(
                "cache format version {} does not match expected {FORMAT_VERSION}; starting cold",
                version.map(|v| v.to_string()).unwrap_or_else(|| "<missing>".to_owned())
            ));
            return (store, report, rejected);
        }
        let Some(Value::List(entries)) = value.get("entries") else {
            report.quarantined = 1;
            report.reasons.push("cache header has no `entries` list".to_owned());
            return (store, report, rejected);
        };
        let mut sums = Vec::with_capacity(entries.len());
        for (idx, entry) in entries.iter().enumerate() {
            let kind = entry.get("kind").and_then(Value::as_str).and_then(ArtifactKind::parse);
            let key = entry.get("key").and_then(Value::as_str).and_then(Fingerprint::parse);
            let owner = entry.get("owner").and_then(Value::as_str);
            let stored_sum = entry.get("sum").and_then(Value::as_str).and_then(Fingerprint::parse);
            let (Some(kind), Some(key), Some(owner), Some(sum), Some(value)) =
                (kind, key, owner, stored_sum, entry.get("value"))
            else {
                report.quarantined += 1;
                report.reasons.push(format!("entry {idx}: malformed shape"));
                rejected.push(entry.clone());
                continue;
            };
            let expected = entry_sum(kind, key, owner, value);
            if expected != sum {
                report.quarantined += 1;
                report.reasons.push(format!(
                    "entry {idx} ({} {key}, owner `{owner}`): checksum mismatch",
                    kind.tag()
                ));
                rejected.push(entry.clone());
                continue;
            }
            sums.push(sum);
            store
                .entries
                .insert((kind, key), CacheEntry { owner: owner.to_owned(), value: value.clone() });
        }
        let stored_file_sum = value.get("checksum").and_then(Value::as_str);
        if report.quarantined == 0 && stored_file_sum != Some(file_sum(&sums).to_string().as_str())
        {
            report.reasons.push(
                "whole-file checksum mismatch; kept the individually verified entries".to_owned(),
            );
        }
        (store, report, rejected)
    }

    fn file_of(dir: &Path) -> PathBuf {
        dir.join(CACHE_FILE)
    }

    /// Loads the store persisted in `dir`, or an empty store when no cache
    /// file exists yet, quarantining corrupt content. Convenience wrapper
    /// over [`CacheStore::load_with_report`] that drops the report.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Cache`] only when the file cannot be *read*
    /// (an environment problem). Corrupt content never errors: it is
    /// moved to [`QUARANTINE_FILE`] and the affected entries recompute.
    pub fn load(dir: impl AsRef<Path>) -> Result<CacheStore> {
        Self::load_with_report(dir).map(|(store, _)| store)
    }

    /// Loads the store persisted in `dir`, reporting everything that had
    /// to be quarantined to produce it.
    ///
    /// An unparsable `cache.json` is renamed wholesale to
    /// [`QUARANTINE_FILE`] (counting as one quarantined item); a parsable
    /// file with invalid entries has just those entries written there.
    /// Either way the returned store contains only verified entries and
    /// the run proceeds, recomputing what was dropped.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Cache`] when the file exists but cannot be
    /// read.
    pub fn load_with_report(dir: impl AsRef<Path>) -> Result<(CacheStore, CacheLoadReport)> {
        let dir = dir.as_ref();
        let file = Self::file_of(dir);
        if !file.exists() {
            return Ok((CacheStore::new(), CacheLoadReport::default()));
        }
        let bytes = std::fs::read(&file)
            .map_err(|e| EngineError::Cache(format!("{}: {e}", file.display())))?;
        // Invalid UTF-8 is corruption (a torn write or flipped bit), not
        // an environmental failure — quarantine, like unparsable JSON.
        let parsed = String::from_utf8(bytes)
            .map_err(|e| e.to_string())
            .and_then(|text| json::parse(&text).map_err(|e| e.to_string()));
        let value = match parsed {
            Ok(v) => v,
            Err(e) => {
                // The file is not even JSON: preserve the bytes for
                // post-mortem and start cold.
                let quarantine = dir.join(QUARANTINE_FILE);
                rotate_quarantine(&quarantine);
                if std::fs::rename(&file, &quarantine).is_err() {
                    if let Ok(bytes) = std::fs::read(&file) {
                        std::fs::write(&quarantine, bytes).ok();
                    }
                    std::fs::remove_file(&file).ok();
                }
                let report = CacheLoadReport {
                    quarantined: 1,
                    reasons: vec![format!(
                        "{}: {e}; whole file moved to {QUARANTINE_FILE}",
                        file.display()
                    )],
                };
                return Ok((CacheStore::new(), report));
            }
        };
        let (store, report, rejected) = Self::from_value_audited(&value);
        if !rejected.is_empty() {
            let quarantine = Value::record([
                ("version", Value::Int(FORMAT_VERSION)),
                (
                    "reasons",
                    Value::List(report.reasons.iter().map(|r| Value::from(r.as_str())).collect()),
                ),
                ("entries", Value::List(rejected)),
            ]);
            let target = dir.join(QUARANTINE_FILE);
            rotate_quarantine(&target);
            atomic_write(&target, &json::to_string(&quarantine)).ok();
        }
        Ok((store, report))
    }

    /// Persists the store into `dir` (created if missing) with an atomic
    /// temp-file + fsync + rename write: a crash mid-save leaves the
    /// previous cache intact.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Cache`] on I/O failure.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| EngineError::Cache(format!("{}: {e}", dir.display())))?;
        let file = Self::file_of(dir);
        atomic_write(&file, &json::to_string(&self.to_value()))
            .map_err(|e| EngineError::Cache(format!("{}: {e}", file.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Hasher;

    fn fp(text: &str) -> Fingerprint {
        Hasher::new().write_str(text).finish()
    }

    #[test]
    fn roundtrips_through_value_and_disk() {
        let mut store = CacheStore::new();
        store.put(ArtifactKind::GraphRow, fp("a"), "D1", &vec![1.5f64, 2.5]).unwrap();
        store.put(ArtifactKind::GraphFacts, fp("b"), "top", &"facts".to_owned()).unwrap();
        let back = CacheStore::from_value(&store.to_value());
        assert_eq!(back.len(), 2);
        assert_eq!(back.get::<Vec<f64>>(ArtifactKind::GraphRow, fp("a")), Some(vec![1.5, 2.5]));
        assert_eq!(back.get::<String>(ArtifactKind::GraphFacts, fp("b")), Some("facts".into()));

        let dir = std::env::temp_dir().join(format!("decisive_cache_{}", std::process::id()));
        store.save(&dir).unwrap();
        let loaded = CacheStore::load(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_loads_empty() {
        let store = CacheStore::load("/definitely/not/here").unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn owner_invalidation_is_selective() {
        let mut store = CacheStore::new();
        store.put(ArtifactKind::GraphRow, fp("a"), "D1", &1i64).unwrap();
        store.put(ArtifactKind::GraphRow, fp("b"), "L1", &2i64).unwrap();
        store.put(ArtifactKind::GraphFacts, fp("c"), "D1", &3i64).unwrap();
        assert_eq!(store.invalidate_owner("D1"), 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get::<i64>(ArtifactKind::GraphRow, fp("b")), Some(2));
    }

    #[test]
    fn kind_namespaces_the_key_space() {
        let mut store = CacheStore::new();
        store.put(ArtifactKind::GraphRow, fp("k"), "x", &1i64).unwrap();
        store.put(ArtifactKind::InjectionRow, fp("k"), "x", &2i64).unwrap();
        assert_eq!(store.get::<i64>(ArtifactKind::GraphRow, fp("k")), Some(1));
        assert_eq!(store.get::<i64>(ArtifactKind::InjectionRow, fp("k")), Some(2));
        assert_eq!(store.invalidate_kind(ArtifactKind::InjectionRow), 1);
    }

    #[test]
    fn version_mismatch_loads_empty() {
        let mut store = CacheStore::new();
        store.put(ArtifactKind::MonitorSet, fp("m"), "model", &0i64).unwrap();
        let mut value = store.to_value();
        if let Value::Record(fields) = &mut value {
            fields[0].1 = Value::Int(999);
        }
        assert!(CacheStore::from_value(&value).is_empty());
        let (_, report, rejected) = CacheStore::from_value_audited(&value);
        assert_eq!(report.quarantined, 0, "stale format is cold, not corrupt");
        assert!(!report.is_clean(), "but the report notes it");
        assert!(rejected.is_empty());
    }

    #[test]
    fn clean_roundtrip_report_is_clean() {
        let mut store = CacheStore::new();
        store.put(ArtifactKind::GraphRow, fp("a"), "D1", &1i64).unwrap();
        let (back, report, rejected) = CacheStore::from_value_audited(&store.to_value());
        assert_eq!(back.len(), 1);
        assert!(report.is_clean(), "{report:?}");
        assert!(rejected.is_empty());
    }

    #[test]
    fn tampered_entry_is_quarantined_not_loaded() {
        let mut store = CacheStore::new();
        store.put(ArtifactKind::GraphRow, fp("a"), "D1", &1i64).unwrap();
        store.put(ArtifactKind::GraphRow, fp("b"), "L1", &2i64).unwrap();
        let mut value = store.to_value();
        // Flip one entry's payload without updating its checksum.
        if let Value::Record(fields) = &mut value {
            for (k, v) in fields.iter_mut() {
                if k != "entries" {
                    continue;
                }
                if let Value::List(entries) = v {
                    if let Value::Record(efields) = &mut entries[0] {
                        for (ek, ev) in efields.iter_mut() {
                            if ek == "value" {
                                *ev = Value::Int(999);
                            }
                        }
                    }
                }
            }
        }
        let (back, report, rejected) = CacheStore::from_value_audited(&value);
        assert_eq!(back.len(), 1, "the intact entry survives");
        assert_eq!(report.quarantined, 1);
        assert_eq!(rejected.len(), 1);
        assert!(report.reasons[0].contains("checksum mismatch"), "{:?}", report.reasons);
    }

    #[test]
    fn unparsable_file_quarantines_wholesale_and_loads_cold() {
        let dir = std::env::temp_dir().join(format!("decisive_cache_q_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(CACHE_FILE), "{definitely not json").unwrap();
        let (store, report) = CacheStore::load_with_report(&dir).unwrap();
        assert!(store.is_empty());
        assert_eq!(report.quarantined, 1);
        assert!(dir.join(QUARANTINE_FILE).exists(), "bytes preserved for post-mortem");
        assert!(!dir.join(CACHE_FILE).exists(), "corrupt original moved away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_quarantines_and_next_save_recovers() {
        let dir = std::env::temp_dir().join(format!("decisive_cache_t_{}", std::process::id()));
        let mut store = CacheStore::new();
        store.put(ArtifactKind::GraphRow, fp("a"), "D1", &vec![1.0f64]).unwrap();
        store.save(&dir).unwrap();
        let full = std::fs::read_to_string(dir.join(CACHE_FILE)).unwrap();
        std::fs::write(dir.join(CACHE_FILE), &full[..full.len() / 2]).unwrap();

        let (cold, report) = CacheStore::load_with_report(&dir).unwrap();
        assert!(cold.is_empty());
        assert!(!report.is_clean());

        // A fresh save over the quarantined state loads cleanly again.
        store.save(&dir).unwrap();
        let (warm, report) = CacheStore::load_with_report(&dir).unwrap();
        assert_eq!(warm.len(), 1);
        assert!(report.is_clean(), "{report:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_layer_serves_sibling_overlays() {
        let shared = SharedStore::new();
        let mut a = CacheStore::new();
        a.attach_shared(shared.clone());
        let mut b = CacheStore::new();
        b.attach_shared(shared.clone());

        a.put(ArtifactKind::GraphRow, fp("k"), "D1", &41i64).unwrap();
        assert_eq!(shared.len(), 1, "writes publish to the shared layer");
        // A's own lookup is a local hit: no shared traffic.
        assert_eq!(a.get::<i64>(ArtifactKind::GraphRow, fp("k")), Some(41));
        assert_eq!(shared.shared_hits(), 0);
        // B misses locally and is served by the shared layer.
        assert_eq!(b.get::<i64>(ArtifactKind::GraphRow, fp("k")), Some(41));
        assert_eq!(shared.shared_hits(), 1);
        // A detached store sees nothing.
        assert_eq!(CacheStore::new().get::<i64>(ArtifactKind::GraphRow, fp("k")), None);
    }

    #[test]
    fn overlay_invalidation_and_persistence_stay_local() {
        let shared = SharedStore::new();
        let mut overlay = CacheStore::new();
        overlay.attach_shared(shared.clone());
        overlay.put(ArtifactKind::GraphRow, fp("a"), "D1", &1i64).unwrap();
        overlay.put(ArtifactKind::GraphFacts, fp("b"), "top", &2i64).unwrap();

        assert_eq!(overlay.invalidate_owner("D1"), 1);
        assert_eq!(shared.len(), 2, "GC of the overlay never touches the shared layer");
        // The shared copy still serves the invalidated key (content
        // addressing: same key, same artefact).
        assert_eq!(overlay.get::<i64>(ArtifactKind::GraphRow, fp("a")), Some(1));

        // to_value persists only the overlay's own entries.
        let persisted = CacheStore::from_value(&overlay.to_value());
        assert_eq!(persisted.len(), 1);
    }

    #[test]
    fn snapshot_and_absorb_round_trip_the_shared_layer() {
        let shared = SharedStore::new();
        let mut overlay = CacheStore::new();
        overlay.attach_shared(shared.clone());
        overlay.put(ArtifactKind::MonitorSet, fp("m"), "model", &7i64).unwrap();

        let snapshot = shared.snapshot();
        assert_eq!(snapshot.len(), 1);
        assert!(snapshot.shared().is_none(), "snapshots are detached");

        let rebuilt = SharedStore::new();
        assert_eq!(rebuilt.absorb(&snapshot), 1);
        assert_eq!(rebuilt.absorb(&snapshot), 0, "absorb is idempotent");
        let mut fresh = CacheStore::new();
        fresh.attach_shared(rebuilt);
        assert_eq!(fresh.get::<i64>(ArtifactKind::MonitorSet, fp("m")), Some(7));
    }

    #[test]
    fn repeated_quarantines_rotate_and_cap_instead_of_clobbering() {
        let dir = std::env::temp_dir().join(format!("decisive_cache_rot_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        for round in 0..8 {
            std::fs::write(dir.join(CACHE_FILE), format!("{{corrupt event {round}")).unwrap();
            let (_, report) = CacheStore::load_with_report(&dir).unwrap();
            assert_eq!(report.quarantined, 1, "round {round}");
        }
        let base = std::fs::read_to_string(dir.join(QUARANTINE_FILE)).unwrap();
        assert!(base.contains("event 7"), "base name holds the newest evidence");
        let rotated: Vec<u64> =
            (1..=7).filter(|n| dir.join(format!("{QUARANTINE_FILE}.{n}")).exists()).collect();
        assert_eq!(rotated, vec![3, 4, 5, 6, 7], "oldest copies pruned, newest kept");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_shared_layer_round_trips_across_opens() {
        let dir = std::env::temp_dir().join(format!("decisive_cache_dur_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (shared, recovery) =
            SharedStore::open_durable(&dir, StoreOptions::default(), Telemetry::noop()).unwrap();
        assert!(recovery.is_clean(), "{recovery:?}");
        assert!(shared.is_durable());
        let mut overlay = CacheStore::new();
        overlay.attach_shared(shared.clone());
        overlay.put(ArtifactKind::GraphRow, fp("a"), "D1", &41i64).unwrap();
        overlay.sync_durable().unwrap();
        drop((overlay, shared));

        let (shared, recovery) =
            SharedStore::open_durable(&dir, StoreOptions::default(), Telemetry::noop()).unwrap();
        assert!(recovery.is_clean(), "{recovery:?}");
        assert_eq!(shared.len(), 1);
        let mut fresh = CacheStore::new();
        fresh.attach_shared(shared.clone());
        assert_eq!(fresh.get::<i64>(ArtifactKind::GraphRow, fp("a")), Some(41));
        assert_eq!(shared.shared_hits(), 1, "served by the log read-through");
        assert_eq!(fresh.count_kind(ArtifactKind::GraphRow), 1, "union counting sees the log");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_cache_json_migrates_into_the_log_exactly_once() {
        let dir = std::env::temp_dir().join(format!("decisive_cache_mig_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut legacy = CacheStore::new();
        legacy.put(ArtifactKind::MonitorSet, fp("m"), "model", &7i64).unwrap();
        legacy.save(&dir).unwrap();

        let (shared, recovery) =
            SharedStore::open_durable(&dir, StoreOptions::default(), Telemetry::noop()).unwrap();
        assert_eq!(recovery.migrated_entries, 1);
        assert!(recovery.is_clean(), "clean migration is routine, not degraded: {recovery:?}");
        assert!(!dir.join(CACHE_FILE).exists(), "legacy file retired");
        assert!(dir.join(format!("{CACHE_FILE}.imported")).exists());
        let mut overlay = CacheStore::new();
        overlay.attach_shared(shared);
        assert_eq!(overlay.get::<i64>(ArtifactKind::MonitorSet, fp("m")), Some(7));

        // Once the manifest exists, a stray cache.json is never
        // re-imported — the log is authoritative.
        let mut stray = CacheStore::new();
        stray.put(ArtifactKind::MonitorSet, fp("other"), "model", &9i64).unwrap();
        stray.save(&dir).unwrap();
        let (shared, recovery) =
            SharedStore::open_durable(&dir, StoreOptions::default(), Telemetry::noop()).unwrap();
        assert_eq!(recovery.migrated_entries, 0);
        assert_eq!(shared.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let dir = std::env::temp_dir().join(format!("decisive_cache_a_{}", std::process::id()));
        let mut store = CacheStore::new();
        store.put(ArtifactKind::GraphFacts, fp("x"), "top", &"facts".to_owned()).unwrap();
        store.save(&dir).unwrap();
        assert!(dir.join(CACHE_FILE).exists());
        assert!(!dir.join(format!("{CACHE_FILE}.tmp")).exists());
        // A stale temp file from a killed run does not disturb loads and
        // is replaced by the next save.
        std::fs::write(dir.join(format!("{CACHE_FILE}.tmp")), "torn half-write").unwrap();
        let (loaded, report) = CacheStore::load_with_report(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert!(report.is_clean());
        store.save(&dir).unwrap();
        assert!(!dir.join(format!("{CACHE_FILE}.tmp")).exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
