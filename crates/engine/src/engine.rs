//! The incremental analysis engine: ties the content-addressed cache, the
//! model fingerprints and the parallel scheduler together and re-derives
//! the repository's analysis artefacts — graph FMEA tables, injection FMEA
//! tables, FTA subtree quantifications and runtime monitor sets — touching
//! only the work whose inputs changed.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use decisive_blocks::{to_circuit, BlockDiagram};
use decisive_core::campaign::{CampaignHealth, CaseOutcome, CaseReport};
use decisive_core::degraded::DegradedModeReport;
use decisive_core::fmea::graph::{self, ContainerFacts, GraphConfig};
use decisive_core::fmea::injection::{self, InjectionConfig};
use decisive_core::fmea::{FmeaRow, FmeaTable};
use decisive_core::impact::{self, ImpactReport, ModelChange};
use decisive_core::monitor::RuntimeMonitor;
use decisive_core::reliability::ReliabilityDb;
use decisive_core::CoreError;
use decisive_ssam::architecture::Component;
use decisive_ssam::id::Idx;
use decisive_ssam::model::SsamModel;

use crate::cache::{ArtifactKind, CacheStore};
use crate::error::{EngineError, Result};
use crate::fingerprint::{Fingerprint, Hasher};
use crate::model_fp;
use crate::scheduler::{BatchError, Scheduler};
use crate::stats::{EngineStats, PhaseStats};

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Worker threads for job batches; `1` runs inline.
    pub jobs: usize,
    /// Graph FMEA configuration (algorithm, path cap, scope).
    pub graph: GraphConfig,
    /// Per-job wall-clock deadline in milliseconds. Jobs that exceed it
    /// keep their results but are classified as timed-out in the phase
    /// stats and the degraded-mode report. `None` disables the deadline.
    pub deadline_ms: Option<f64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            graph: GraphConfig::default(),
            deadline_ms: None,
        }
    }
}

impl EngineConfig {
    /// A configuration with an explicit worker count.
    pub fn with_jobs(jobs: usize) -> Self {
        EngineConfig { jobs: jobs.max(1), ..EngineConfig::default() }
    }

    /// Sets the per-job deadline (see [`EngineConfig::deadline_ms`]).
    pub fn with_deadline_ms(mut self, ms: f64) -> Self {
        self.deadline_ms = Some(ms.max(0.0));
        self
    }
}

/// Persistable form of [`ContainerFacts`]: component identity by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FactsArtifact {
    critical: Vec<String>,
    on_some_path: Vec<String>,
}

impl FactsArtifact {
    fn from_facts(model: &SsamModel, facts: &ContainerFacts) -> FactsArtifact {
        let names = |set: &HashSet<Idx<Component>>| {
            let mut v: Vec<String> =
                set.iter().map(|&c| model.components[c].core.name.value().to_owned()).collect();
            v.sort_unstable();
            v
        };
        FactsArtifact { critical: names(&facts.critical), on_some_path: names(&facts.on_some_path) }
    }

    fn to_facts(&self, model: &SsamModel, container: Idx<Component>) -> ContainerFacts {
        let critical: HashSet<&str> = self.critical.iter().map(String::as_str).collect();
        let on_some: HashSet<&str> = self.on_some_path.iter().map(String::as_str).collect();
        let mut facts = ContainerFacts { critical: HashSet::new(), on_some_path: HashSet::new() };
        for &child in &model.components[container].children {
            let name = model.components[child].core.name.value();
            if critical.contains(name) {
                facts.critical.insert(child);
            }
            if on_some.contains(name) {
                facts.on_some_path.insert(child);
            }
        }
        facts
    }
}

/// Persisted form of one injection row: the FMEA verdict *plus* how the
/// campaign supervisor classified the case, so a warm cache reproduces the
/// full [`CampaignHealth`] report without re-simulating anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct InjectionArtifact {
    row: FmeaRow,
    outcome: CaseOutcome,
    iterations: usize,
}

/// File name of the persisted campaign-health report inside a cache
/// directory, written next to [`crate::cache::CACHE_FILE`].
pub const CAMPAIGN_FILE: &str = "campaign.json";

/// Quarantine destination of a malformed [`CAMPAIGN_FILE`]: the bytes are
/// preserved for post-mortem and the report restarts cold.
pub const CAMPAIGN_QUARANTINE_FILE: &str = "campaign.quarantine.json";

/// Quantified fault subtree of one container (see `Engine::analyze_fta`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FtaSubtreeSummary {
    /// Container component name.
    pub container: String,
    /// `false` when the container had no input→output paths to analyse
    /// (or exceeded the path cap); the numeric fields are then zeroed.
    pub analysable: bool,
    /// Top-event probability over the mission time.
    pub top_probability: f64,
    /// Basic events forming singleton minimal cut sets.
    pub single_points: Vec<String>,
    /// Minimal cut sets, by basic event name.
    pub minimal_cut_sets: Vec<Vec<String>>,
}

/// The incremental analysis engine.
///
/// # Examples
///
/// ```
/// use decisive_core::case_study;
/// use decisive_engine::{Engine, EngineConfig};
///
/// let (model, top) = case_study::ssam_model();
/// let mut engine = Engine::new(EngineConfig::with_jobs(2));
/// let cold = engine.analyze_graph(&model, top).unwrap();
/// let warm = engine.analyze_graph(&model, top).unwrap();
/// assert_eq!(cold, warm);
/// let rows = engine.stats().phase("graph-rows").unwrap();
/// assert_eq!(rows.cache_misses, 0, "second run is fully cached");
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
    cache: CacheStore,
    stats: EngineStats,
    last_campaign: Option<CampaignHealth>,
    degraded: DegradedModeReport,
}

impl Engine {
    /// An engine with an empty cache.
    pub fn new(config: EngineConfig) -> Self {
        Engine::with_cache(config, CacheStore::new())
    }

    /// An engine starting from a previously persisted (or hand-built)
    /// cache.
    pub fn with_cache(config: EngineConfig, cache: CacheStore) -> Self {
        Engine {
            config,
            cache,
            stats: EngineStats::default(),
            last_campaign: None,
            degraded: DegradedModeReport::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The artefact cache.
    pub fn cache(&self) -> &CacheStore {
        &self.cache
    }

    /// Observability counters accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Clears the counters (the cache keeps its contents).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// The health report of the most recent supervised injection campaign
    /// ([`Engine::analyze_injection`]), whether it ran cold, warm, or was
    /// restored by [`Engine::load_cache`]. `None` before any campaign.
    pub fn campaign_health(&self) -> Option<&CampaignHealth> {
        self.last_campaign.as_ref()
    }

    /// Everything this engine substituted, quarantined or abandoned so
    /// far instead of failing. Empty for pristine runs.
    pub fn degraded_report(&self) -> &DegradedModeReport {
        &self.degraded
    }

    /// Mutable access to the degraded-mode report, for callers (like the
    /// CLI) that degrade on the engine's behalf — e.g. a reliability file
    /// loaded leniently.
    pub fn degraded_report_mut(&mut self) -> &mut DegradedModeReport {
        &mut self.degraded
    }

    /// A scheduler honouring the configured worker count and deadline.
    fn scheduler(&self) -> Scheduler {
        let scheduler = Scheduler::new(self.config.jobs);
        match self.config.deadline_ms {
            Some(ms) => scheduler.with_deadline_ms(ms),
            None => scheduler,
        }
    }

    /// Loads the cache persisted in `dir` (empty when absent), restoring
    /// the campaign-health report persisted next to it when present.
    ///
    /// Corruption is not fatal: cache entries failing validation are
    /// quarantined and recomputed ([`CacheStore::load_with_report`]), and
    /// a malformed campaign report is moved to
    /// [`CAMPAIGN_QUARANTINE_FILE`]. Both are recorded in
    /// [`Engine::degraded_report`] and the engine stats.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Cache`] only on unreadable files (I/O
    /// failures, not corruption).
    pub fn load_cache(&mut self, dir: impl AsRef<std::path::Path>) -> Result<()> {
        let dir = dir.as_ref();
        let (cache, report) = CacheStore::load_with_report(dir)?;
        self.cache = cache;
        self.stats.quarantined_entries += report.quarantined;
        self.degraded.quarantined_cache_entries += report.quarantined;
        self.degraded.notes.extend(report.reasons);
        let file = dir.join(CAMPAIGN_FILE);
        if file.exists() {
            let bytes = std::fs::read(&file)
                .map_err(|e| EngineError::Cache(format!("{}: {e}", file.display())))?;
            // A malformed report (invalid UTF-8, bad JSON, wrong shape) is
            // quarantined, not fatal: like the cache itself, campaign
            // history may be cold but never wrong.
            let restored: Option<CampaignHealth> = String::from_utf8(bytes.clone())
                .ok()
                .and_then(|text| decisive_federation::json::parse(&text).ok())
                .and_then(|value| decisive_federation::serde_bridge::from_value(&value).ok());
            match restored {
                Some(health) => self.last_campaign = Some(health),
                None => {
                    let quarantine = dir.join(CAMPAIGN_QUARANTINE_FILE);
                    if std::fs::rename(&file, &quarantine).is_err() {
                        let _ = std::fs::write(&quarantine, &bytes);
                        let _ = std::fs::remove_file(&file);
                    }
                    self.degraded.notes.push(format!(
                        "campaign report `{}` was malformed; moved to `{CAMPAIGN_QUARANTINE_FILE}`",
                        file.display()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Persists the cache into `dir`, along with the latest campaign-health
    /// report (as [`CAMPAIGN_FILE`]) when an injection campaign has run.
    /// Both files are written atomically (temp file + fsync + rename), so
    /// a crash mid-save leaves the previous files intact.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Cache`] on I/O failure.
    pub fn save_cache(&self, dir: impl AsRef<std::path::Path>) -> Result<()> {
        let dir = dir.as_ref();
        self.cache.save(dir)?;
        if let Some(health) = &self.last_campaign {
            let value = decisive_federation::serde_bridge::to_value(health)
                .map_err(|e| EngineError::Cache(format!("unserialisable campaign report: {e}")))?;
            let file = dir.join(CAMPAIGN_FILE);
            crate::cache::atomic_write(&file, &decisive_federation::json::to_string(&value))
                .map_err(|e| EngineError::Cache(format!("{}: {e}", file.display())))?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Graph path (S8)
    // ------------------------------------------------------------------

    /// Runs the graph FMEA of Algorithm 1 incrementally: container path
    /// facts and per-component rows are fetched from the cache when their
    /// input fingerprints match and recomputed in parallel otherwise. The
    /// merged table is identical — rows, order and all — to
    /// [`graph::run`].
    ///
    /// # Errors
    ///
    /// Propagates analysis errors and scheduler failures.
    pub fn analyze_graph(&mut self, model: &SsamModel, top: Idx<Component>) -> Result<FmeaTable> {
        let graph_config = self.config.graph.clone();
        let config_fp = model_fp::graph_config_fingerprint(model, &graph_config);
        let scheduler = self.scheduler();

        // ---- Phase 1: container path facts -----------------------------
        let start = Instant::now();
        let mut phase = PhaseStats::new("graph-facts");
        let containers = collect_containers(model, top);
        phase.jobs_total = containers.len();
        let mut topo_fp: HashMap<Idx<Component>, Fingerprint> = HashMap::new();
        let mut facts: HashMap<Idx<Component>, ContainerFacts> = HashMap::new();
        let mut misses: Vec<(Idx<Component>, Fingerprint)> = Vec::new();
        for &container in &containers {
            let topo = model_fp::topology_fingerprint(model, container);
            topo_fp.insert(container, topo);
            let key = Hasher::new()
                .write_str("graph-facts")
                .write_fingerprint(topo)
                .write_fingerprint(config_fp)
                .finish();
            match self.cache.get::<FactsArtifact>(ArtifactKind::GraphFacts, key) {
                Some(artifact) => {
                    phase.cache_hits += 1;
                    facts.insert(container, artifact.to_facts(model, container));
                }
                None => {
                    phase.cache_misses += 1;
                    misses.push((container, key));
                }
            }
        }
        phase.jobs_executed = misses.len();
        if !misses.is_empty() {
            let jobs: Vec<_> = misses
                .iter()
                .map(|&(container, _)| {
                    let graph_config = &graph_config;
                    move || graph::container_facts(model, container, graph_config)
                })
                .collect();
            let out = scheduler.run_batch(&jobs).map_err(|e| batch_error(e, "graph-facts"))?;
            phase.retries = out.retries;
            phase.max_job_ms = out.max_job_ms;
            phase.timed_out = out.timed_out.len();
            for &slow in &out.timed_out {
                let (container, _) = misses[slow];
                self.degraded
                    .timed_out_jobs
                    .push(format!("graph-facts/{}", model.components[container].core.name.value()));
            }
            for ((container, key), result) in misses.iter().zip(out.results) {
                let fresh = result?;
                self.cache.put(
                    ArtifactKind::GraphFacts,
                    *key,
                    model.components[*container].core.name.value(),
                    &FactsArtifact::from_facts(model, &fresh),
                )?;
                facts.insert(*container, fresh);
            }
        }
        phase.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        self.stats.record(phase);

        // Criticality chain: a container is critical iff every enclosing
        // container is critical and it sits on all paths one level up.
        let mut critical_flag: HashMap<Idx<Component>, bool> = HashMap::new();
        critical_flag.insert(top, true);
        for &container in &containers {
            let flag = critical_flag[&container];
            for &child in &model.components[container].children {
                if !model.components[child].is_atomic() {
                    critical_flag
                        .insert(child, flag && facts[&container].critical.contains(&child));
                }
            }
        }

        // ---- Phase 2: per-component rows -------------------------------
        let start = Instant::now();
        let mut phase = PhaseStats::new("graph-rows");
        let mut work: Vec<(Idx<Component>, Idx<Component>)> = Vec::new();
        flatten_work(model, top, &mut work);
        phase.jobs_total = work.len();
        let mut merged: Vec<Option<Vec<FmeaRow>>> = vec![None; work.len()];
        let mut misses: Vec<(usize, Fingerprint)> = Vec::new();
        for (i, &(container, child)) in work.iter().enumerate() {
            let key = Hasher::new()
                .write_str("graph-row")
                .write_fingerprint(model_fp::component_fingerprint(model, child))
                .write_fingerprint(topo_fp[&container])
                .write_bool(critical_flag[&container])
                .write_fingerprint(config_fp)
                .finish();
            match self.cache.get::<Vec<FmeaRow>>(ArtifactKind::GraphRow, key) {
                Some(rows) => {
                    phase.cache_hits += 1;
                    merged[i] = Some(rows);
                }
                None => {
                    phase.cache_misses += 1;
                    misses.push((i, key));
                }
            }
        }
        phase.jobs_executed = misses.len();
        if !misses.is_empty() {
            let jobs: Vec<_> = misses
                .iter()
                .map(|&(i, _)| {
                    let (container, child) = work[i];
                    let facts = &facts;
                    let graph_config = &graph_config;
                    let flag = critical_flag[&container];
                    move || {
                        graph::component_rows(model, child, flag, &facts[&container], graph_config)
                    }
                })
                .collect();
            let out = scheduler.run_batch(&jobs).map_err(|e| batch_error(e, "graph-rows"))?;
            phase.retries = out.retries;
            phase.max_job_ms = out.max_job_ms;
            phase.timed_out = out.timed_out.len();
            for &slow in &out.timed_out {
                let (_, child) = work[misses[slow].0];
                self.degraded
                    .timed_out_jobs
                    .push(format!("graph-rows/{}", model.components[child].core.name.value()));
            }
            for (&(i, key), rows) in misses.iter().zip(&out.results) {
                let (_, child) = work[i];
                self.cache.put(
                    ArtifactKind::GraphRow,
                    key,
                    model.components[child].core.name.value(),
                    rows,
                )?;
                merged[i] = Some(rows.clone());
            }
        }
        phase.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        self.stats.record(phase);

        // ---- Deterministic merge ---------------------------------------
        let mut table = FmeaTable::new(model.components[top].core.name.value());
        for rows in merged {
            for row in rows.expect("every work item resolved") {
                table.push(row);
            }
        }
        Ok(table)
    }

    /// Re-analyses after a model revision: diffs `old` against `new`,
    /// garbage-collects the cache keys owned by impacted components (the
    /// counted "invalidated keys"), then runs [`Engine::analyze_graph`] on
    /// the new revision — unchanged components hit the cache, impacted
    /// ones recompute.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    pub fn rerun(
        &mut self,
        old: &SsamModel,
        new: &SsamModel,
        new_top: Idx<Component>,
    ) -> Result<(FmeaTable, ImpactReport)> {
        let report = impact::diff_models(old, new);
        let mut invalidated = 0;
        for name in &report.impacted_components {
            invalidated += self.cache.invalidate_owner(name);
        }
        if report.changes.iter().any(|c| matches!(c, ModelChange::HazardsChanged)) {
            // Hazard-set changes can re-scope every row under per-hazard
            // analysis; drop the row artefacts wholesale.
            invalidated += self.cache.invalidate_kind(ArtifactKind::GraphRow);
        }
        self.stats.invalidated_keys += invalidated;
        let table = self.analyze_graph(new, new_top)?;
        Ok((table, report))
    }

    /// The escape hatch: runs the incremental analysis *and* the
    /// from-scratch [`graph::run`], failing loudly if they differ in any
    /// row. Use it to validate a cache of unknown provenance.
    ///
    /// # Errors
    ///
    /// [`EngineError::Verification`] on divergence, otherwise as
    /// [`Engine::analyze_graph`].
    pub fn verify_against_full(
        &mut self,
        model: &SsamModel,
        top: Idx<Component>,
    ) -> Result<FmeaTable> {
        let incremental = self.analyze_graph(model, top)?;
        let full = graph::run(model, top, &self.config.graph)?;
        if incremental != full {
            return Err(EngineError::Verification(format!(
                "{} incremental vs {} full rows, verdict disagreement {:.4}",
                incremental.rows.len(),
                full.rows.len(),
                incremental.disagreement(&full),
            )));
        }
        Ok(incremental)
    }

    // ------------------------------------------------------------------
    // Injection path (S7)
    // ------------------------------------------------------------------

    /// Runs the fault-injection FMEA incrementally under full campaign
    /// supervision. Rows are keyed by the whole-circuit digest plus the
    /// candidate's own content and the solver ladder configuration — any
    /// circuit edit invalidates every row (a fault's effect depends on the
    /// entire network), while re-analyses of an unchanged circuit are pure
    /// cache hits and skip simulation entirely.
    ///
    /// Each cached artefact carries its supervisor classification, so the
    /// [`CampaignHealth`] report (see [`Engine::campaign_health`]) covers
    /// hits and misses alike, and the campaign circuit breaker is enforced
    /// on every run — a warm cache full of unsolvable rows still aborts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`injection::run_supervised`] — including
    /// [`CoreError::CampaignAborted`] when the breaker trips — plus
    /// scheduler failures.
    pub fn analyze_injection(
        &mut self,
        diagram: &BlockDiagram,
        reliability: &ReliabilityDb,
        config: &InjectionConfig,
    ) -> Result<FmeaTable> {
        if !(config.threshold > 0.0 && config.threshold.is_finite()) {
            return Err(EngineError::Core(CoreError::InvalidParameter {
                message: format!("threshold must be positive and finite, got {}", config.threshold),
            }));
        }
        config.campaign.validate().map_err(EngineError::Core)?;
        let start = Instant::now();
        let mut phase = PhaseStats::new("injection-rows");
        let circuit_fp = model_fp::serialized_fingerprint(diagram, "block-diagram");
        let solver = &config.campaign.solver;
        let candidates = injection::candidates(diagram, reliability);
        phase.jobs_total = candidates.len();
        let mut merged: Vec<Option<FmeaRow>> = vec![None; candidates.len()];
        let mut reports: Vec<Option<CaseReport>> = vec![None; candidates.len()];
        let mut misses: Vec<(usize, Fingerprint)> = Vec::new();
        for (i, candidate) in candidates.iter().enumerate() {
            let key = Hasher::new()
                .write_str("injection-row")
                .write_fingerprint(circuit_fp)
                .write_fingerprint(model_fp::candidate_fingerprint(candidate))
                .write_f64(config.threshold)
                .write_bool(solver.damped)
                .write_bool(solver.gmin_stepping)
                .write_bool(solver.source_stepping)
                .write_u64(solver.budget as u64)
                .finish();
            match self.cache.get::<InjectionArtifact>(ArtifactKind::InjectionRow, key) {
                Some(artifact) => {
                    phase.cache_hits += 1;
                    reports[i] = Some(CaseReport {
                        case: format!("{}/{}", candidate.name, candidate.mode.name),
                        outcome: artifact.outcome,
                        iterations: artifact.iterations,
                        wall_ms: 0.0, // served from the cache, not re-solved
                    });
                    merged[i] = Some(artifact.row);
                }
                None => {
                    phase.cache_misses += 1;
                    misses.push((i, key));
                }
            }
        }
        phase.jobs_executed = misses.len();
        if !misses.is_empty() {
            // Lower and solve the nominal circuit once, only when at least
            // one candidate actually needs simulating.
            let lowered = to_circuit(diagram).map_err(CoreError::from)?;
            let nominal_solution = lowered.circuit.dc().map_err(CoreError::from)?;
            let nominal =
                lowered.circuit.all_sensor_readings(&nominal_solution).map_err(CoreError::from)?;
            let jobs: Vec<_> = misses
                .iter()
                .map(|&(i, _)| {
                    let candidate = &candidates[i];
                    let lowered = &lowered;
                    let nominal = &nominal;
                    move || {
                        injection::analyse_candidate_supervised(candidate, lowered, nominal, config)
                    }
                })
                .collect();
            let out =
                self.scheduler().run_batch(&jobs).map_err(|e| batch_error(e, "injection-rows"))?;
            phase.retries = out.retries;
            phase.max_job_ms = out.max_job_ms;
            phase.timed_out = out.timed_out.len();
            for &slow in &out.timed_out {
                let candidate = &candidates[misses[slow].0];
                self.degraded
                    .timed_out_jobs
                    .push(format!("injection-rows/{}/{}", candidate.name, candidate.mode.name));
            }
            for (&(i, key), (row, report)) in misses.iter().zip(out.results) {
                self.cache.put(
                    ArtifactKind::InjectionRow,
                    key,
                    &candidates[i].name,
                    &InjectionArtifact {
                        row: row.clone(),
                        outcome: report.outcome.clone(),
                        iterations: report.iterations,
                    },
                )?;
                merged[i] = Some(row);
                reports[i] = Some(report);
            }
        }
        phase.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        self.stats.record(phase);

        let reports: Vec<CaseReport> =
            reports.into_iter().map(|r| r.expect("every candidate classified")).collect();
        let mut health = CampaignHealth::from_reports(&reports);
        health.absorb_degradation(&self.degraded);
        // Keep the report visible even when the breaker aborts the run —
        // it is exactly then that the operator needs the failed-case list.
        self.last_campaign = Some(health.clone());
        health.enforce(&config.campaign).map_err(EngineError::Core)?;

        let mut table = FmeaTable::new(diagram.name());
        for row in merged {
            table.push(row.expect("every candidate resolved"));
        }
        Ok(table)
    }

    // ------------------------------------------------------------------
    // FTA subtrees (S14) and monitor sets (S15)
    // ------------------------------------------------------------------

    /// Quantifies the fault subtree of every container, cached per
    /// container: the key covers the container's topology, its children's
    /// content and the mission time, so a FIT edit re-quantifies one
    /// subtree. Containers without input→output paths (or beyond the path
    /// cap) come back with `analysable: false`.
    ///
    /// # Errors
    ///
    /// Propagates scheduler and cache failures.
    pub fn analyze_fta(
        &mut self,
        model: &SsamModel,
        top: Idx<Component>,
        mission_hours: f64,
    ) -> Result<Vec<FtaSubtreeSummary>> {
        let start = Instant::now();
        let mut phase = PhaseStats::new("fta-subtrees");
        let containers = collect_containers(model, top);
        phase.jobs_total = containers.len();
        let mut merged: Vec<Option<FtaSubtreeSummary>> = vec![None; containers.len()];
        let mut misses: Vec<(usize, Fingerprint)> = Vec::new();
        for (i, &container) in containers.iter().enumerate() {
            let mut h = Hasher::new();
            h.write_str("fta-subtree");
            h.write_fingerprint(model_fp::topology_fingerprint(model, container));
            for &child in &model.components[container].children {
                h.write_fingerprint(model_fp::component_fingerprint(model, child));
            }
            h.write_f64(mission_hours);
            h.write_u64(self.config.graph.max_paths as u64);
            let key = h.finish();
            match self.cache.get::<FtaSubtreeSummary>(ArtifactKind::FtaSubtree, key) {
                Some(summary) => {
                    phase.cache_hits += 1;
                    merged[i] = Some(summary);
                }
                None => {
                    phase.cache_misses += 1;
                    misses.push((i, key));
                }
            }
        }
        phase.jobs_executed = misses.len();
        if !misses.is_empty() {
            let max_paths = self.config.graph.max_paths;
            let jobs: Vec<_> = misses
                .iter()
                .map(|&(i, _)| {
                    let container = containers[i];
                    move || quantify_subtree(model, container, mission_hours, max_paths)
                })
                .collect();
            let out =
                self.scheduler().run_batch(&jobs).map_err(|e| batch_error(e, "fta-subtrees"))?;
            phase.retries = out.retries;
            phase.max_job_ms = out.max_job_ms;
            phase.timed_out = out.timed_out.len();
            for &slow in &out.timed_out {
                let name = model.components[containers[misses[slow].0]].core.name.value();
                self.degraded.timed_out_jobs.push(format!("fta-subtrees/{name}"));
            }
            for (&(i, key), summary) in misses.iter().zip(&out.results) {
                self.cache.put(ArtifactKind::FtaSubtree, key, &summary.container, summary)?;
                merged[i] = Some(summary.clone());
            }
        }
        phase.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        self.stats.record(phase);
        Ok(merged.into_iter().map(|s| s.expect("every container resolved")).collect())
    }

    /// Generates (or fetches) the runtime monitor of `model`, keyed by the
    /// monitor-relevant model slice (limited IO nodes and their dynamic
    /// context).
    ///
    /// # Errors
    ///
    /// Propagates cache serialisation failures.
    pub fn monitors(&mut self, model: &SsamModel) -> Result<RuntimeMonitor> {
        let start = Instant::now();
        let mut phase = PhaseStats::new("monitor-set");
        phase.jobs_total = 1;
        let key = model_fp::monitor_fingerprint(model);
        let monitor = match self.cache.get::<RuntimeMonitor>(ArtifactKind::MonitorSet, key) {
            Some(monitor) => {
                phase.cache_hits += 1;
                monitor
            }
            None => {
                phase.cache_misses += 1;
                phase.jobs_executed = 1;
                let monitor = RuntimeMonitor::generate(model);
                self.cache.put(ArtifactKind::MonitorSet, key, model.name.value(), &monitor)?;
                monitor
            }
        };
        phase.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        self.stats.record(phase);
        Ok(monitor)
    }
}

fn batch_error(e: BatchError, phase: &str) -> EngineError {
    match e {
        BatchError::JobFailed { index } => {
            EngineError::JobFailed { index, phase: phase.to_owned() }
        }
        BatchError::Cancelled => EngineError::Cancelled,
    }
}

/// Pre-order list of analysed containers: `top` and every non-atomic
/// descendant, in the recursion order of Algorithm 1.
fn collect_containers(model: &SsamModel, top: Idx<Component>) -> Vec<Idx<Component>> {
    let mut out = Vec::new();
    fn walk(model: &SsamModel, container: Idx<Component>, out: &mut Vec<Idx<Component>>) {
        out.push(container);
        for &child in &model.components[container].children {
            if !model.components[child].is_atomic() {
                walk(model, child, out);
            }
        }
    }
    walk(model, top, &mut out);
    out
}

/// The `(container, child)` work list in table order: each child's own
/// rows, immediately followed by its subtree's (Algorithm 1 line 14).
fn flatten_work(
    model: &SsamModel,
    container: Idx<Component>,
    out: &mut Vec<(Idx<Component>, Idx<Component>)>,
) {
    for &child in &model.components[container].children {
        out.push((container, child));
        if !model.components[child].is_atomic() {
            flatten_work(model, child, out);
        }
    }
}

fn quantify_subtree(
    model: &SsamModel,
    container: Idx<Component>,
    mission_hours: f64,
    max_paths: usize,
) -> FtaSubtreeSummary {
    let name = model.components[container].core.name.value().to_owned();
    match decisive_fta::build_fault_tree(model, container, max_paths) {
        Ok(synthesised) => {
            let quant = synthesised.tree.quantify(mission_hours);
            let single_points = synthesised
                .tree
                .single_points()
                .into_iter()
                .map(|id| synthesised.tree.node(id).name().to_owned())
                .collect();
            FtaSubtreeSummary {
                container: name,
                analysable: true,
                top_probability: quant.top_probability,
                single_points,
                minimal_cut_sets: synthesised.tree.cut_sets_by_name(),
            }
        }
        Err(_) => FtaSubtreeSummary {
            container: name,
            analysable: false,
            top_probability: 0.0,
            single_points: Vec::new(),
            minimal_cut_sets: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decisive_core::case_study;
    use decisive_ssam::architecture::Fit;

    #[test]
    fn incremental_equals_full_on_the_case_study() {
        let (model, top) = case_study::ssam_model();
        let mut engine = Engine::new(EngineConfig::with_jobs(1));
        let table = engine.verify_against_full(&model, top).unwrap();
        assert!((table.spfm() - 0.0538).abs() < 5e-4);
    }

    #[test]
    fn fit_edit_reruns_exactly_one_row_job() {
        let (old, old_top) = case_study::ssam_model();
        let (mut new, new_top) = case_study::ssam_model();
        let mut engine = Engine::new(EngineConfig::with_jobs(2));
        engine.analyze_graph(&old, old_top).unwrap();

        let d1 = new.component_by_name("D1").unwrap();
        new.components[d1].fit = Some(Fit::new(20.0));
        engine.reset_stats();
        let (table, report) = engine.rerun(&old, &new, new_top).unwrap();
        assert!(report.requires_reanalysis());
        assert_eq!(engine.stats().invalidated_keys, 1, "only D1's row artefact");
        let rows = engine.stats().phase("graph-rows").unwrap();
        assert_eq!(rows.jobs_executed, 1, "only D1 recomputes");
        let facts = engine.stats().phase("graph-facts").unwrap();
        assert_eq!(facts.jobs_executed, 0, "topology unchanged");
        assert_eq!(table, graph::run(&new, new_top, &GraphConfig::default()).unwrap());
    }

    #[test]
    fn monitor_set_round_trips_through_the_cache() {
        let (model, _) = case_study::ssam_model();
        let mut engine = Engine::new(EngineConfig::with_jobs(1));
        let cold = engine.monitors(&model).unwrap();
        assert!(!cold.checks().is_empty());
        let warm = engine.monitors(&model).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(engine.stats().phase("monitor-set").unwrap().cache_hits, 1);
    }

    #[test]
    fn fta_subtrees_cache_by_content() {
        let (model, top) = case_study::ssam_model();
        let mut engine = Engine::new(EngineConfig::with_jobs(2));
        let cold = engine.analyze_fta(&model, top, 10_000.0).unwrap();
        assert!(cold.iter().any(|s| s.analysable));
        let warm = engine.analyze_fta(&model, top, 10_000.0).unwrap();
        assert_eq!(cold, warm);
        let phase = engine.stats().phase("fta-subtrees").unwrap();
        assert_eq!(phase.cache_misses, 0, "warm pass is pure hits");
        // A different mission time is a different artefact.
        engine.analyze_fta(&model, top, 20_000.0).unwrap();
        assert!(engine.stats().phase("fta-subtrees").unwrap().cache_misses > 0);
    }
}
