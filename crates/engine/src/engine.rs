//! The incremental analysis engine: ties the content-addressed cache, the
//! model fingerprints and the parallel scheduler together and re-derives
//! the repository's analysis artefacts — graph FMEA tables, injection FMEA
//! tables, FTA subtree quantifications and runtime monitor sets — touching
//! only the work whose inputs changed.
//!
//! Each analysis is an [`crate::pass::AnalysisPass`]; the `analyze_*`
//! methods below are thin wrappers that run one pass on its own, while
//! [`Engine::run_pipeline`] (in [`crate::pipeline`]) executes the whole
//! DAG with cross-pass parallelism.

use serde::{Deserialize, Serialize};

use decisive_obs::Telemetry;

use decisive_blocks::BlockDiagram;
use decisive_core::campaign::CampaignHealth;
use decisive_core::degraded::DegradedModeReport;
use decisive_core::fmea::graph::{self, GraphConfig};
use decisive_core::fmea::injection::InjectionConfig;
use decisive_core::fmea::FmeaTable;
use decisive_core::impact::{self, ImpactReport, ModelChange};
use decisive_core::monitor::RuntimeMonitor;
use decisive_core::montecarlo::MonteCarloReport;
use decisive_core::patterns::RecommendationReport;
use decisive_core::reliability::ReliabilityDb;
use decisive_ssam::architecture::Component;
use decisive_ssam::id::Idx;
use decisive_ssam::model::SsamModel;

use crate::cache::{ArtifactKind, CacheStore, SharedStore};
use crate::error::{EngineError, Result};
use crate::pass::{
    ids, AnalysisPass, FtaPass, GraphFmeaPass, InjectionFmeaPass, MonitorPass, MonteCarloPass,
    PassArtifact, PipelineInput, RecommendPass,
};
use crate::pipeline::Pipeline;
use crate::scheduler::RetryPolicy;
use crate::stats::EngineStats;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Worker threads for job batches; `1` runs inline.
    pub jobs: usize,
    /// Graph FMEA configuration (algorithm, path cap, scope).
    pub graph: GraphConfig,
    /// Per-job wall-clock deadline in milliseconds. Jobs that exceed it
    /// keep their results but are classified as timed-out in the phase
    /// stats and the degraded-mode report. `None` disables the deadline.
    pub deadline_ms: Option<f64>,
    /// How panicking jobs are retried (see
    /// [`crate::scheduler::RetryPolicy`]). The default reproduces the
    /// historical retry-once-immediately behaviour exactly.
    pub retry: RetryPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            graph: GraphConfig::default(),
            deadline_ms: None,
            retry: RetryPolicy::default(),
        }
    }
}

impl EngineConfig {
    /// A configuration with an explicit worker count.
    pub fn with_jobs(jobs: usize) -> Self {
        EngineConfig { jobs: jobs.max(1), ..EngineConfig::default() }
    }

    /// Sets the per-job deadline (see [`EngineConfig::deadline_ms`]).
    pub fn with_deadline_ms(mut self, ms: f64) -> Self {
        self.deadline_ms = Some(ms.max(0.0));
        self
    }

    /// Sets the retry policy (see [`EngineConfig::retry`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// File name of the persisted campaign-health report inside a cache
/// directory, written next to [`crate::cache::CACHE_FILE`].
pub const CAMPAIGN_FILE: &str = "campaign.json";

/// Quarantine destination of a malformed [`CAMPAIGN_FILE`]: the bytes are
/// preserved for post-mortem and the report restarts cold.
pub const CAMPAIGN_QUARANTINE_FILE: &str = "campaign.quarantine.json";

/// Quantified fault subtree of one container (see `Engine::analyze_fta`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FtaSubtreeSummary {
    /// Container component name.
    pub container: String,
    /// `false` when the container had no input→output paths to analyse
    /// (or exceeded the path cap); the numeric fields are then zeroed.
    pub analysable: bool,
    /// Top-event probability over the mission time.
    pub top_probability: f64,
    /// Basic events forming singleton minimal cut sets.
    pub single_points: Vec<String>,
    /// Minimal cut sets, by basic event name.
    pub minimal_cut_sets: Vec<Vec<String>>,
}

/// The incremental analysis engine.
///
/// # Examples
///
/// ```
/// use decisive_core::case_study;
/// use decisive_engine::{Engine, EngineConfig};
///
/// let (model, top) = case_study::ssam_model();
/// let mut engine = Engine::new(EngineConfig::with_jobs(2));
/// let cold = engine.analyze_graph(&model, top).unwrap();
/// let warm = engine.analyze_graph(&model, top).unwrap();
/// assert_eq!(cold, warm);
/// let rows = engine.stats().phase("graph-rows").unwrap();
/// assert_eq!(rows.cache_misses, 0, "second run is fully cached");
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    pub(crate) config: EngineConfig,
    pub(crate) cache: CacheStore,
    pub(crate) stats: EngineStats,
    pub(crate) last_campaign: Option<CampaignHealth>,
    pub(crate) degraded: DegradedModeReport,
    pub(crate) telemetry: Telemetry,
}

/// Step-by-step [`Engine`] construction — the documented way to configure
/// an engine. `Engine::new` / `Engine::with_cache` remain as thin
/// shortcuts for the no-frills cases.
///
/// # Examples
///
/// ```
/// use decisive_core::case_study;
/// use decisive_engine::Engine;
/// use decisive_obs::Telemetry;
///
/// let (telemetry, sink) = Telemetry::recording();
/// let mut engine = Engine::builder()
///     .jobs(2)
///     .deadline_ms(30_000.0)
///     .telemetry(telemetry)
///     .build()
///     .unwrap();
/// let (model, top) = case_study::ssam_model();
/// engine.analyze_graph(&model, top).unwrap();
/// assert!(sink.drain().counters["cache.graph-row.misses"] > 0);
/// ```
#[derive(Debug, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
    cache: Option<CacheStore>,
    cache_dir: Option<std::path::PathBuf>,
    shared: Option<SharedStore>,
    telemetry: Telemetry,
}

impl EngineBuilder {
    /// Sets the worker-thread budget (clamped to at least one).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = jobs.max(1);
        self
    }

    /// Sets the per-job wall-clock deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: f64) -> Self {
        self.config.deadline_ms = Some(ms.max(0.0));
        self
    }

    /// Sets the graph FMEA configuration.
    pub fn graph(mut self, graph: GraphConfig) -> Self {
        self.config.graph = graph;
        self
    }

    /// Sets the job retry policy (see [`EngineConfig::retry`]).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Replaces the whole configuration (for callers that already hold an
    /// [`EngineConfig`]). Field-level setters called afterwards still
    /// apply.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Starts from a hand-built cache instead of an empty one.
    pub fn cache(mut self, cache: CacheStore) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Loads the persisted cache (and campaign report) from `dir` at
    /// [`EngineBuilder::build`] time — the builder equivalent of
    /// [`Engine::load_cache`]. Overrides [`EngineBuilder::cache`].
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Layers the engine's cache over a cross-session [`SharedStore`]:
    /// the engine's own cache becomes a private overlay, falling back to
    /// (and publishing into) the shared layer, so sibling engines built
    /// over the same store deduplicate artefacts by fingerprint. This is
    /// how the analysis daemon multiplexes sessions.
    pub fn shared_store(mut self, shared: SharedStore) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Sets the telemetry sink every analysis reports spans, counters and
    /// histograms to. Defaults to the free no-op handle.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Builds the engine, loading the persisted cache when
    /// [`EngineBuilder::cache_dir`] was set.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Cache`] when the cache directory exists but
    /// cannot be read (corruption is quarantined, not fatal — see
    /// [`Engine::load_cache`]).
    pub fn build(self) -> Result<Engine> {
        let mut engine = Engine::with_cache(self.config, self.cache.unwrap_or_default());
        engine.telemetry = self.telemetry;
        match (self.cache_dir, self.shared) {
            (Some(dir), None) => {
                // The durable path: persistence lives in the segmented
                // append-only store under `dir/store/`, recovered by one
                // index scan (values load lazily on first hit) instead of
                // a wholesale JSON parse. A legacy `cache.json` migrates
                // into the log on the first such open.
                let (shared, recovery) = SharedStore::open_durable(
                    &dir,
                    crate::store::StoreOptions::default(),
                    engine.telemetry.clone(),
                )?;
                engine.stats.quarantined_entries += recovery.quarantined_frames;
                engine.degraded.quarantined_cache_entries += recovery.quarantined_frames;
                engine.degraded.notes.extend(recovery.notes.iter().cloned());
                engine.load_campaign(&dir)?;
                engine.cache.attach_shared(shared);
            }
            (Some(dir), Some(shared)) => {
                // An explicit shared layer supplies its own persistence;
                // the cache dir then loads the legacy wholesale JSON.
                // Attached last: `load_cache` replaces the store
                // wholesale, which would detach the shared layer.
                engine.load_cache(&dir)?;
                engine.cache.attach_shared(shared);
            }
            (None, Some(shared)) => engine.cache.attach_shared(shared),
            (None, None) => {}
        }
        Ok(engine)
    }
}

impl Engine {
    /// The builder — the single documented construction path; see
    /// [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with an empty cache (shortcut over [`Engine::builder`]).
    pub fn new(config: EngineConfig) -> Self {
        Engine::with_cache(config, CacheStore::new())
    }

    /// An engine starting from a previously persisted (or hand-built)
    /// cache (shortcut over [`Engine::builder`]).
    pub fn with_cache(config: EngineConfig, cache: CacheStore) -> Self {
        Engine {
            config,
            cache,
            stats: EngineStats::default(),
            last_campaign: None,
            degraded: DegradedModeReport::new(),
            telemetry: Telemetry::noop(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The telemetry handle analyses report through (no-op by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The artefact cache.
    pub fn cache(&self) -> &CacheStore {
        &self.cache
    }

    /// Observability counters accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Clears the counters (the cache keeps its contents).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Clears all per-run state — stats, the degraded-mode report and the
    /// last campaign-health report — while keeping the cache warm. The
    /// analysis daemon calls this between requests so each response
    /// reports exactly its own run, as a fresh CLI invocation would.
    pub fn reset_run_state(&mut self) {
        self.stats = EngineStats::default();
        self.degraded = DegradedModeReport::new();
        self.last_campaign = None;
    }

    /// The cross-session shared store this engine's cache is layered
    /// over, if one was attached via [`EngineBuilder::shared_store`].
    pub fn shared_store(&self) -> Option<&SharedStore> {
        self.cache.shared()
    }

    /// The health report of the most recent supervised injection campaign
    /// ([`Engine::analyze_injection`]), whether it ran cold, warm, or was
    /// restored by [`Engine::load_cache`]. `None` before any campaign.
    pub fn campaign_health(&self) -> Option<&CampaignHealth> {
        self.last_campaign.as_ref()
    }

    /// Everything this engine substituted, quarantined or abandoned so
    /// far instead of failing. Empty for pristine runs.
    pub fn degraded_report(&self) -> &DegradedModeReport {
        &self.degraded
    }

    /// Mutable access to the degraded-mode report, for callers (like the
    /// CLI) that degrade on the engine's behalf — e.g. a reliability file
    /// loaded leniently.
    pub fn degraded_report_mut(&mut self) -> &mut DegradedModeReport {
        &mut self.degraded
    }

    /// Loads the cache persisted in `dir` (empty when absent), restoring
    /// the campaign-health report persisted next to it when present.
    ///
    /// Corruption is not fatal: cache entries failing validation are
    /// quarantined and recomputed ([`CacheStore::load_with_report`]), and
    /// a malformed campaign report is moved to
    /// [`CAMPAIGN_QUARANTINE_FILE`]. Both are recorded in
    /// [`Engine::degraded_report`] and the engine stats.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Cache`] only on unreadable files (I/O
    /// failures, not corruption).
    pub fn load_cache(&mut self, dir: impl AsRef<std::path::Path>) -> Result<()> {
        let dir = dir.as_ref();
        let (cache, report) = CacheStore::load_with_report(dir)?;
        self.cache = cache;
        self.stats.quarantined_entries += report.quarantined;
        self.degraded.quarantined_cache_entries += report.quarantined;
        self.degraded.notes.extend(report.reasons);
        self.load_campaign(dir)
    }

    /// Restores the campaign-health report persisted in `dir`, if any. A
    /// malformed report is quarantined (earlier quarantine evidence is
    /// rotated aside, never clobbered), not fatal: like the cache itself,
    /// campaign history may be cold but never wrong.
    fn load_campaign(&mut self, dir: &std::path::Path) -> Result<()> {
        let file = dir.join(CAMPAIGN_FILE);
        if file.exists() {
            let bytes = std::fs::read(&file)
                .map_err(|e| EngineError::Cache(format!("{}: {e}", file.display())))?;
            let restored: Option<CampaignHealth> = String::from_utf8(bytes.clone())
                .ok()
                .and_then(|text| decisive_federation::json::parse(&text).ok())
                .and_then(|value| decisive_federation::serde_bridge::from_value(&value).ok());
            match restored {
                Some(health) => self.last_campaign = Some(health),
                None => {
                    let quarantine = dir.join(CAMPAIGN_QUARANTINE_FILE);
                    crate::cache::rotate_quarantine(&quarantine);
                    if std::fs::rename(&file, &quarantine).is_err() {
                        let _ = std::fs::write(&quarantine, &bytes);
                        let _ = std::fs::remove_file(&file);
                    }
                    self.degraded.notes.push(format!(
                        "campaign report `{}` was malformed; moved to `{CAMPAIGN_QUARANTINE_FILE}`",
                        file.display()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Persists the cache into `dir`, along with the latest campaign-health
    /// report (as [`CAMPAIGN_FILE`]) when an injection campaign has run.
    /// Both files are written atomically (temp file + fsync + rename), so
    /// a crash mid-save leaves the previous files intact.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Cache`] on I/O failure.
    pub fn save_cache(&self, dir: impl AsRef<std::path::Path>) -> Result<()> {
        let dir = dir.as_ref();
        if self.cache.shared().is_some_and(SharedStore::is_durable) {
            // A durable engine persisted every pass incrementally through
            // the segmented store; "save" is just the commit fsync. The
            // v3 JSON file is not rewritten (`decisive store export`
            // produces portable snapshots).
            self.cache.sync_durable()?;
        } else {
            self.cache.save(dir)?;
        }
        if let Some(health) = &self.last_campaign {
            let value = decisive_federation::serde_bridge::to_value(health)
                .map_err(|e| EngineError::Cache(format!("unserialisable campaign report: {e}")))?;
            let file = dir.join(CAMPAIGN_FILE);
            crate::cache::atomic_write(&file, &decisive_federation::json::to_string(&value))
                .map_err(|e| EngineError::Cache(format!("{}: {e}", file.display())))?;
        }
        Ok(())
    }

    /// Runs `pass` and unwraps its artefact through `extract`, failing
    /// with a typed error when the pass produced an unexpected type.
    fn run_extracting<T>(
        &mut self,
        pass: &dyn AnalysisPass,
        input: &PipelineInput<'_>,
        extract: impl FnOnce(PassArtifact) -> std::result::Result<T, Box<PassArtifact>>,
    ) -> Result<T> {
        let id = pass.id();
        extract(self.run_single(pass, input)?).map_err(|other| {
            EngineError::Pipeline(format!(
                "pass `{id}` produced a {} artefact instead of the expected type",
                other.kind_name()
            ))
        })
    }

    // ------------------------------------------------------------------
    // Graph path (S8)
    // ------------------------------------------------------------------

    /// Runs the graph FMEA of Algorithm 1 incrementally: container path
    /// facts and per-component rows are fetched from the cache when their
    /// input fingerprints match and recomputed in parallel otherwise. The
    /// merged table is identical — rows, order and all — to
    /// [`graph::run`]. (Thin wrapper over [`crate::pass::GraphFmeaPass`].)
    ///
    /// # Errors
    ///
    /// Propagates analysis errors and scheduler failures.
    pub fn analyze_graph(&mut self, model: &SsamModel, top: Idx<Component>) -> Result<FmeaTable> {
        let input = PipelineInput::for_model(model, top);
        self.run_extracting(&GraphFmeaPass, &input, PassArtifact::into_fmea)
    }

    /// Re-analyses after a model revision: diffs `old` against `new`,
    /// garbage-collects the cache keys owned by impacted components (the
    /// counted "invalidated keys"), then runs [`Engine::analyze_graph`] on
    /// the new revision — unchanged components hit the cache, impacted
    /// ones recompute.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    pub fn rerun(
        &mut self,
        old: &SsamModel,
        new: &SsamModel,
        new_top: Idx<Component>,
    ) -> Result<(FmeaTable, ImpactReport)> {
        let report = impact::diff_models(old, new);
        let mut invalidated = 0;
        for name in &report.impacted_components {
            invalidated += self.cache.invalidate_owner(name);
        }
        if report.changes.iter().any(|c| matches!(c, ModelChange::HazardsChanged)) {
            // Hazard-set changes can re-scope every row under per-hazard
            // analysis; drop the row artefacts wholesale.
            invalidated += self.cache.invalidate_kind(ArtifactKind::GraphRow);
        }
        self.stats.invalidated_keys += invalidated;
        let table = self.analyze_graph(new, new_top)?;
        Ok((table, report))
    }

    /// The escape hatch: runs the incremental analysis *and* the
    /// from-scratch [`graph::run`], failing loudly if they differ in any
    /// row. Use it to validate a cache of unknown provenance. (For the
    /// whole-pipeline variant see
    /// [`Engine::verify_pipeline_against_full`].)
    ///
    /// # Errors
    ///
    /// [`EngineError::Verification`] on divergence, otherwise as
    /// [`Engine::analyze_graph`].
    pub fn verify_against_full(
        &mut self,
        model: &SsamModel,
        top: Idx<Component>,
    ) -> Result<FmeaTable> {
        let incremental = self.analyze_graph(model, top)?;
        let full = graph::run(model, top, &self.config.graph)?;
        if incremental != full {
            return Err(EngineError::Verification(format!(
                "{} incremental vs {} full rows, verdict disagreement {:.4}",
                incremental.rows.len(),
                full.rows.len(),
                incremental.disagreement(&full),
            )));
        }
        Ok(incremental)
    }

    // ------------------------------------------------------------------
    // Injection path (S7)
    // ------------------------------------------------------------------

    /// Runs the fault-injection FMEA incrementally under full campaign
    /// supervision. Rows are keyed by the whole-circuit digest plus the
    /// candidate's own content and the solver ladder configuration — any
    /// circuit edit invalidates every row (a fault's effect depends on the
    /// entire network), while re-analyses of an unchanged circuit are pure
    /// cache hits and skip simulation entirely.
    ///
    /// Each cached artefact carries its supervisor classification, so the
    /// [`CampaignHealth`] report (see [`Engine::campaign_health`]) covers
    /// hits and misses alike, and the campaign circuit breaker is enforced
    /// on every run — a warm cache full of unsolvable rows still aborts.
    /// (Thin wrapper over [`crate::pass::InjectionFmeaPass`].)
    ///
    /// # Errors
    ///
    /// Same conditions as `injection::run_supervised` — including
    /// [`decisive_core::CoreError::CampaignAborted`] when the breaker
    /// trips — plus scheduler failures.
    pub fn analyze_injection(
        &mut self,
        diagram: &BlockDiagram,
        reliability: &ReliabilityDb,
        config: &InjectionConfig,
    ) -> Result<FmeaTable> {
        let input =
            PipelineInput::for_diagram(diagram, reliability).with_injection_config(config.clone());
        self.run_extracting(&InjectionFmeaPass, &input, PassArtifact::into_injection_table)
    }

    /// Runs the Monte-Carlo injection campaign: `trials` seeded draws of
    /// the perturbed reliability model, each swept through the supervised
    /// injection campaign, aggregated into mean + 95 % CI on SPFM / LFM /
    /// PMHF. The report is bitwise identical for the same `(inputs, seed,
    /// trials)` across thread counts and warm/cold caches. (Thin wrapper
    /// over [`crate::pass::MonteCarloPass`].)
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::analyze_injection`], plus
    /// [`decisive_core::CoreError::InvalidParameter`] for zero trials.
    pub fn analyze_montecarlo(
        &mut self,
        diagram: &BlockDiagram,
        reliability: &ReliabilityDb,
        config: &InjectionConfig,
        trials: usize,
        seed: u64,
    ) -> Result<MonteCarloReport> {
        let input = PipelineInput::for_diagram(diagram, reliability)
            .with_injection_config(config.clone())
            .with_trials(trials)
            .with_seed(seed);
        self.run_extracting(&MonteCarloPass, &input, PassArtifact::into_montecarlo)
    }

    /// Runs the safety-pattern recommendation step on the injection FMEA
    /// of `diagram`: a two-pass pipeline (injection → recommend) whose
    /// second stage matches the built-in pattern catalog against every
    /// uncovered failure mode and ranks Pareto-optimal deployments by
    /// projected SPFM. (Thin wrapper over [`crate::pass::RecommendPass`].)
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::analyze_injection`], plus pipeline
    /// failures.
    pub fn analyze_recommend(
        &mut self,
        diagram: &BlockDiagram,
        reliability: &ReliabilityDb,
        config: &InjectionConfig,
    ) -> Result<RecommendationReport> {
        let input =
            PipelineInput::for_diagram(diagram, reliability).with_injection_config(config.clone());
        let pipeline = Pipeline::new().with(InjectionFmeaPass).with(RecommendPass::default());
        let run = self.run_pipeline(&pipeline, &input)?;
        run.artifact(ids::RECOMMEND).and_then(PassArtifact::recommendation).cloned().ok_or_else(
            || EngineError::Pipeline("recommendation pass produced no artefact".to_owned()),
        )
    }

    // ------------------------------------------------------------------
    // FTA subtrees (S14) and monitor sets (S15)
    // ------------------------------------------------------------------

    /// Quantifies the fault subtree of every container, cached per
    /// container: the key covers the container's topology, its children's
    /// content and the mission time, so a FIT edit re-quantifies one
    /// subtree. Containers without input→output paths (or beyond the path
    /// cap) come back with `analysable: false`. (Thin wrapper over
    /// [`crate::pass::FtaPass`].)
    ///
    /// # Errors
    ///
    /// Propagates scheduler and cache failures.
    pub fn analyze_fta(
        &mut self,
        model: &SsamModel,
        top: Idx<Component>,
        mission_hours: f64,
    ) -> Result<Vec<FtaSubtreeSummary>> {
        let input = PipelineInput::for_model(model, top).with_mission_hours(mission_hours);
        self.run_extracting(&FtaPass, &input, PassArtifact::into_fta_summaries)
    }

    /// Generates (or fetches) the runtime monitor of `model`, keyed by the
    /// monitor-relevant model slice (limited IO nodes and their dynamic
    /// context). (Thin wrapper over [`crate::pass::MonitorPass`].)
    ///
    /// # Errors
    ///
    /// Propagates cache serialisation failures.
    pub fn monitors(&mut self, model: &SsamModel) -> Result<RuntimeMonitor> {
        let input = PipelineInput::new().with_model(model);
        self.run_extracting(&MonitorPass, &input, PassArtifact::into_monitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decisive_core::case_study;
    use decisive_ssam::architecture::Fit;

    #[test]
    fn incremental_equals_full_on_the_case_study() {
        let (model, top) = case_study::ssam_model();
        let mut engine = Engine::new(EngineConfig::with_jobs(1));
        let table = engine.verify_against_full(&model, top).unwrap();
        assert!((table.spfm() - 0.0538).abs() < 5e-4);
    }

    #[test]
    fn fit_edit_reruns_exactly_one_row_job() {
        let (old, old_top) = case_study::ssam_model();
        let (mut new, new_top) = case_study::ssam_model();
        let mut engine = Engine::new(EngineConfig::with_jobs(2));
        engine.analyze_graph(&old, old_top).unwrap();

        let d1 = new.component_by_name("D1").unwrap();
        new.components[d1].fit = Some(Fit::new(20.0));
        engine.reset_stats();
        let (table, report) = engine.rerun(&old, &new, new_top).unwrap();
        assert!(report.requires_reanalysis());
        assert_eq!(engine.stats().invalidated_keys, 1, "only D1's row artefact");
        let rows = engine.stats().phase("graph-rows").unwrap();
        assert_eq!(rows.jobs_executed, 1, "only D1 recomputes");
        let facts = engine.stats().phase("graph-facts").unwrap();
        assert_eq!(facts.jobs_executed, 0, "topology unchanged");
        assert_eq!(table, graph::run(&new, new_top, &GraphConfig::default()).unwrap());
    }

    #[test]
    fn shared_store_serves_a_second_engine_without_recomputing() {
        let (model, top) = case_study::ssam_model();
        let shared = SharedStore::new();
        let mut first = Engine::builder().jobs(1).shared_store(shared.clone()).build().unwrap();
        let cold = first.analyze_graph(&model, top).unwrap();
        assert!(first.stats().jobs_executed() > 0, "first engine does the work");

        let mut second = Engine::builder().jobs(1).shared_store(shared.clone()).build().unwrap();
        let warm = second.analyze_graph(&model, top).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(second.stats().jobs_executed(), 0, "second engine is pure shared hits");
        assert_eq!(second.stats().cache_misses(), 0);
        assert!(shared.shared_hits() > 0);
    }

    #[test]
    fn reset_run_state_keeps_the_cache_warm() {
        let (model, top) = case_study::ssam_model();
        let mut engine = Engine::new(EngineConfig::with_jobs(1));
        engine.analyze_graph(&model, top).unwrap();
        engine.reset_run_state();
        assert!(engine.stats().phases.is_empty());
        assert!(engine.campaign_health().is_none());
        engine.analyze_graph(&model, top).unwrap();
        assert_eq!(engine.stats().jobs_executed(), 0, "cache survived the reset");
    }

    #[test]
    fn monitor_set_round_trips_through_the_cache() {
        let (model, _) = case_study::ssam_model();
        let mut engine = Engine::new(EngineConfig::with_jobs(1));
        let cold = engine.monitors(&model).unwrap();
        assert!(!cold.checks().is_empty());
        let warm = engine.monitors(&model).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(engine.stats().phase("monitor-set").unwrap().cache_hits, 1);
    }

    #[test]
    fn fta_subtrees_cache_by_content() {
        let (model, top) = case_study::ssam_model();
        let mut engine = Engine::new(EngineConfig::with_jobs(2));
        let cold = engine.analyze_fta(&model, top, 10_000.0).unwrap();
        assert!(cold.iter().any(|s| s.analysable));
        let warm = engine.analyze_fta(&model, top, 10_000.0).unwrap();
        assert_eq!(cold, warm);
        let phase = engine.stats().phase("fta-subtrees").unwrap();
        assert_eq!(phase.cache_misses, 0, "warm pass is pure hits");
        // A different mission time is a different artefact.
        engine.analyze_fta(&model, top, 20_000.0).unwrap();
        assert!(engine.stats().phase("fta-subtrees").unwrap().cache_misses > 0);
    }
}
