//! Engine error types.

use decisive_core::CoreError;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Everything that can go wrong inside the incremental engine.
#[derive(Debug)]
pub enum EngineError {
    /// An underlying analysis failed.
    Core(CoreError),
    /// A scheduled job panicked twice (once plus the retry).
    JobFailed {
        /// Index of the failing job within its batch.
        index: usize,
        /// Which phase scheduled it.
        phase: String,
    },
    /// The run was cancelled through its [`crate::scheduler::CancelToken`].
    Cancelled,
    /// Cache persistence failed (I/O, parse, or serialisation).
    Cache(String),
    /// The segmented artifact store failed (I/O on append, fsync, or
    /// manifest swap). Corruption never raises this — it quarantines.
    Store(String),
    /// `verify_against_full` found a divergence between the incremental
    /// and the from-scratch result — a cache-soundness bug.
    Verification(String),
    /// The pass pipeline was misconfigured (duplicate ids, unknown
    /// dependencies, a dependency cycle) or a pass produced an artefact of
    /// an unexpected type.
    Pipeline(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "{e}"),
            EngineError::JobFailed { index, phase } => {
                write!(f, "job {index} of phase `{phase}` panicked twice; giving up")
            }
            EngineError::Cancelled => write!(f, "analysis cancelled"),
            EngineError::Cache(message) => write!(f, "cache: {message}"),
            EngineError::Store(message) => write!(f, "artifact store: {message}"),
            EngineError::Verification(message) => {
                write!(f, "incremental result diverged from full recomputation: {message}")
            }
            EngineError::Pipeline(message) => write!(f, "pipeline: {message}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}
