//! Stable 64-bit content fingerprints.
//!
//! The cache keys analysis artefacts by the content of their inputs, not by
//! object identity, so fingerprints must be stable across processes and
//! platform word sizes. This is a self-contained FNV-1a/xxhash-style mixer:
//! not cryptographic, but 64 bits over structured, length-prefixed input
//! makes accidental collisions within one model negligible.

use std::fmt;

/// A stable 64-bit digest of some structured content.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u64);

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:016x})", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the `Display` form (16 lowercase hex digits).
    pub fn parse(text: &str) -> Option<Self> {
        if text.len() != 16 {
            return None;
        }
        u64::from_str_radix(text, 16).ok().map(Fingerprint)
    }
}

const SEED: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01B3;

/// An incremental fingerprint builder.
///
/// Every write is length- or tag-prefixed, so concatenation ambiguities
/// (`"ab" + "c"` vs `"a" + "bc"`) produce different digests.
#[derive(Clone, Debug)]
pub struct Hasher {
    state: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher { state: SEED }
    }
}

impl Hasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    fn mix_byte(&mut self, byte: u8) {
        self.state ^= u64::from(byte);
        self.state = self.state.wrapping_mul(PRIME);
    }

    fn mix_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.mix_byte(byte);
        }
    }

    /// Mixes raw bytes with a length prefix.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.mix_u64(bytes.len() as u64);
        for &b in bytes {
            self.mix_byte(b);
        }
        self
    }

    /// Mixes a string with a length prefix.
    pub fn write_str(&mut self, text: &str) -> &mut Self {
        self.write_bytes(text.as_bytes())
    }

    /// Mixes an unsigned integer.
    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        self.mix_byte(0x01);
        self.mix_u64(value);
        self
    }

    /// Mixes a signed integer.
    pub fn write_i64(&mut self, value: i64) -> &mut Self {
        self.mix_byte(0x02);
        self.mix_u64(value as u64);
        self
    }

    /// Mixes a float by bit pattern, normalising `-0.0` to `0.0` so equal
    /// values hash equally.
    pub fn write_f64(&mut self, value: f64) -> &mut Self {
        let normalised = if value == 0.0 { 0.0f64 } else { value };
        self.mix_byte(0x03);
        self.mix_u64(normalised.to_bits());
        self
    }

    /// Mixes a boolean.
    pub fn write_bool(&mut self, value: bool) -> &mut Self {
        self.mix_byte(if value { 0x05 } else { 0x04 });
        self
    }

    /// Mixes an optional presence tag, then the value if present.
    pub fn write_opt_f64(&mut self, value: Option<f64>) -> &mut Self {
        match value {
            None => self.mix_byte(0x06),
            Some(v) => {
                self.mix_byte(0x07);
                self.write_f64(v);
            }
        }
        self
    }

    /// Mixes another fingerprint (for composing sub-digests).
    pub fn write_fingerprint(&mut self, fp: Fingerprint) -> &mut Self {
        self.mix_byte(0x08);
        self.mix_u64(fp.0);
        self
    }

    /// Final avalanche, consuming the accumulated state.
    pub fn finish(&self) -> Fingerprint {
        // splitmix64 finaliser on top of FNV accumulation: cheap streaming
        // with good final bit diffusion.
        let mut z = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Fingerprint(z ^ (z >> 31))
    }
}

/// Fingerprints an ordered list of sub-fingerprints.
pub fn combine<I: IntoIterator<Item = Fingerprint>>(parts: I) -> Fingerprint {
    let mut hasher = Hasher::new();
    for part in parts {
        hasher.write_fingerprint(part);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenation_is_unambiguous() {
        let mut a = Hasher::new();
        a.write_str("ab").write_str("c");
        let mut b = Hasher::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn stable_across_runs() {
        let mut h = Hasher::new();
        h.write_str("component").write_f64(12.5).write_bool(true);
        let fp = h.finish();
        assert_eq!(fp, {
            let mut h2 = Hasher::new();
            h2.write_str("component").write_f64(12.5).write_bool(true);
            h2.finish()
        });
        let text = fp.to_string();
        assert_eq!(Fingerprint::parse(&text), Some(fp));
    }

    #[test]
    fn negative_zero_normalises() {
        let mut a = Hasher::new();
        a.write_f64(0.0);
        let mut b = Hasher::new();
        b.write_f64(-0.0);
        assert_eq!(a.finish(), b.finish());
    }
}
