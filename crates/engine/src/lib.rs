//! decisive-engine: incremental analysis with content-addressed caching and
//! a parallel job scheduler.
//!
//! The DECISIVE flow is iterative by design — analyse, refine the
//! architecture, analyse again. This crate makes the "again" cheap: every
//! derived artefact is cached under a fingerprint of exactly the inputs it
//! depends on, so a re-run after an edit recomputes only the artefacts
//! whose inputs actually changed, and independent recomputations run on a
//! bounded worker pool.
//!
//! Layering:
//!
//! - [`fingerprint`] — the stable 64-bit content hasher;
//! - [`model_fp`] — what gets hashed for each artefact kind;
//! - [`cache`] — the content-addressed store plus JSON persistence;
//! - [`store`] — the crash-safe segmented append-only log behind durable
//!   [`SharedStore`]s (incremental durability, frame-level quarantine);
//! - [`scheduler`] — the deterministic parallel job runner;
//! - [`stats`] — per-phase observability counters;
//! - [`pass`] — the typed [`AnalysisPass`] abstraction: each analysis
//!   (graph FMEA, injection, FTA, monitors, HARA, assurance) as one
//!   composable pass sharing a single cache/deadline/degradation path;
//! - [`pipeline`] — the validated pass DAG executed with cross-pass
//!   parallelism ([`Engine::run_pipeline`]);
//! - [`engine`] — the [`Engine`] gluing it all together, with
//!   [`Engine::verify_against_full`] and
//!   [`Engine::verify_pipeline_against_full`] as the soundness escape
//!   hatches.

pub mod cache;
pub mod engine;
pub mod error;
pub mod fingerprint;
pub mod model_fp;
pub mod pass;
pub mod pipeline;
pub mod scheduler;
pub mod stats;
pub mod store;

pub use cache::{atomic_write, ArtifactKind, CacheStore, SharedStore};
pub use engine::{Engine, EngineBuilder, EngineConfig, FtaSubtreeSummary, CAMPAIGN_FILE};

/// The telemetry substrate, re-exported so engine users configure
/// [`EngineBuilder::telemetry`] without a separate dependency.
pub use decisive_obs as obs;
pub use error::{EngineError, Result};
pub use fingerprint::Fingerprint;
pub use pass::{
    AnalysisPass, ArtifactId, AssurancePass, FtaPass, GraphFmeaPass, HaraPass, InjectionFmeaPass,
    MonitorPass, MonteCarloPass, PassArtifact, PassContext, PipelineInput, RecommendPass, WorkItem,
};
pub use pipeline::{PassStatus, Pipeline, PipelineRun};
pub use scheduler::{CancelToken, RetryPolicy, Scheduler};
pub use stats::{EngineStats, PhaseStats};
pub use store::{
    CompactionSummary, SegmentStore, StoreHealth, StoreOptions, StoreRecovery, MANIFEST_FILE,
    STORE_DIR, STORE_QUARANTINE_FILE,
};
