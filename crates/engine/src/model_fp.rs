//! Fingerprints of analysis *inputs*: per-component content, per-container
//! topology, analysis configuration, and whole-diagram digests.
//!
//! Cache keys are derived from these, so two rules matter:
//!
//! 1. **Identity is the component name**, not the arena index — names
//!    survive persistence and model edits, indexes do not. Models with
//!    duplicate component names are not cacheable soundly (the SSAM
//!    validator flags them); the engine makes no attempt to distinguish
//!    same-named components.
//! 2. A fingerprint must cover **exactly** the inputs the keyed artefact is
//!    derived from: too little breaks correctness (stale hits), too much
//!    only costs hit rate.

use decisive_core::fmea::graph::{AnalysisScope, GraphAlgorithm, GraphConfig};
use decisive_core::fmea::injection::Candidate;
use decisive_ssam::architecture::Component;
use decisive_ssam::base::CiteRef;
use decisive_ssam::id::Idx;
use decisive_ssam::model::SsamModel;

use crate::fingerprint::{Fingerprint, Hasher};

/// Digest of one component's analysis-relevant content: name, type key,
/// FIT, failure modes (with natures, distributions, hazard associations,
/// affected components, modelled effects and cites) and deployed safety
/// mechanisms.
///
/// Deliberately excludes wiring — that belongs to the *container's*
/// topology fingerprint — so a FIT edit invalidates one component while a
/// rewire invalidates one container.
pub fn component_fingerprint(model: &SsamModel, component: Idx<Component>) -> Fingerprint {
    let c = &model.components[component];
    let mut h = Hasher::new();
    h.write_str("component");
    h.write_str(c.core.name.value());
    match &c.type_key {
        Some(key) => h.write_bool(true).write_str(key),
        None => h.write_bool(false),
    };
    h.write_opt_f64(c.fit.map(|f| f.value()));
    h.write_bool(c.dynamic);

    let mut modes: Vec<Fingerprint> = model
        .failure_modes_of(component)
        .map(|(_, fm)| {
            let mut m = Hasher::new();
            m.write_str(fm.core.name.value());
            m.write_str(&fm.nature.to_string());
            m.write_f64(fm.distribution);
            let mut hazards: Vec<&str> =
                fm.hazards.iter().map(|&hz| model.hazards[hz].core.name.value()).collect();
            hazards.sort_unstable();
            m.write_u64(hazards.len() as u64);
            for hz in hazards {
                m.write_str(hz);
            }
            let mut affected: Vec<&str> = fm
                .affected_components
                .iter()
                .map(|&a| model.components[a].core.name.value())
                .collect();
            affected.sort_unstable();
            m.write_u64(affected.len() as u64);
            for a in affected {
                m.write_str(a);
            }
            m.write_u64(fm.effects.len() as u64);
            for &e in &fm.effects {
                let effect = &model.failure_effects[e];
                m.write_str(&effect.impact.to_string());
                for cite in &effect.core.cites {
                    if let CiteRef::Component(cc) = cite {
                        m.write_str(model.components[*cc].core.name.value());
                    }
                }
            }
            m.finish()
        })
        .collect();
    modes.sort_unstable();
    h.write_u64(modes.len() as u64);
    for fp in modes {
        h.write_fingerprint(fp);
    }

    let mut mechanisms: Vec<Fingerprint> = c
        .safety_mechanisms
        .iter()
        .map(|&sm| {
            let m = &model.safety_mechanisms[sm];
            let mut s = Hasher::new();
            s.write_str(m.core.name.value());
            s.write_f64(m.coverage.value());
            s.write_str(model.failure_modes[m.covers].core.name.value());
            s.finish()
        })
        .collect();
    mechanisms.sort_unstable();
    h.write_u64(mechanisms.len() as u64);
    for fp in mechanisms {
        h.write_fingerprint(fp);
    }
    h.finish()
}

/// Digest of one container's internal wiring: its sorted child names and
/// the sorted name-level edge multiset (with the container itself playing
/// the boundary `SRC`/`SINK` roles).
///
/// This is exactly the input of `graph::container_facts`, so a FIT or
/// failure-mode edit leaves it unchanged and the cached facts stay valid.
pub fn topology_fingerprint(model: &SsamModel, container: Idx<Component>) -> Fingerprint {
    let mut h = Hasher::new();
    h.write_str("topology");
    h.write_str(model.components[container].core.name.value());
    let mut children: Vec<&str> = model.components[container]
        .children
        .iter()
        .map(|&c| model.components[c].core.name.value())
        .collect();
    children.sort_unstable();
    h.write_u64(children.len() as u64);
    for child in children {
        h.write_str(child);
    }
    let mut edges: Vec<(String, String)> = model
        .relationships_within(container)
        .map(|(_, rel)| {
            let end = |c: Idx<Component>| {
                if c == container {
                    String::new() // boundary role, distinct from any child name
                } else {
                    model.components[c].core.name.value().to_owned()
                }
            };
            (end(rel.from), end(rel.to))
        })
        .collect();
    edges.sort_unstable();
    h.write_u64(edges.len() as u64);
    for (from, to) in edges {
        h.write_str(&from).write_str(&to);
    }
    h.finish()
}

/// Digest of the graph analysis configuration (algorithm, path cap, scope).
pub fn graph_config_fingerprint(model: &SsamModel, config: &GraphConfig) -> Fingerprint {
    let mut h = Hasher::new();
    h.write_str("graph-config");
    h.write_str(match config.algorithm {
        GraphAlgorithm::ExhaustivePaths => "paths",
        GraphAlgorithm::CutVertex => "cut",
    });
    h.write_u64(config.max_paths as u64);
    match config.scope {
        AnalysisScope::All => {
            h.write_str("all");
        }
        AnalysisScope::Hazard(hz) => {
            h.write_str("hazard").write_str(model.hazards[hz].core.name.value());
        }
    }
    h.finish()
}

/// Digest of one injection candidate: block name, type key, FIT, block
/// kind and the failure mode to inject.
pub fn candidate_fingerprint(candidate: &Candidate) -> Fingerprint {
    let mut h = Hasher::new();
    h.write_str("candidate");
    h.write_str(&candidate.name);
    h.write_str(&candidate.type_key);
    h.write_f64(candidate.fit.value());
    h.write_str(&format!("{:?}", candidate.kind));
    h.write_str(&candidate.mode.name);
    h.write_str(&candidate.mode.nature.to_string());
    h.write_f64(candidate.mode.distribution);
    h.finish()
}

/// Digest of an arbitrary serialisable artefact through its federation
/// JSON form. Used for whole-circuit keys, where every element influences
/// every injection verdict.
pub fn serialized_fingerprint<T: serde::Serialize>(artefact: &T, tag: &str) -> Fingerprint {
    let mut h = Hasher::new();
    h.write_str(tag);
    match decisive_federation::serde_bridge::to_value(artefact) {
        Ok(value) => h.write_str(&decisive_federation::json::to_string(&value)),
        Err(e) => h.write_str("unserialisable").write_str(&e.to_string()),
    };
    h.finish()
}

/// Digest of a reliability database, stable across processes: entries are
/// hashed field-wise in sorted type-key order. The backing map's
/// iteration order is seeded per process, so [`serialized_fingerprint`]
/// (which digests whatever order the serializer visits) must not be used
/// for it — a warm cache would miss every key after a restart.
pub fn reliability_fingerprint(db: &decisive_core::reliability::ReliabilityDb) -> Fingerprint {
    let mut entries: Vec<_> = db.iter().collect();
    entries.sort_by(|a, b| a.type_key.cmp(&b.type_key));
    let mut h = Hasher::new();
    h.write_str("reliability-db");
    for entry in entries {
        h.write_str(&entry.type_key).write_f64(entry.fit.value());
        for mode in &entry.modes {
            h.write_str(&mode.name)
                .write_str(&format!("{:?}", mode.nature))
                .write_f64(mode.distribution);
        }
    }
    h.finish()
}

/// Digest of the monitor-relevant slice of a model: every limited IO node
/// with its owner, limits, and whether a dynamic component encloses it —
/// exactly the inputs of `RuntimeMonitor::generate`.
pub fn monitor_fingerprint(model: &SsamModel) -> Fingerprint {
    let mut entries: Vec<Fingerprint> = model
        .io_nodes
        .iter()
        .filter(|(_, node)| node.lower_limit.is_some() || node.upper_limit.is_some())
        .map(|(_, node)| {
            let owner = &model.components[node.owner];
            let mut dynamic_context = owner.dynamic;
            let mut cur = owner.parent;
            while let Some(p) = cur {
                if model.components[p].dynamic {
                    dynamic_context = true;
                    break;
                }
                cur = model.components[p].parent;
            }
            let mut h = Hasher::new();
            h.write_str(owner.core.name.value());
            h.write_str(node.core.name.value());
            h.write_opt_f64(node.lower_limit);
            h.write_opt_f64(node.upper_limit);
            h.write_bool(dynamic_context);
            h.finish()
        })
        .collect();
    entries.sort_unstable();
    let mut h = Hasher::new();
    h.write_str("monitor-set");
    h.write_u64(entries.len() as u64);
    for fp in entries {
        h.write_fingerprint(fp);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use decisive_core::case_study;
    use decisive_ssam::architecture::Fit;

    #[test]
    fn fit_edit_changes_only_that_component() {
        let (old, _) = case_study::ssam_model();
        let (mut new, _) = case_study::ssam_model();
        let d1 = new.component_by_name("D1").unwrap();
        new.components[d1].fit = Some(Fit::new(99.0));
        let d1_old = old.component_by_name("D1").unwrap();
        assert_ne!(component_fingerprint(&old, d1_old), component_fingerprint(&new, d1));
        let l1_old = old.component_by_name("L1").unwrap();
        let l1_new = new.component_by_name("L1").unwrap();
        assert_eq!(component_fingerprint(&old, l1_old), component_fingerprint(&new, l1_new));
        // Topology sees no change at all.
        let top_old = old
            .component_by_name("PSU")
            .or_else(|| old.components.iter().find(|(_, c)| c.parent.is_none()).map(|(i, _)| i));
        let top_new = new.components.iter().find(|(_, c)| c.parent.is_none()).map(|(i, _)| i);
        assert_eq!(
            topology_fingerprint(&old, top_old.unwrap()),
            topology_fingerprint(&new, top_new.unwrap())
        );
    }

    #[test]
    fn rewiring_changes_the_topology_digest() {
        let (old, old_top) = case_study::ssam_model();
        let (mut new, new_top) = case_study::ssam_model();
        let d1 = new.component_by_name("D1").unwrap();
        let c1 = new.component_by_name("C1").unwrap();
        new.connect(d1, c1);
        assert_ne!(topology_fingerprint(&old, old_top), topology_fingerprint(&new, new_top));
    }

    #[test]
    fn reliability_digest_ignores_map_iteration_order() {
        use decisive_core::reliability::ReliabilityDb;
        let csv = "Component,FIT,Failure_Mode,Distribution\n\
                   Diode,10,Open,0.3\n\
                   Diode,10,Short,0.7\n\
                   Resistor,5,Open,0.3\n\
                   Resistor,5,Short,0.7\n\
                   MC,300,RAM Failure,1.0\n";
        let forward = ReliabilityDb::from_csv_str(csv).unwrap();
        // The same entries inserted in reverse: the backing map iterates
        // differently, the digest must not care (warm caches in a NEW
        // process depend on this — map order is seeded per process).
        let mut reversed = ReliabilityDb::new();
        let mut entries: Vec<_> = forward.iter().cloned().collect();
        entries.reverse();
        for entry in entries {
            reversed.insert(entry);
        }
        assert_eq!(reliability_fingerprint(&forward), reliability_fingerprint(&reversed));
        // And a FIT edit must change it.
        let mut edited = forward.clone();
        let mut diode = edited.get("Diode").unwrap().clone();
        diode.fit = decisive_ssam::architecture::Fit::new(11.0);
        edited.insert(diode);
        assert_ne!(reliability_fingerprint(&forward), reliability_fingerprint(&edited));
    }

    #[test]
    fn config_scope_distinguishes_hazards() {
        let (model, _) = case_study::ssam_model();
        let all = graph_config_fingerprint(&model, &GraphConfig::default());
        let h1 = model.hazards.indices().next().unwrap();
        let scoped = graph_config_fingerprint(
            &model,
            &GraphConfig { scope: AnalysisScope::Hazard(h1), ..GraphConfig::default() },
        );
        assert_ne!(all, scoped);
    }
}
