//! The typed pass layer: every analysis the engine knows how to run —
//! graph FMEA, injection FMEA, FTA subtrees, monitor synthesis, HARA risk
//! logging, assurance-case evaluation — is an [`AnalysisPass`] producing a
//! [`PassArtifact`] from content-addressed inputs. The incremental cache,
//! per-job deadlines, campaign health and degraded-mode reporting live in
//! **one** code path ([`PassContext::run_keyed`]) instead of one copy per
//! analysis.
//!
//! Passes declare their dependencies by id ([`AnalysisPass::depends_on`]);
//! the [`crate::pipeline::Pipeline`] runner schedules them as a DAG with
//! cross-pass parallelism on the shared worker budget.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use serde::{DeserializeOwned, Serialize};

use decisive_assurance::report::{CAMPAIGN_LOCATION, FMEA_LOCATION, FTA_LOCATION};
use decisive_assurance::{pipeline_report, AssuranceReport, PipelineEvidence, Status};
use decisive_blocks::{to_circuit, BlockDiagram};
use decisive_core::campaign::{CampaignHealth, CaseOutcome, CaseReport};
use decisive_core::degraded::DegradedModeReport;
use decisive_core::fmea::graph::{self, ContainerFacts};
use decisive_core::fmea::injection::{self, InjectionConfig};
use decisive_core::fmea::{FmeaRow, FmeaTable};
use decisive_core::monitor::RuntimeMonitor;
use decisive_core::montecarlo::{self, MonteCarloReport, TrialMetrics};
use decisive_core::patterns::{self, RecommendationReport};
use decisive_core::reliability::ReliabilityDb;
use decisive_core::CoreError;
use decisive_federation::{DriverRegistry, Value};
use decisive_hara::{HazardLog, RiskAssessmentPolicy, RiskLog};
use decisive_ssam::architecture::Component;
use decisive_ssam::base::IntegrityLevel;
use decisive_ssam::id::Idx;
use decisive_ssam::model::SsamModel;

use crate::cache::{ArtifactKind, CacheStore};
use crate::engine::{EngineConfig, FtaSubtreeSummary};
use crate::error::{EngineError, Result};
use crate::fingerprint::{Fingerprint, Hasher};
use crate::model_fp;
use crate::scheduler::{BatchError, Scheduler};
use crate::stats::PhaseStats;

/// The stable ids of the standard passes, for wiring dependencies.
pub mod ids {
    /// Graph FMEA over the architecture model (Algorithm 1).
    pub const GRAPH: &str = "graph-fmea";
    /// Fault-injection FMEA over the block diagram (supervised campaign).
    pub const INJECTION: &str = "injection-fmea";
    /// Per-container fault-subtree quantification.
    pub const FTA: &str = "fta";
    /// Runtime monitor synthesis.
    pub const MONITORS: &str = "monitors";
    /// HARA risk log derived from FMEA rows.
    pub const HARA: &str = "hara";
    /// Assurance-case generation and evaluation.
    pub const ASSURANCE: &str = "assurance";
    /// Monte-Carlo injection campaign over the perturbed reliability model.
    pub const MONTECARLO: &str = "montecarlo";
    /// Safety-pattern recommendation over uncovered failure modes.
    pub const RECOMMEND: &str = "recommend";
}

/// Content-addressed identity of one cached artefact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactId {
    /// The artefact namespace.
    pub kind: ArtifactKind,
    /// The input fingerprint serving as cache key.
    pub key: Fingerprint,
}

/// One keyed unit of work inside a pass phase.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// The artefact this item produces.
    pub id: ArtifactId,
    /// Cache-entry owner (a component or candidate name), used by
    /// impact-driven invalidation.
    pub owner: String,
    /// Human-readable label for deadline / degraded-mode reporting.
    pub label: String,
}

/// The typed output of one pass.
#[derive(Debug, Clone, PartialEq)]
pub enum PassArtifact {
    /// A graph FMEA table.
    Fmea(FmeaTable),
    /// An injection FMEA table plus the campaign-health verdict.
    Injection {
        /// The merged FMEA table.
        table: FmeaTable,
        /// Supervisor classification of the whole sweep.
        health: CampaignHealth,
    },
    /// Quantified FTA subtrees, one per container.
    FtaSummaries(Vec<FtaSubtreeSummary>),
    /// A synthesised runtime monitor set.
    Monitor(RuntimeMonitor),
    /// A HARA risk log.
    RiskLog(RiskLog),
    /// An evaluated assurance case.
    Assurance(AssuranceReport),
    /// Interval estimates of a Monte-Carlo injection campaign.
    MonteCarlo(MonteCarloReport),
    /// A ranked safety-pattern recommendation report.
    Recommend(RecommendationReport),
    /// Free-form artefact for custom passes.
    Opaque(Value),
}

impl PassArtifact {
    /// Short artefact-type name for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            PassArtifact::Fmea(_) => "fmea-table",
            PassArtifact::Injection { .. } => "injection-table",
            PassArtifact::FtaSummaries(_) => "fta-summaries",
            PassArtifact::Monitor(_) => "monitor-set",
            PassArtifact::RiskLog(_) => "risk-log",
            PassArtifact::Assurance(_) => "assurance-report",
            PassArtifact::MonteCarlo(_) => "montecarlo-report",
            PassArtifact::Recommend(_) => "recommendation-report",
            PassArtifact::Opaque(_) => "opaque",
        }
    }

    /// The FMEA table carried by this artefact, if any.
    pub fn fmea_table(&self) -> Option<&FmeaTable> {
        match self {
            PassArtifact::Fmea(table) | PassArtifact::Injection { table, .. } => Some(table),
            _ => None,
        }
    }

    /// The campaign health carried by this artefact, if any.
    pub fn campaign_health(&self) -> Option<&CampaignHealth> {
        match self {
            PassArtifact::Injection { health, .. } => Some(health),
            _ => None,
        }
    }

    /// The FTA subtree summaries, if this is an FTA artefact.
    pub fn fta_summaries(&self) -> Option<&[FtaSubtreeSummary]> {
        match self {
            PassArtifact::FtaSummaries(s) => Some(s),
            _ => None,
        }
    }

    /// The monitor set, if this is a monitor artefact.
    pub fn monitor(&self) -> Option<&RuntimeMonitor> {
        match self {
            PassArtifact::Monitor(m) => Some(m),
            _ => None,
        }
    }

    /// The risk log, if this is a HARA artefact.
    pub fn risk_log(&self) -> Option<&RiskLog> {
        match self {
            PassArtifact::RiskLog(log) => Some(log),
            _ => None,
        }
    }

    /// The assurance report, if this is an assurance artefact.
    pub fn assurance(&self) -> Option<&AssuranceReport> {
        match self {
            PassArtifact::Assurance(report) => Some(report),
            _ => None,
        }
    }

    /// The Monte-Carlo report, if this is a Monte-Carlo artefact.
    pub fn montecarlo(&self) -> Option<&MonteCarloReport> {
        match self {
            PassArtifact::MonteCarlo(report) => Some(report),
            _ => None,
        }
    }

    /// The recommendation report, if this is a recommendation artefact.
    pub fn recommendation(&self) -> Option<&RecommendationReport> {
        match self {
            PassArtifact::Recommend(report) => Some(report),
            _ => None,
        }
    }

    /// Consumes a graph-FMEA artefact into its table; any other variant
    /// comes back unchanged for a typed mismatch error.
    ///
    /// # Errors
    ///
    /// The artefact itself, boxed, when it is not [`PassArtifact::Fmea`].
    pub fn into_fmea(self) -> std::result::Result<FmeaTable, Box<PassArtifact>> {
        match self {
            PassArtifact::Fmea(table) => Ok(table),
            other => Err(Box::new(other)),
        }
    }

    /// Consumes an injection artefact into its table (dropping the
    /// campaign health, which the engine has already published).
    ///
    /// # Errors
    ///
    /// The artefact itself, boxed, when it is not
    /// [`PassArtifact::Injection`].
    pub fn into_injection_table(self) -> std::result::Result<FmeaTable, Box<PassArtifact>> {
        match self {
            PassArtifact::Injection { table, .. } => Ok(table),
            other => Err(Box::new(other)),
        }
    }

    /// Consumes an FTA artefact into its subtree summaries.
    ///
    /// # Errors
    ///
    /// The artefact itself, boxed, when it is not
    /// [`PassArtifact::FtaSummaries`].
    pub fn into_fta_summaries(
        self,
    ) -> std::result::Result<Vec<FtaSubtreeSummary>, Box<PassArtifact>> {
        match self {
            PassArtifact::FtaSummaries(summaries) => Ok(summaries),
            other => Err(Box::new(other)),
        }
    }

    /// Consumes a monitor artefact into its monitor set.
    ///
    /// # Errors
    ///
    /// The artefact itself, boxed, when it is not
    /// [`PassArtifact::Monitor`].
    pub fn into_monitor(self) -> std::result::Result<RuntimeMonitor, Box<PassArtifact>> {
        match self {
            PassArtifact::Monitor(monitor) => Ok(monitor),
            other => Err(Box::new(other)),
        }
    }

    /// Consumes a Monte-Carlo artefact into its report.
    ///
    /// # Errors
    ///
    /// The artefact itself, boxed, when it is not
    /// [`PassArtifact::MonteCarlo`].
    pub fn into_montecarlo(self) -> std::result::Result<MonteCarloReport, Box<PassArtifact>> {
        match self {
            PassArtifact::MonteCarlo(report) => Ok(report),
            other => Err(Box::new(other)),
        }
    }

    /// Consumes a recommendation artefact into its report.
    ///
    /// # Errors
    ///
    /// The artefact itself, boxed, when it is not
    /// [`PassArtifact::Recommend`].
    pub fn into_recommendation(
        self,
    ) -> std::result::Result<RecommendationReport, Box<PassArtifact>> {
        match self {
            PassArtifact::Recommend(report) => Ok(report),
            other => Err(Box::new(other)),
        }
    }

    /// Semantic equality, ignoring wall-clock noise: campaign timing
    /// (slowest cases, per-case wall time) legitimately differs between a
    /// warm and a cold run of the *same* inputs, so pipeline verification
    /// compares everything but the clocks.
    pub fn equivalent(&self, other: &PassArtifact) -> bool {
        match (self, other) {
            (
                PassArtifact::Injection { table: a, health: ha },
                PassArtifact::Injection { table: b, health: hb },
            ) => a == b && campaign_equivalent(ha, hb),
            _ => self == other,
        }
    }
}

/// Campaign equality over the semantic fields only (counters, strategy
/// histogram, failed cases) — `slowest` and the embedded degradation
/// snapshot carry timing noise.
fn campaign_equivalent(a: &CampaignHealth, b: &CampaignHealth) -> bool {
    a.total == b.total
        && a.converged == b.converged
        && a.recovered == b.recovered
        && a.unsolvable == b.unsolvable
        && a.panicked == b.panicked
        && a.skipped == b.skipped
        && a.strategy_histogram == b.strategy_histogram
        && a.failed_cases == b.failed_cases
}

/// Everything a pipeline iteration can analyse. Passes pull what they need
/// and fail with a typed [`EngineError::Pipeline`] when an input they
/// require is absent.
#[derive(Debug, Clone)]
pub struct PipelineInput<'a> {
    /// The architecture model (graph FMEA, FTA, monitors).
    pub model: Option<&'a SsamModel>,
    /// The analysis root within `model`.
    pub top: Option<Idx<Component>>,
    /// The block diagram (injection FMEA).
    pub diagram: Option<&'a BlockDiagram>,
    /// Reliability data resolving the diagram's components.
    pub reliability: Option<&'a ReliabilityDb>,
    /// Injection sweep configuration.
    pub injection: InjectionConfig,
    /// FTA mission time in hours.
    pub mission_hours: f64,
    /// Hazard log grounding the HARA assessment, when one exists.
    pub hazards: Option<&'a HazardLog>,
    /// Fallback s/e/c assumptions for the HARA assessment.
    pub policy: RiskAssessmentPolicy,
    /// Monte-Carlo trial count.
    pub trials: usize,
    /// Monte-Carlo master seed — together with the trial index this fully
    /// determines every sampling decision, making reports bitwise
    /// reproducible across thread counts and cache states.
    pub seed: u64,
}

impl Default for PipelineInput<'_> {
    fn default() -> Self {
        PipelineInput {
            model: None,
            top: None,
            diagram: None,
            reliability: None,
            injection: InjectionConfig::default(),
            mission_hours: 10_000.0,
            hazards: None,
            policy: RiskAssessmentPolicy::default(),
            trials: montecarlo::DEFAULT_TRIALS,
            seed: 0,
        }
    }
}

impl<'a> PipelineInput<'a> {
    /// An empty input (every pass needing data will fail until the
    /// builders below provide it).
    pub fn new() -> Self {
        PipelineInput::default()
    }

    /// Input for model-side passes (graph FMEA, FTA, monitors, HARA).
    pub fn for_model(model: &'a SsamModel, top: Idx<Component>) -> Self {
        PipelineInput::new().with_model(model).with_top(top)
    }

    /// Input for the injection path.
    pub fn for_diagram(diagram: &'a BlockDiagram, reliability: &'a ReliabilityDb) -> Self {
        PipelineInput::new().with_diagram(diagram, reliability)
    }

    /// Sets the architecture model.
    pub fn with_model(mut self, model: &'a SsamModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the analysis root.
    pub fn with_top(mut self, top: Idx<Component>) -> Self {
        self.top = Some(top);
        self
    }

    /// Sets the block diagram and its reliability data.
    pub fn with_diagram(
        mut self,
        diagram: &'a BlockDiagram,
        reliability: &'a ReliabilityDb,
    ) -> Self {
        self.diagram = Some(diagram);
        self.reliability = Some(reliability);
        self
    }

    /// Sets the injection configuration.
    pub fn with_injection_config(mut self, config: InjectionConfig) -> Self {
        self.injection = config;
        self
    }

    /// Sets the FTA mission time.
    pub fn with_mission_hours(mut self, hours: f64) -> Self {
        self.mission_hours = hours;
        self
    }

    /// Sets the hazard log backing the HARA assessment.
    pub fn with_hazards(mut self, hazards: &'a HazardLog) -> Self {
        self.hazards = Some(hazards);
        self
    }

    /// Sets the HARA fallback policy.
    pub fn with_policy(mut self, policy: RiskAssessmentPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the Monte-Carlo trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the Monte-Carlo master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The execution context handed to [`AnalysisPass::run`]: configuration,
/// the shared cache, the pipeline input, resolved dependency artefacts,
/// and the per-pass observability sinks the runner merges back into the
/// engine afterwards.
pub struct PassContext<'a> {
    pub(crate) config: &'a EngineConfig,
    pub(crate) workers: usize,
    pub(crate) cache: &'a Mutex<CacheStore>,
    pub(crate) input: &'a PipelineInput<'a>,
    pub(crate) deps: HashMap<&'static str, Arc<PassArtifact>>,
    /// The engine's degraded-mode report as of pipeline start; campaign
    /// health absorbs `baseline + this pass's own degradation`.
    pub(crate) baseline_degraded: DegradedModeReport,
    pub(crate) phases: Vec<PhaseStats>,
    pub(crate) degraded: DegradedModeReport,
    pub(crate) campaign: Option<CampaignHealth>,
    pub(crate) telemetry: decisive_obs::Telemetry,
}

impl<'a> PassContext<'a> {
    /// The pipeline input.
    pub fn input(&self) -> &PipelineInput<'a> {
        self.input
    }

    /// The artefact of an upstream pass this pass depends on.
    ///
    /// # Errors
    ///
    /// [`EngineError::Pipeline`] when `id` was not declared in
    /// [`AnalysisPass::depends_on`] (or its pass did not run).
    pub fn dep(&self, id: &str) -> Result<&PassArtifact> {
        self.deps.get(id).map(Arc::as_ref).ok_or_else(|| {
            EngineError::Pipeline(format!("dependency artefact `{id}` is not available"))
        })
    }

    /// Like [`PassContext::dep`], but hands out the shared handle so the
    /// artefact can outlive a later mutable borrow of the context (e.g.
    /// across a [`PassContext::run_keyed`] call).
    pub fn dep_arc(&self, id: &str) -> Result<Arc<PassArtifact>> {
        self.deps.get(id).cloned().ok_or_else(|| {
            EngineError::Pipeline(format!("dependency artefact `{id}` is not available"))
        })
    }

    fn lock_cache(&self) -> MutexGuard<'a, CacheStore> {
        // A poisoned cache mutex means another pass panicked mid-update;
        // the store itself is append-only per key and stays usable.
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn scheduler(&self, label: &str) -> Scheduler {
        let scheduler = Scheduler::new(self.workers)
            .with_telemetry(self.telemetry.clone(), label)
            .with_retry(self.config.retry.clone());
        match self.config.deadline_ms {
            Some(ms) => scheduler.with_deadline_ms(ms),
            None => scheduler,
        }
    }

    /// THE unified incremental phase: looks every [`WorkItem`] up in the
    /// cache, recomputes the misses as one scheduled batch (honouring the
    /// worker budget and per-job deadline), persists fresh results under
    /// their keys, classifies timed-out jobs into the degraded-mode
    /// report, and records a [`PhaseStats`] entry — the single code path
    /// that previously existed as four copies in `engine.rs`.
    ///
    /// `decode` maps a cached artefact to the in-memory result, `encode`
    /// the reverse; `prepare` builds batch-shared state and runs only when
    /// at least one item missed (e.g. lowering the nominal circuit).
    pub(crate) fn run_keyed<T, A, P>(
        &mut self,
        phase_name: &str,
        items: &[WorkItem],
        decode: impl Fn(usize, A) -> T,
        prepare: impl FnOnce(&[usize]) -> Result<P>,
        compute: impl Fn(&P, usize) -> decisive_core::Result<T> + Sync,
        encode: impl Fn(usize, &T) -> A,
    ) -> Result<Vec<T>>
    where
        T: Send,
        A: Serialize + DeserializeOwned,
        P: Sync,
    {
        let start = Instant::now();
        let instrumented = self.telemetry.enabled();
        let _phase_span =
            instrumented.then(|| self.telemetry.span(format!("phase:{phase_name}"), "phase"));
        let mut phase = PhaseStats::new(phase_name);
        phase.jobs_total = items.len();
        let mut merged: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
        let mut misses: Vec<usize> = Vec::new();
        // Counters are accumulated per artefact kind and flushed once —
        // the lookup loop is the warm-path hot loop, so it must not pay a
        // sink update (or a name allocation) per item.
        let mut hit_tags: HashMap<&'static str, u64> = HashMap::new();
        let mut miss_tags: HashMap<&'static str, u64> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            match self.lock_cache().get::<A>(item.id.kind, item.id.key) {
                Some(artifact) => {
                    phase.cache_hits += 1;
                    if instrumented {
                        *hit_tags.entry(item.id.kind.tag()).or_insert(0) += 1;
                    }
                    merged[i] = Some(decode(i, artifact));
                }
                None => {
                    phase.cache_misses += 1;
                    if instrumented {
                        *miss_tags.entry(item.id.kind.tag()).or_insert(0) += 1;
                    }
                    misses.push(i);
                }
            }
        }
        for (tag, n) in &hit_tags {
            self.telemetry.count(&format!("cache.{tag}.hits"), *n);
        }
        for (tag, n) in &miss_tags {
            self.telemetry.count(&format!("cache.{tag}.misses"), *n);
        }
        phase.jobs_executed = misses.len();
        if !misses.is_empty() {
            // `recomputed` = misses that reach the batch; it diverges
            // from `misses` only when `prepare` fails first.
            for (tag, n) in &miss_tags {
                self.telemetry.count(&format!("cache.{tag}.recomputed"), *n);
            }
            let prep = prepare(&misses)?;
            let jobs: Vec<_> = misses
                .iter()
                .map(|&i| {
                    let prep = &prep;
                    let compute = &compute;
                    move || compute(prep, i)
                })
                .collect();
            let out = self
                .scheduler(phase_name)
                .run_batch(&jobs)
                .map_err(|e| batch_error(e, phase_name))?;
            phase.retries = out.retries;
            phase.max_job_ms = out.max_job_ms;
            phase.timed_out = out.timed_out.len();
            for &slow in &out.timed_out {
                self.degraded
                    .timed_out_jobs
                    .push(format!("{phase_name}/{}", items[misses[slow]].label));
            }
            for (&i, result) in misses.iter().zip(out.results) {
                let fresh = result?;
                let item = &items[i];
                self.lock_cache().put(
                    item.id.kind,
                    item.id.key,
                    &item.owner,
                    &encode(i, &fresh),
                )?;
                merged[i] = Some(fresh);
            }
            // Incremental durability: with a durable shared layer every
            // artefact this pass just computed is committed (fsynced)
            // before the pass reports done, so a crash between passes
            // loses nothing already paid for.
            self.lock_cache().sync_durable()?;
        }
        phase.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        self.phases.push(phase);
        Ok(merged.into_iter().map(|t| t.expect("every work item resolved")).collect())
    }
}

/// One composable analysis step: a typed transformation from
/// content-addressed inputs (and upstream artefacts) to a
/// [`PassArtifact`], with declared dependencies so the
/// [`crate::pipeline::Pipeline`] can schedule it.
pub trait AnalysisPass: Send + Sync {
    /// Stable pass id (also the artefact name in [`crate::pipeline::PipelineRun`]).
    fn id(&self) -> &'static str;

    /// Ids of the passes whose artefacts this pass consumes.
    fn depends_on(&self) -> &[&'static str] {
        &[]
    }

    /// The cache namespaces this pass reads and writes (for
    /// `decisive passes` cache-status reporting).
    fn kinds(&self) -> &[ArtifactKind] {
        &[]
    }

    /// Executes the pass.
    ///
    /// # Errors
    ///
    /// Passes return typed [`EngineError`]s; the pipeline runner marks
    /// dependents of a failed pass as skipped instead of cascading panics.
    fn run(&self, ctx: &mut PassContext<'_>) -> Result<PassArtifact>;
}

fn batch_error(e: BatchError, phase: &str) -> EngineError {
    match e {
        BatchError::JobFailed { index } => {
            EngineError::JobFailed { index, phase: phase.to_owned() }
        }
        BatchError::Cancelled => EngineError::Cancelled,
    }
}

fn missing_input(pass: &str, what: &str) -> EngineError {
    EngineError::Pipeline(format!("pass `{pass}` requires {what}, which the input does not carry"))
}

// ----------------------------------------------------------------------
// Shared artefact codecs and helpers (moved here from `engine.rs`)
// ----------------------------------------------------------------------

/// Persistable form of [`ContainerFacts`]: component identity by name.
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub(crate) struct FactsArtifact {
    critical: Vec<String>,
    on_some_path: Vec<String>,
}

impl FactsArtifact {
    fn from_facts(model: &SsamModel, facts: &ContainerFacts) -> FactsArtifact {
        let names = |set: &std::collections::HashSet<Idx<Component>>| {
            let mut v: Vec<String> =
                set.iter().map(|&c| model.components[c].core.name.value().to_owned()).collect();
            v.sort_unstable();
            v
        };
        FactsArtifact { critical: names(&facts.critical), on_some_path: names(&facts.on_some_path) }
    }

    fn to_facts(&self, model: &SsamModel, container: Idx<Component>) -> ContainerFacts {
        let critical: std::collections::HashSet<&str> =
            self.critical.iter().map(String::as_str).collect();
        let on_some: std::collections::HashSet<&str> =
            self.on_some_path.iter().map(String::as_str).collect();
        let mut facts = ContainerFacts {
            critical: std::collections::HashSet::new(),
            on_some_path: std::collections::HashSet::new(),
        };
        for &child in &model.components[container].children {
            let name = model.components[child].core.name.value();
            if critical.contains(name) {
                facts.critical.insert(child);
            }
            if on_some.contains(name) {
                facts.on_some_path.insert(child);
            }
        }
        facts
    }
}

/// Persisted form of one injection row: the FMEA verdict *plus* how the
/// campaign supervisor classified the case, so a warm cache reproduces the
/// full [`CampaignHealth`] report without re-simulating anything.
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub(crate) struct InjectionArtifact {
    row: FmeaRow,
    outcome: CaseOutcome,
    iterations: usize,
}

/// Pre-order list of analysed containers: `top` and every non-atomic
/// descendant, in the recursion order of Algorithm 1.
pub(crate) fn collect_containers(model: &SsamModel, top: Idx<Component>) -> Vec<Idx<Component>> {
    let mut out = Vec::new();
    fn walk(model: &SsamModel, container: Idx<Component>, out: &mut Vec<Idx<Component>>) {
        out.push(container);
        for &child in &model.components[container].children {
            if !model.components[child].is_atomic() {
                walk(model, child, out);
            }
        }
    }
    walk(model, top, &mut out);
    out
}

/// The `(container, child)` work list in table order: each child's own
/// rows, immediately followed by its subtree's (Algorithm 1 line 14).
pub(crate) fn flatten_work(
    model: &SsamModel,
    container: Idx<Component>,
    out: &mut Vec<(Idx<Component>, Idx<Component>)>,
) {
    for &child in &model.components[container].children {
        out.push((container, child));
        if !model.components[child].is_atomic() {
            flatten_work(model, child, out);
        }
    }
}

/// Quantifies one container's fault subtree. Synthesis failures (no
/// input→output paths, path-cap overflow) stay a silent
/// `analysable: false` — expected for leaf containers — while
/// quantification errors on a *built* tree surface as a degraded-mode
/// note via the second tuple element.
fn quantify_subtree(
    model: &SsamModel,
    container: Idx<Component>,
    mission_hours: f64,
    max_paths: usize,
) -> (FtaSubtreeSummary, Option<String>) {
    let name = model.components[container].core.name.value().to_owned();
    match decisive_fta::build_fault_tree(model, container, max_paths) {
        Ok(synthesised) => match synthesised.tree.try_quantify(mission_hours) {
            Ok(quant) => {
                let single_points = synthesised
                    .tree
                    .single_points()
                    .into_iter()
                    .map(|id| synthesised.tree.node(id).name().to_owned())
                    .collect();
                (
                    FtaSubtreeSummary {
                        container: name,
                        analysable: true,
                        top_probability: quant.top_probability,
                        single_points,
                        minimal_cut_sets: synthesised.tree.cut_sets_by_name(),
                    },
                    None,
                )
            }
            Err(e) => {
                let note = format!("fta subtree `{name}` could not be quantified: {e}");
                (unanalysable_summary(name), Some(note))
            }
        },
        Err(_) => (unanalysable_summary(name), None),
    }
}

/// The zeroed summary of a container whose subtree could not be analysed.
fn unanalysable_summary(container: String) -> FtaSubtreeSummary {
    FtaSubtreeSummary {
        container,
        analysable: false,
        top_probability: 0.0,
        single_points: Vec::new(),
        minimal_cut_sets: Vec::new(),
    }
}

// ----------------------------------------------------------------------
// Standard passes
// ----------------------------------------------------------------------

/// Algorithm 1 as a pass: container path facts, the criticality chain and
/// per-component rows, merged into one FMEA table.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphFmeaPass;

impl AnalysisPass for GraphFmeaPass {
    fn id(&self) -> &'static str {
        ids::GRAPH
    }

    fn kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::GraphFacts, ArtifactKind::GraphRow]
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<PassArtifact> {
        let model = ctx.input.model.ok_or_else(|| missing_input(self.id(), "a model"))?;
        let top = ctx.input.top.ok_or_else(|| missing_input(self.id(), "an analysis root"))?;
        let graph_config = ctx.config.graph.clone();
        let config_fp = model_fp::graph_config_fingerprint(model, &graph_config);

        // Phase 1: container path facts.
        let containers = collect_containers(model, top);
        let mut topo_fp: HashMap<Idx<Component>, Fingerprint> = HashMap::new();
        for &container in &containers {
            topo_fp.insert(container, model_fp::topology_fingerprint(model, container));
        }
        let items: Vec<WorkItem> = containers
            .iter()
            .map(|&container| {
                let key = Hasher::new()
                    .write_str("graph-facts")
                    .write_fingerprint(topo_fp[&container])
                    .write_fingerprint(config_fp)
                    .finish();
                let name = model.components[container].core.name.value().to_owned();
                WorkItem {
                    id: ArtifactId { kind: ArtifactKind::GraphFacts, key },
                    owner: name.clone(),
                    label: name,
                }
            })
            .collect();
        let facts_list = ctx.run_keyed(
            "graph-facts",
            &items,
            |i, artifact: FactsArtifact| artifact.to_facts(model, containers[i]),
            |_| Ok(()),
            |_: &(), i| graph::container_facts(model, containers[i], &graph_config),
            |_, facts| FactsArtifact::from_facts(model, facts),
        )?;
        let facts: HashMap<Idx<Component>, ContainerFacts> =
            containers.iter().copied().zip(facts_list).collect();

        // Criticality chain: a container is critical iff every enclosing
        // container is critical and it sits on all paths one level up.
        let mut critical_flag: HashMap<Idx<Component>, bool> = HashMap::new();
        critical_flag.insert(top, true);
        for &container in &containers {
            let flag = critical_flag[&container];
            for &child in &model.components[container].children {
                if !model.components[child].is_atomic() {
                    critical_flag
                        .insert(child, flag && facts[&container].critical.contains(&child));
                }
            }
        }

        // Phase 2: per-component rows.
        let mut work: Vec<(Idx<Component>, Idx<Component>)> = Vec::new();
        flatten_work(model, top, &mut work);
        let items: Vec<WorkItem> = work
            .iter()
            .map(|&(container, child)| {
                let key = Hasher::new()
                    .write_str("graph-row")
                    .write_fingerprint(model_fp::component_fingerprint(model, child))
                    .write_fingerprint(topo_fp[&container])
                    .write_bool(critical_flag[&container])
                    .write_fingerprint(config_fp)
                    .finish();
                let name = model.components[child].core.name.value().to_owned();
                WorkItem {
                    id: ArtifactId { kind: ArtifactKind::GraphRow, key },
                    owner: name.clone(),
                    label: name,
                }
            })
            .collect();
        let row_groups = ctx.run_keyed(
            "graph-rows",
            &items,
            |_, rows: Vec<FmeaRow>| rows,
            |_| Ok(()),
            |_: &(), i| {
                let (container, child) = work[i];
                Ok(graph::component_rows(
                    model,
                    child,
                    critical_flag[&container],
                    &facts[&container],
                    &graph_config,
                ))
            },
            |_, rows| rows.clone(),
        )?;

        // Deterministic merge.
        let mut table = FmeaTable::new(model.components[top].core.name.value());
        for rows in row_groups {
            for row in rows {
                table.push(row);
            }
        }
        Ok(PassArtifact::Fmea(table))
    }
}

/// The supervised fault-injection sweep as a pass: rows are keyed by the
/// whole-circuit digest plus candidate content, solver ladder and kernel,
/// the campaign circuit breaker is enforced on every run (warm or cold),
/// and the health report is published for downstream passes. Cases are
/// scheduled through `run_keyed`, whose long-lived worker threads each
/// carry a thread-local `SolverWorkspace` (inside
/// `analyse_candidate_supervised`), so every case a worker solves reuses
/// the same symbolic layouts and factorization buffers.
#[derive(Debug, Default, Clone, Copy)]
pub struct InjectionFmeaPass;

impl AnalysisPass for InjectionFmeaPass {
    fn id(&self) -> &'static str {
        ids::INJECTION
    }

    fn kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::InjectionRow]
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<PassArtifact> {
        let diagram =
            ctx.input.diagram.ok_or_else(|| missing_input(self.id(), "a block diagram"))?;
        let reliability =
            ctx.input.reliability.ok_or_else(|| missing_input(self.id(), "reliability data"))?;
        let config = ctx.input.injection.clone();
        if !(config.threshold > 0.0 && config.threshold.is_finite()) {
            return Err(EngineError::Core(CoreError::InvalidParameter {
                message: format!("threshold must be positive and finite, got {}", config.threshold),
            }));
        }
        config.campaign.validate().map_err(EngineError::Core)?;
        let circuit_fp = model_fp::serialized_fingerprint(diagram, "block-diagram");
        let solver = &config.campaign.solver;
        let candidates = injection::candidates(diagram, reliability);
        let items: Vec<WorkItem> = candidates
            .iter()
            .map(|candidate| {
                let key = Hasher::new()
                    .write_str("injection-row")
                    .write_fingerprint(circuit_fp)
                    .write_fingerprint(model_fp::candidate_fingerprint(candidate))
                    .write_f64(config.threshold)
                    .write_bool(solver.damped)
                    .write_bool(solver.gmin_stepping)
                    .write_bool(solver.source_stepping)
                    .write_u64(solver.budget as u64)
                    .write_str(solver.kernel.tag())
                    .finish();
                WorkItem {
                    id: ArtifactId { kind: ArtifactKind::InjectionRow, key },
                    owner: candidate.name.clone(),
                    label: format!("{}/{}", candidate.name, candidate.mode.name),
                }
            })
            .collect();
        let results = ctx.run_keyed(
            "injection-rows",
            &items,
            |i, artifact: InjectionArtifact| {
                let candidate = &candidates[i];
                let report = CaseReport {
                    case: format!("{}/{}", candidate.name, candidate.mode.name),
                    outcome: artifact.outcome,
                    iterations: artifact.iterations,
                    wall_ms: 0.0, // served from the cache, not re-solved
                };
                (artifact.row, report)
            },
            |_| {
                // Lower and solve the nominal circuit once, only when at
                // least one candidate actually needs simulating. Uses the
                // configured kernel with the full default recovery ladder.
                let lowered = to_circuit(diagram).map_err(CoreError::from)?;
                let nominal_options = decisive_circuit::SolverOptions {
                    kernel: config.campaign.solver.kernel,
                    ..decisive_circuit::SolverOptions::default()
                };
                let (nominal_solution, _) = decisive_circuit::SolverWorkspace::new()
                    .dc(&lowered.circuit, &nominal_options)
                    .map_err(CoreError::from)?;
                let nominal = lowered
                    .circuit
                    .all_sensor_readings(&nominal_solution)
                    .map_err(CoreError::from)?;
                Ok((lowered, nominal))
            },
            |(lowered, nominal), i| {
                Ok(injection::analyse_candidate_supervised(
                    &candidates[i],
                    lowered,
                    nominal,
                    &config,
                ))
            },
            |_, (row, report)| InjectionArtifact {
                row: row.clone(),
                outcome: report.outcome.clone(),
                iterations: report.iterations,
            },
        )?;

        let (rows, reports): (Vec<FmeaRow>, Vec<CaseReport>) = results.into_iter().unzip();
        let mut health = CampaignHealth::from_reports(&reports);
        let mut degradation = ctx.baseline_degraded.clone();
        degradation.merge(&ctx.degraded);
        health.absorb_degradation(&degradation);
        // Keep the report visible even when the breaker aborts the run —
        // it is exactly then that the operator needs the failed-case list.
        ctx.campaign = Some(health.clone());
        health.enforce(&config.campaign).map_err(EngineError::Core)?;

        let mut table = FmeaTable::new(diagram.name());
        for row in rows {
            table.push(row);
        }
        Ok(PassArtifact::Injection { table, health })
    }
}

/// Per-container fault-subtree quantification as a pass, cached per
/// container content and mission time.
#[derive(Debug, Default, Clone, Copy)]
pub struct FtaPass;

impl AnalysisPass for FtaPass {
    fn id(&self) -> &'static str {
        ids::FTA
    }

    fn kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::FtaSubtree]
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<PassArtifact> {
        let model = ctx.input.model.ok_or_else(|| missing_input(self.id(), "a model"))?;
        let top = ctx.input.top.ok_or_else(|| missing_input(self.id(), "an analysis root"))?;
        let mission_hours = ctx.input.mission_hours;
        if !(mission_hours > 0.0 && mission_hours.is_finite()) {
            return Err(EngineError::Core(CoreError::InvalidParameter {
                message: format!("mission time must be positive and finite, got {mission_hours}"),
            }));
        }
        let max_paths = ctx.config.graph.max_paths;
        let containers = collect_containers(model, top);
        let items: Vec<WorkItem> = containers
            .iter()
            .map(|&container| {
                let mut h = Hasher::new();
                h.write_str("fta-subtree");
                h.write_fingerprint(model_fp::topology_fingerprint(model, container));
                for &child in &model.components[container].children {
                    h.write_fingerprint(model_fp::component_fingerprint(model, child));
                }
                h.write_f64(mission_hours);
                h.write_u64(max_paths as u64);
                let name = model.components[container].core.name.value().to_owned();
                WorkItem {
                    id: ArtifactId { kind: ArtifactKind::FtaSubtree, key: h.finish() },
                    owner: name.clone(),
                    label: name,
                }
            })
            .collect();
        let results = ctx.run_keyed(
            "fta-subtrees",
            &items,
            |_, summary: FtaSubtreeSummary| (summary, None),
            |_| Ok(()),
            |_: &(), i| Ok(quantify_subtree(model, containers[i], mission_hours, max_paths)),
            |_, (summary, _)| summary.clone(),
        )?;
        let mut summaries = Vec::with_capacity(results.len());
        for (summary, note) in results {
            if let Some(note) = note {
                ctx.degraded.notes.push(note);
            }
            summaries.push(summary);
        }
        Ok(PassArtifact::FtaSummaries(summaries))
    }
}

/// Runtime monitor synthesis as a pass, keyed by the monitor-relevant
/// model slice.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonitorPass;

impl AnalysisPass for MonitorPass {
    fn id(&self) -> &'static str {
        ids::MONITORS
    }

    fn kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::MonitorSet]
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<PassArtifact> {
        let model = ctx.input.model.ok_or_else(|| missing_input(self.id(), "a model"))?;
        let name = model.name.value().to_owned();
        let items = [WorkItem {
            id: ArtifactId {
                kind: ArtifactKind::MonitorSet,
                key: model_fp::monitor_fingerprint(model),
            },
            owner: name.clone(),
            label: name,
        }];
        let mut monitors = ctx.run_keyed(
            "monitor-set",
            &items,
            |_, monitor: RuntimeMonitor| monitor,
            |_| Ok(()),
            |_: &(), _| Ok(RuntimeMonitor::generate(model)),
            |_, monitor| monitor.clone(),
        )?;
        Ok(PassArtifact::Monitor(monitors.pop().expect("one monitor item")))
    }
}

/// HARA risk-log pass: assesses every FMEA failure mode of an upstream
/// FMEA-producing pass against the hazard log (or the fallback policy)
/// and derives the per-mode ASIL.
#[derive(Debug, Clone)]
pub struct HaraPass {
    deps: [&'static str; 1],
}

impl HaraPass {
    /// A HARA pass consuming the FMEA table of the pass named `source`.
    pub fn new(source: &'static str) -> Self {
        HaraPass { deps: [source] }
    }
}

impl Default for HaraPass {
    fn default() -> Self {
        HaraPass::new(ids::GRAPH)
    }
}

impl AnalysisPass for HaraPass {
    fn id(&self) -> &'static str {
        ids::HARA
    }

    fn depends_on(&self) -> &[&'static str] {
        &self.deps
    }

    fn kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::RiskLog]
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<PassArtifact> {
        let source = ctx.dep_arc(self.deps[0])?;
        let table = source.fmea_table().ok_or_else(|| {
            EngineError::Pipeline(format!(
                "pass `{}` expects an FMEA table from `{}`, got {}",
                self.id(),
                self.deps[0],
                source.kind_name()
            ))
        })?;
        let hazards = ctx.input.hazards;
        let policy = ctx.input.policy;
        let mut h = Hasher::new();
        h.write_str("risk-log");
        h.write_fingerprint(model_fp::serialized_fingerprint(table, "fmea-table"));
        match hazards {
            Some(log) => {
                h.write_bool(true);
                h.write_fingerprint(model_fp::serialized_fingerprint(log, "hazard-log"));
            }
            None => {
                h.write_bool(false);
            }
        }
        h.write_u64(policy.severity as u64);
        h.write_u64(policy.exposure as u64);
        h.write_u64(policy.controllability as u64);
        let items = [WorkItem {
            id: ArtifactId { kind: ArtifactKind::RiskLog, key: h.finish() },
            owner: table.system.clone(),
            label: table.system.clone(),
        }];
        let title = format!("{} risk log", table.system);
        let mut logs = ctx.run_keyed(
            "risk-log",
            &items,
            |_, log: RiskLog| log,
            |_| Ok(()),
            |_: &(), _| {
                Ok(RiskLog::assess(
                    title.clone(),
                    table
                        .rows
                        .iter()
                        .map(|r| (r.component.as_str(), r.failure_mode.as_str(), r.safety_related)),
                    hazards,
                    &policy,
                ))
            },
            |_, log| log.clone(),
        )?;
        Ok(PassArtifact::RiskLog(logs.pop().expect("one risk-log item")))
    }
}

/// The Monte-Carlo campaign as a pass: every trial perturbs the
/// reliability model (lognormal FIT, Dirichlet-style shares, seeded per
/// trial from the master seed) and re-runs the full supervised injection
/// sweep against the *unchanged* circuit, so all trials share one nominal
/// lowering/solve and — through the thread-local `SolverWorkspace` inside
/// `analyse_candidate_supervised` — the healthy circuit's sparse symbolic
/// layout. Trials are the keyed work items, cached per `(circuit,
/// reliability, solver, seed, index)`, and aggregated in trial-index
/// order, so the report is bitwise identical across worker counts and
/// warm/cold caches.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonteCarloPass;

impl AnalysisPass for MonteCarloPass {
    fn id(&self) -> &'static str {
        ids::MONTECARLO
    }

    fn kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::McTrial]
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<PassArtifact> {
        let diagram =
            ctx.input.diagram.ok_or_else(|| missing_input(self.id(), "a block diagram"))?;
        let reliability =
            ctx.input.reliability.ok_or_else(|| missing_input(self.id(), "reliability data"))?;
        let config = ctx.input.injection.clone();
        if !(config.threshold > 0.0 && config.threshold.is_finite()) {
            return Err(EngineError::Core(CoreError::InvalidParameter {
                message: format!("threshold must be positive and finite, got {}", config.threshold),
            }));
        }
        config.campaign.validate().map_err(EngineError::Core)?;
        let trials = ctx.input.trials;
        if trials == 0 {
            return Err(EngineError::Core(CoreError::InvalidParameter {
                message: "a Monte-Carlo campaign needs at least one trial".to_owned(),
            }));
        }
        let seed = ctx.input.seed;
        let circuit_fp = model_fp::serialized_fingerprint(diagram, "block-diagram");
        let reliability_fp = model_fp::reliability_fingerprint(reliability);
        let solver = &config.campaign.solver;
        let items: Vec<WorkItem> = (0..trials)
            .map(|trial| {
                let key = Hasher::new()
                    .write_str("mc-trial")
                    .write_fingerprint(circuit_fp)
                    .write_fingerprint(reliability_fp)
                    .write_f64(config.threshold)
                    .write_bool(solver.damped)
                    .write_bool(solver.gmin_stepping)
                    .write_bool(solver.source_stepping)
                    .write_u64(solver.budget as u64)
                    .write_str(solver.kernel.tag())
                    .write_u64(seed)
                    .write_u64(trial as u64)
                    .finish();
                WorkItem {
                    id: ArtifactId { kind: ArtifactKind::McTrial, key },
                    owner: diagram.name().to_owned(),
                    label: format!("trial-{trial}"),
                }
            })
            .collect();
        let results = ctx.run_keyed(
            "mc-trials",
            &items,
            |_, metrics: TrialMetrics| metrics,
            |_| {
                // One nominal lowering/solve for every trial that needs
                // simulating: the perturbation touches only reliability
                // numbers, never the circuit.
                let lowered = to_circuit(diagram).map_err(CoreError::from)?;
                let nominal_options = decisive_circuit::SolverOptions {
                    kernel: config.campaign.solver.kernel,
                    ..decisive_circuit::SolverOptions::default()
                };
                let (nominal_solution, _) = decisive_circuit::SolverWorkspace::new()
                    .dc(&lowered.circuit, &nominal_options)
                    .map_err(CoreError::from)?;
                let nominal = lowered
                    .circuit
                    .all_sensor_readings(&nominal_solution)
                    .map_err(CoreError::from)?;
                Ok((lowered, nominal))
            },
            |(lowered, nominal), trial| {
                let mut rng = montecarlo::trial_rng(seed, trial);
                let drawn = montecarlo::perturb(reliability, &mut rng);
                let candidates = injection::candidates(diagram, &drawn);
                let mut table = FmeaTable::new(diagram.name());
                let mut reports = Vec::with_capacity(candidates.len());
                for candidate in &candidates {
                    let (row, report) = injection::analyse_candidate_supervised(
                        candidate, lowered, nominal, &config,
                    );
                    table.push(row);
                    reports.push(report);
                }
                // Each trial is a full campaign; the supervisor's circuit
                // breaker applies to it like to any other sweep.
                CampaignHealth::from_reports(&reports).enforce(&config.campaign)?;
                Ok(TrialMetrics::of(&table))
            },
            |_, metrics| *metrics,
        )?;
        Ok(PassArtifact::MonteCarlo(MonteCarloReport::from_trials(seed, &results)))
    }
}

/// Safety-pattern recommendation as a pass: matches the built-in pattern
/// catalog (comparison monitor, redundant channel, watchdog, range check)
/// against the failure modes an upstream FMEA left uncovered, scores the
/// candidate deployments with the Pareto search, and reports them ranked
/// by projected SPFM with the metric deltas of each.
#[derive(Debug, Clone)]
pub struct RecommendPass {
    deps: [&'static str; 1],
}

impl RecommendPass {
    /// A recommendation pass consuming the FMEA table of the pass named
    /// `source`.
    pub fn new(source: &'static str) -> Self {
        RecommendPass { deps: [source] }
    }
}

impl Default for RecommendPass {
    fn default() -> Self {
        RecommendPass::new(ids::INJECTION)
    }
}

impl AnalysisPass for RecommendPass {
    fn id(&self) -> &'static str {
        ids::RECOMMEND
    }

    fn depends_on(&self) -> &[&'static str] {
        &self.deps
    }

    fn kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::Recommendation]
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<PassArtifact> {
        let source = ctx.dep_arc(self.deps[0])?;
        let table = source.fmea_table().ok_or_else(|| {
            EngineError::Pipeline(format!(
                "pass `{}` expects an FMEA table from `{}`, got {}",
                self.id(),
                self.deps[0],
                source.kind_name()
            ))
        })?;
        let key = Hasher::new()
            .write_str("recommendation")
            .write_fingerprint(model_fp::serialized_fingerprint(table, "fmea-table"))
            .finish();
        let items = [WorkItem {
            id: ArtifactId { kind: ArtifactKind::Recommendation, key },
            owner: table.system.clone(),
            label: table.system.clone(),
        }];
        let mut reports = ctx.run_keyed(
            "recommendation",
            &items,
            |_, report: RecommendationReport| report,
            |_| Ok(()),
            |_: &(), _| patterns::recommend(table),
            |_, report| report.clone(),
        )?;
        Ok(PassArtifact::Recommend(reports.pop().expect("one recommendation item")))
    }
}

/// Assurance-case pass: generates the standard pipeline GSN case from the
/// FMEA, FTA and HARA artefacts (plus campaign health when the source is
/// the injection pass), registers the artefacts with the federation layer
/// and evaluates every evidence query.
#[derive(Debug, Clone)]
pub struct AssurancePass {
    deps: [&'static str; 3],
}

impl AssurancePass {
    /// An assurance pass arguing over the FMEA table of `source` (plus
    /// the FTA and HARA artefacts).
    pub fn new(source: &'static str) -> Self {
        AssurancePass { deps: [source, ids::FTA, ids::HARA] }
    }
}

impl Default for AssurancePass {
    fn default() -> Self {
        AssurancePass::new(ids::GRAPH)
    }
}

impl AnalysisPass for AssurancePass {
    fn id(&self) -> &'static str {
        ids::ASSURANCE
    }

    fn depends_on(&self) -> &[&'static str] {
        &self.deps
    }

    fn kinds(&self) -> &[ArtifactKind] {
        &[ArtifactKind::AssuranceCase]
    }

    fn run(&self, ctx: &mut PassContext<'_>) -> Result<PassArtifact> {
        let source = ctx.dep_arc(self.deps[0])?;
        let table = source.fmea_table().ok_or_else(|| {
            EngineError::Pipeline(format!(
                "pass `{}` expects an FMEA table from `{}`, got {}",
                self.id(),
                self.deps[0],
                source.kind_name()
            ))
        })?;
        let campaign = source.campaign_health();
        let fta = ctx.dep_arc(ids::FTA)?;
        let subtree_summaries = fta.fta_summaries().ok_or_else(|| {
            EngineError::Pipeline(format!(
                "pass `{}` expects FTA summaries from `{}`, got {}",
                self.id(),
                ids::FTA,
                fta.kind_name()
            ))
        })?;
        let hara = ctx.dep_arc(ids::HARA)?;
        let risk = hara.risk_log().ok_or_else(|| {
            EngineError::Pipeline(format!(
                "pass `{}` expects a risk log from `{}`, got {}",
                self.id(),
                ids::HARA,
                hara.kind_name()
            ))
        })?;
        let target = risk.highest_asil().unwrap_or(IntegrityLevel::Qm);

        let mut h = Hasher::new();
        h.write_str("assurance-case");
        h.write_fingerprint(model_fp::serialized_fingerprint(table, "fmea-table"));
        h.write_fingerprint(model_fp::serialized_fingerprint(
            &subtree_summaries.to_vec(),
            "fta-summaries",
        ));
        h.write_fingerprint(model_fp::serialized_fingerprint(risk, "risk-log"));
        // Only the semantic campaign fields: wall-clock noise (slowest
        // cases, degradation snapshots) must not break warm cache hits.
        match campaign {
            Some(health) => {
                h.write_bool(true);
                h.write_u64(health.total as u64);
                h.write_u64(health.converged as u64);
                h.write_u64(health.recovered as u64);
                h.write_u64(health.unsolvable as u64);
                h.write_u64(health.panicked as u64);
                h.write_u64(health.skipped as u64);
                for (strategy, count) in &health.strategy_histogram {
                    h.write_str(strategy);
                    h.write_u64(*count as u64);
                }
                for case in &health.failed_cases {
                    h.write_str(case);
                }
            }
            None => {
                h.write_bool(false);
            }
        }
        let items = [WorkItem {
            id: ArtifactId { kind: ArtifactKind::AssuranceCase, key: h.finish() },
            owner: table.system.clone(),
            label: table.system.clone(),
        }];

        let subtrees: Vec<(String, bool, Vec<String>)> = subtree_summaries
            .iter()
            .map(|s| (s.container.clone(), s.analysable, s.single_points.clone()))
            .collect();
        let mut reports = ctx.run_keyed(
            "assurance-case",
            &items,
            |_, report: AssuranceReport| report,
            |_| Ok(()),
            |_: &(), _| {
                let registry = DriverRegistry::with_defaults();
                registry.memory().register(FMEA_LOCATION, table.to_value());
                registry.memory().register(
                    FTA_LOCATION,
                    Value::List(
                        subtree_summaries
                            .iter()
                            .map(|s| {
                                Value::record([
                                    ("Container", Value::from(s.container.as_str())),
                                    (
                                        "Analysable",
                                        Value::from(if s.analysable { "Yes" } else { "No" }),
                                    ),
                                    ("Top_Probability", Value::Real(s.top_probability)),
                                    ("Single_Points", Value::Int(s.single_points.len() as i64)),
                                ])
                            })
                            .collect(),
                    ),
                );
                if let Some(health) = campaign {
                    registry.memory().register(
                        CAMPAIGN_LOCATION,
                        Value::list([Value::record([
                            ("Total", Value::Int(health.total as i64)),
                            ("Converged", Value::Int(health.converged as i64)),
                            ("Recovered", Value::Int(health.recovered as i64)),
                            ("Unsolvable", Value::Int(health.unsolvable as i64)),
                            ("Panicked", Value::Int(health.panicked as i64)),
                            ("Skipped", Value::Int(health.skipped as i64)),
                        ])]),
                    );
                }
                let evidence = PipelineEvidence {
                    system: &table.system,
                    target,
                    subtrees: &subtrees,
                    campaign,
                };
                Ok(pipeline_report(&evidence, &registry))
            },
            |_, report| report.clone(),
        )?;
        let report = reports.pop().expect("one assurance item");
        if let Status::Error(e) = &report.overall {
            ctx.degraded.notes.push(format!("assurance case evaluation errored: {e}"));
        }
        Ok(PassArtifact::Assurance(report))
    }
}
