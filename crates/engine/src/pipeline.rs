//! The pass-manager pipeline: an [`AnalysisPass`] DAG validated for
//! well-formedness (unique ids, known dependencies, no cycles) and
//! executed with **cross-pass parallelism** — independent passes run
//! concurrently on the shared worker budget while dependents wait for
//! their upstream artefacts.
//!
//! One full DECISIVE iteration (paper Fig. 2) is [`Pipeline::standard`]:
//!
//! ```text
//! graph-fmea ──┬─▶ hara ───▶ assurance
//! injection ───┤               ▲
//! fta ─────────┴───────────────┘
//! monitors
//! ```
//!
//! (with `hara`/`assurance` consuming the injection table instead when the
//! block-diagram path is analysed).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use decisive_core::campaign::CampaignHealth;
use decisive_core::degraded::DegradedModeReport;
use decisive_core::fmea::FmeaTable;
use decisive_core::monitor::RuntimeMonitor;
use decisive_hara::RiskLog;

use decisive_assurance::AssuranceReport;

use crate::cache::ArtifactKind;
use crate::engine::{Engine, FtaSubtreeSummary};
use crate::error::{EngineError, Result};
use crate::pass::{
    ids, AnalysisPass, AssurancePass, FtaPass, GraphFmeaPass, HaraPass, InjectionFmeaPass,
    MonitorPass, PassArtifact, PassContext, PipelineInput,
};
use crate::stats::PhaseStats;

/// An ordered collection of passes forming a dependency DAG.
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn AnalysisPass>>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.passes.iter().map(|p| p.id())).finish()
    }
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Builder-style registration.
    pub fn with(mut self, pass: impl AnalysisPass + 'static) -> Self {
        self.push(pass);
        self
    }

    /// Registers a pass. Registration order is the tie-break order for
    /// scheduling and the merge order for stats and degraded-mode notes.
    pub fn push(&mut self, pass: impl AnalysisPass + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// The registered passes, in registration order.
    pub fn passes(&self) -> &[Box<dyn AnalysisPass>] {
        &self.passes
    }

    /// The full DECISIVE iteration: graph FMEA, optional injection FMEA,
    /// FTA subtrees, runtime monitors, the HARA risk log and the
    /// assurance case. With `with_injection`, HARA and the assurance case
    /// argue over the injection table (the measured path); without, over
    /// the graph table.
    pub fn standard(with_injection: bool) -> Self {
        let primary = if with_injection { ids::INJECTION } else { ids::GRAPH };
        let mut pipeline = Pipeline::new().with(GraphFmeaPass);
        if with_injection {
            pipeline.push(InjectionFmeaPass);
        }
        pipeline
            .with(FtaPass)
            .with(MonitorPass)
            .with(HaraPass::new(primary))
            .with(AssurancePass::new(primary))
    }

    /// Checks the DAG is well-formed and returns a topological order of
    /// pass indices (dependencies first; registration order breaks ties).
    ///
    /// # Errors
    ///
    /// [`EngineError::Pipeline`] on duplicate ids, unknown dependencies or
    /// a dependency cycle.
    pub fn validate(&self) -> Result<Vec<usize>> {
        let mut index_of: HashMap<&str, usize> = HashMap::new();
        for (i, pass) in self.passes.iter().enumerate() {
            if index_of.insert(pass.id(), i).is_some() {
                return Err(EngineError::Pipeline(format!("duplicate pass id `{}`", pass.id())));
            }
        }
        let mut indegree = vec![0usize; self.passes.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.passes.len()];
        for (i, pass) in self.passes.iter().enumerate() {
            for dep in pass.depends_on() {
                let Some(&d) = index_of.get(dep) else {
                    return Err(EngineError::Pipeline(format!(
                        "pass `{}` depends on unknown pass `{dep}`",
                        pass.id()
                    )));
                };
                indegree[i] += 1;
                dependents[d].push(i);
            }
        }
        // Kahn's algorithm; the ready set is scanned in registration
        // order, keeping the result deterministic.
        let mut order = Vec::with_capacity(self.passes.len());
        let mut emitted = vec![false; self.passes.len()];
        loop {
            let next = (0..self.passes.len()).find(|&i| !emitted[i] && indegree[i] == 0);
            match next {
                Some(i) => {
                    emitted[i] = true;
                    order.push(i);
                    for &dependent in &dependents[i] {
                        indegree[dependent] -= 1;
                    }
                }
                None => break,
            }
        }
        if order.len() != self.passes.len() {
            let stuck = (0..self.passes.len())
                .find(|&i| !emitted[i])
                .map(|i| self.passes[i].id())
                .unwrap_or("?");
            return Err(EngineError::Pipeline(format!(
                "dependency cycle involving pass `{stuck}`"
            )));
        }
        Ok(order)
    }
}

/// The artefacts of one pipeline execution, keyed by pass id in
/// registration order.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    results: Vec<(String, Arc<PassArtifact>)>,
}

impl PipelineRun {
    /// The artefact of the pass named `id`, when it ran.
    pub fn artifact(&self, id: &str) -> Option<&PassArtifact> {
        self.results.iter().find(|(name, _)| name == id).map(|(_, a)| a.as_ref())
    }

    /// All `(pass id, artefact)` pairs, in registration order.
    pub fn artifacts(&self) -> impl Iterator<Item = (&str, &PassArtifact)> {
        self.results.iter().map(|(name, a)| (name.as_str(), a.as_ref()))
    }

    /// The primary FMEA table: the injection table when the injection
    /// pass ran, the graph table otherwise.
    pub fn fmea(&self) -> Option<&FmeaTable> {
        self.artifact(ids::INJECTION)
            .or_else(|| self.artifact(ids::GRAPH))
            .and_then(PassArtifact::fmea_table)
    }

    /// The quantified FTA subtrees, when the FTA pass ran.
    pub fn fta(&self) -> Option<&[FtaSubtreeSummary]> {
        self.artifact(ids::FTA).and_then(PassArtifact::fta_summaries)
    }

    /// The runtime monitor set, when the monitor pass ran.
    pub fn monitor(&self) -> Option<&RuntimeMonitor> {
        self.artifact(ids::MONITORS).and_then(PassArtifact::monitor)
    }

    /// The HARA risk log, when the HARA pass ran.
    pub fn risk_log(&self) -> Option<&RiskLog> {
        self.artifact(ids::HARA).and_then(PassArtifact::risk_log)
    }

    /// The evaluated assurance case, when the assurance pass ran.
    pub fn assurance(&self) -> Option<&AssuranceReport> {
        self.artifact(ids::ASSURANCE).and_then(PassArtifact::assurance)
    }

    /// The Monte-Carlo report, when the Monte-Carlo pass ran.
    pub fn montecarlo(&self) -> Option<&decisive_core::montecarlo::MonteCarloReport> {
        self.artifact(ids::MONTECARLO).and_then(PassArtifact::montecarlo)
    }

    /// The recommendation report, when the recommendation pass ran.
    pub fn recommendation(&self) -> Option<&decisive_core::patterns::RecommendationReport> {
        self.artifact(ids::RECOMMEND).and_then(PassArtifact::recommendation)
    }
}

/// Cache status of one pass, as shown by `decisive passes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStatus {
    /// The pass id.
    pub id: String,
    /// Ids of the passes it consumes.
    pub depends_on: Vec<String>,
    /// Cache namespaces it reads and writes.
    pub kinds: Vec<ArtifactKind>,
    /// Cached entries currently held across those namespaces.
    pub cached_entries: usize,
}

/// Everything one finished pass hands back to the merge step.
struct PassOutcome {
    artifact: Option<Arc<PassArtifact>>,
    error: Option<EngineError>,
    skipped: Option<String>,
    phases: Vec<PhaseStats>,
    degraded: DegradedModeReport,
    campaign: Option<CampaignHealth>,
}

/// Shared scheduler state of one pipeline execution.
struct DagState {
    indegree: Vec<usize>,
    ready: Vec<usize>,
    done: Vec<Option<PassOutcome>>,
    completed: usize,
}

impl Engine {
    /// Executes `pipeline` over `input` with cross-pass parallelism: the
    /// worker budget ([`crate::engine::EngineConfig::jobs`]) is split
    /// between concurrent passes and the batches inside each pass.
    /// Artefacts flow along the validated DAG; a failing pass marks its
    /// dependents skipped (recorded in the degraded-mode report) and the
    /// first error — in registration order — is returned after every
    /// runnable pass finished, so stats, campaign health and cache
    /// contents stay complete even on failure.
    ///
    /// # Errors
    ///
    /// [`EngineError::Pipeline`] on a malformed DAG, otherwise the first
    /// failing pass's error.
    pub fn run_pipeline(
        &mut self,
        pipeline: &Pipeline,
        input: &PipelineInput<'_>,
    ) -> Result<PipelineRun> {
        pipeline.validate()?;
        let passes = pipeline.passes();
        let n = passes.len();
        if n == 0 {
            return Ok(PipelineRun { results: Vec::new() });
        }
        let config = self.config.clone();
        let baseline_degraded = self.degraded.clone();
        let telemetry = self.telemetry.clone();
        let cache = Mutex::new(std::mem::take(&mut self.cache));
        // Split the budget: up to `pass_workers` passes in flight, each
        // with `intra` workers for its own batches.
        let pass_workers = config.jobs.min(n).max(1);
        let intra = (config.jobs / pass_workers).max(1);

        let mut index_of: HashMap<&str, usize> = HashMap::new();
        for (i, pass) in passes.iter().enumerate() {
            index_of.insert(pass.id(), i);
        }
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, pass) in passes.iter().enumerate() {
            for dep in pass.depends_on() {
                indegree[i] += 1;
                dependents[index_of[dep]].push(i);
            }
        }
        // The ready stack is kept sorted descending so `pop` yields the
        // lowest registration index first — deterministic under 1 worker.
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        ready.reverse();
        let state = Mutex::new(DagState {
            indegree,
            ready,
            done: (0..n).map(|_| None).collect(),
            completed: 0,
        });
        let turnstile = Condvar::new();

        crossbeam::scope(|scope| {
            for _ in 0..pass_workers {
                scope.spawn(|| {
                    // DAG workers are fresh threads: install the engine's
                    // telemetry handle so passes (and the solver code
                    // under them) record onto the shared timeline.
                    let _telemetry = decisive_obs::set_current(telemetry.clone());
                    loop {
                        let idx = {
                            let mut guard = state.lock().unwrap_or_else(|e| e.into_inner());
                            loop {
                                if let Some(idx) = guard.ready.pop() {
                                    break idx;
                                }
                                if guard.completed == n {
                                    return;
                                }
                                guard = turnstile.wait(guard).unwrap_or_else(|e| e.into_inner());
                            }
                        };
                        let pass = &passes[idx];
                        // Collect upstream artefacts; a failed or skipped
                        // dependency skips this pass too.
                        let mut deps: HashMap<&'static str, Arc<PassArtifact>> = HashMap::new();
                        let mut skipped = None;
                        {
                            let guard = state.lock().unwrap_or_else(|e| e.into_inner());
                            for dep in pass.depends_on() {
                                let outcome = guard.done[index_of[*dep]]
                                    .as_ref()
                                    .expect("dependency completed before dependent");
                                match &outcome.artifact {
                                    Some(artifact) => {
                                        deps.insert(*dep, Arc::clone(artifact));
                                    }
                                    None => {
                                        skipped = Some(format!(
                                            "pass `{}` skipped: upstream pass `{dep}` {}",
                                            pass.id(),
                                            if outcome.skipped.is_some() {
                                                "was skipped"
                                            } else {
                                                "failed"
                                            }
                                        ));
                                    }
                                }
                            }
                        }
                        let outcome = match skipped {
                            Some(reason) => PassOutcome {
                                artifact: None,
                                error: None,
                                skipped: Some(reason),
                                phases: Vec::new(),
                                degraded: DegradedModeReport::new(),
                                campaign: None,
                            },
                            None => {
                                let mut ctx = PassContext {
                                    config: &config,
                                    workers: intra,
                                    cache: &cache,
                                    input,
                                    deps,
                                    baseline_degraded: baseline_degraded.clone(),
                                    phases: Vec::new(),
                                    degraded: DegradedModeReport::new(),
                                    campaign: None,
                                    telemetry: telemetry.clone(),
                                };
                                let result = {
                                    let _span = telemetry.enabled().then(|| {
                                        telemetry.span(format!("pass:{}", pass.id()), "pass")
                                    });
                                    pass.run(&mut ctx)
                                };
                                let PassContext { phases, degraded, campaign, .. } = ctx;
                                match result {
                                    Ok(artifact) => PassOutcome {
                                        artifact: Some(Arc::new(artifact)),
                                        error: None,
                                        skipped: None,
                                        phases,
                                        degraded,
                                        campaign,
                                    },
                                    Err(e) => PassOutcome {
                                        artifact: None,
                                        error: Some(e),
                                        skipped: None,
                                        phases,
                                        degraded,
                                        campaign,
                                    },
                                }
                            }
                        };
                        let mut guard = state.lock().unwrap_or_else(|e| e.into_inner());
                        guard.done[idx] = Some(outcome);
                        guard.completed += 1;
                        for &dependent in &dependents[idx] {
                            guard.indegree[dependent] -= 1;
                            if guard.indegree[dependent] == 0 {
                                guard.ready.push(dependent);
                            }
                        }
                        // Keep the ready queue in registration order so
                        // single-worker execution is deterministic.
                        guard.ready.sort_unstable_by(|a, b| b.cmp(a));
                        drop(guard);
                        turnstile.notify_all();
                    }
                });
            }
        })
        .map_err(|_| EngineError::Pipeline("a pipeline worker panicked".to_owned()))?;

        // Give the cache back before reporting anything.
        self.cache = cache.into_inner().unwrap_or_else(|e| e.into_inner());

        // Merge sinks in registration order — independent of the actual
        // interleaving, so stats and notes are reproducible.
        let mut state = state.into_inner().unwrap_or_else(|e| e.into_inner());
        let mut results = Vec::new();
        let mut first_error = None;
        for (i, pass) in passes.iter().enumerate() {
            let outcome = state.done[i].take().expect("every pass completed");
            for phase in outcome.phases {
                self.stats.record(phase);
            }
            self.degraded.merge(&outcome.degraded);
            if let Some(campaign) = outcome.campaign {
                self.last_campaign = Some(campaign);
            }
            if let Some(reason) = outcome.skipped {
                self.degraded.notes.push(reason);
            }
            if let Some(e) = outcome.error {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
            if let Some(artifact) = outcome.artifact {
                results.push((pass.id().to_owned(), artifact));
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(PipelineRun { results }),
        }
    }

    /// Executes one pass on its own, with the full worker budget — the
    /// legacy `analyze_*` entry points are thin wrappers over this.
    ///
    /// # Errors
    ///
    /// Whatever the pass returns.
    pub fn run_single(
        &mut self,
        pass: &dyn AnalysisPass,
        input: &PipelineInput<'_>,
    ) -> Result<PassArtifact> {
        let config = self.config.clone();
        let baseline_degraded = self.degraded.clone();
        let telemetry = self.telemetry.clone();
        let cache = Mutex::new(std::mem::take(&mut self.cache));
        let mut ctx = PassContext {
            config: &config,
            workers: config.jobs,
            cache: &cache,
            input,
            deps: HashMap::new(),
            baseline_degraded,
            phases: Vec::new(),
            degraded: DegradedModeReport::new(),
            campaign: None,
            telemetry: telemetry.clone(),
        };
        let result = {
            // Single-pass runs execute on the caller's thread; install the
            // handle so leaf code records, and scope the pass span to the
            // actual execution.
            let _telemetry =
                telemetry.enabled().then(|| decisive_obs::set_current(telemetry.clone()));
            let _span =
                telemetry.enabled().then(|| telemetry.span(format!("pass:{}", pass.id()), "pass"));
            pass.run(&mut ctx)
        };
        let PassContext { phases, degraded, campaign, .. } = ctx;
        self.cache = cache.into_inner().unwrap_or_else(|e| e.into_inner());
        for phase in phases {
            self.stats.record(phase);
        }
        self.degraded.merge(&degraded);
        if let Some(campaign) = campaign {
            self.last_campaign = Some(campaign);
        }
        result
    }

    /// Whole-pipeline verification (the escape hatch of
    /// [`Engine::verify_against_full`], widened to every artefact): runs
    /// the pipeline warm on this engine, then cold on a fresh engine with
    /// an empty cache, and compares artefact by artefact with
    /// [`PassArtifact::equivalent`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Verification`] when any warm artefact diverges from
    /// its cold recomputation; otherwise as [`Engine::run_pipeline`].
    pub fn verify_pipeline_against_full(
        &mut self,
        pipeline: &Pipeline,
        input: &PipelineInput<'_>,
    ) -> Result<PipelineRun> {
        let warm = self.run_pipeline(pipeline, input)?;
        let mut cold_engine = Engine::new(self.config().clone());
        let cold = cold_engine.run_pipeline(pipeline, input)?;
        for (id, artifact) in warm.artifacts() {
            let reference = cold.artifact(id).ok_or_else(|| {
                EngineError::Verification(format!(
                    "pipeline pass `{id}`: present warm but absent from the cold run"
                ))
            })?;
            if !artifact.equivalent(reference) {
                return Err(EngineError::Verification(format!(
                    "pipeline pass `{id}`: warm artefact diverges from the cold recomputation"
                )));
            }
        }
        Ok(warm)
    }

    /// The DAG listing backing `decisive passes`: every pass in
    /// topological order with its dependencies, cache namespaces, and how
    /// many cache entries those namespaces currently hold.
    ///
    /// # Errors
    ///
    /// [`EngineError::Pipeline`] when the pipeline is malformed.
    pub fn pipeline_status(&self, pipeline: &Pipeline) -> Result<Vec<PassStatus>> {
        let order = pipeline.validate()?;
        Ok(order
            .into_iter()
            .map(|i| {
                let pass = &pipeline.passes()[i];
                PassStatus {
                    id: pass.id().to_owned(),
                    depends_on: pass.depends_on().iter().map(|d| (*d).to_owned()).collect(),
                    kinds: pass.kinds().to_vec(),
                    cached_entries: pass.kinds().iter().map(|&k| self.cache.count_kind(k)).sum(),
                }
            })
            .collect())
    }
}
