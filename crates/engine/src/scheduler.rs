//! The parallel job scheduler: a bounded worker pool over `crossbeam`
//! scoped threads, with a configurable per-job retry policy (exponential
//! backoff + deterministic jitter) and cooperative cancellation.
//!
//! Determinism: workers pull job *indexes* from a shared atomic counter and
//! write results back *by index*, so the output order equals the submission
//! order regardless of which worker ran what — the merged analysis tables
//! are byte-identical to a sequential run.
//!
//! Under [`crate::pipeline`] the worker budget is split: the DAG runner
//! executes independent passes on its own pool and hands each pass a
//! fresh `Scheduler` with the remaining per-pass share, so cross-pass and
//! intra-pass parallelism never oversubscribe `EngineConfig::jobs`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use decisive_obs::Telemetry;

use crate::fingerprint::Hasher;

/// How failed (panicking) jobs are retried: up to [`RetryPolicy::max_retries`]
/// extra attempts, each preceded by an exponential backoff delay with
/// deterministic jitter.
///
/// The default policy — one retry, zero backoff — reproduces the
/// scheduler's historical retry-once behaviour exactly; sleeps only enter
/// the picture when `base_ms` is raised. Jitter is derived from the
/// repository's standard content [`Hasher`] over `(salt, attempt)` rather
/// than a random source, so a given (job, attempt) pair always backs off
/// by the same amount — campaigns replay deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure. `0` fails fast.
    pub max_retries: usize,
    /// Backoff before the first retry, in milliseconds. `0` never sleeps.
    pub base_ms: f64,
    /// Multiplier applied per further retry (`base * factor^attempt`).
    pub factor: f64,
    /// Upper bound on one backoff delay, in milliseconds.
    pub max_ms: f64,
    /// Fraction of each delay subject to jitter, in `[0, 1]`: the delay is
    /// scaled by a deterministic factor drawn from `[1 - jitter, 1]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 1, base_ms: 0.0, factor: 2.0, max_ms: 30_000.0, jitter: 0.5 }
    }
}

impl RetryPolicy {
    /// No retries at all: the first panic fails the batch.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// A policy with `max_retries` attempts backing off exponentially from
    /// `base_ms` (factor 2, jittered, capped by the default `max_ms`).
    pub fn backoff(max_retries: usize, base_ms: f64) -> Self {
        RetryPolicy { max_retries, base_ms: base_ms.max(0.0), ..RetryPolicy::default() }
    }

    /// The backoff before retry `attempt` (0-based) of the job identified
    /// by `salt`. Deterministic: same `(policy, attempt, salt)` ⇒ same
    /// delay.
    pub fn delay_ms(&self, attempt: usize, salt: u64) -> f64 {
        if self.base_ms <= 0.0 {
            return 0.0;
        }
        let raw = self.base_ms * self.factor.max(1.0).powi(attempt.min(63) as i32);
        let capped = raw.min(self.max_ms.max(self.base_ms));
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter <= 0.0 {
            return capped;
        }
        let digest = Hasher::new().write_u64(salt).write_u64(attempt as u64).finish().0;
        // Top 53 bits → a uniform unit interval, exactly representable.
        let unit = (digest >> 11) as f64 / (1u64 << 53) as f64;
        capped * (1.0 - jitter * unit)
    }
}

/// Cooperative cancellation handle: cheap to clone, checked between jobs.
/// Cancelling never interrupts a running job; it stops further jobs from
/// starting.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// `true` once [`CancelToken::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Outcome of one batch run.
#[derive(Debug)]
pub struct BatchOutput<T> {
    /// One result per job, in submission order.
    pub results: Vec<T>,
    /// How many retry attempts were made across the batch (a job that
    /// panicked twice and succeeded on the third attempt counts two).
    pub retries: usize,
    /// Wall-clock milliseconds of the single slowest job (retry included);
    /// `0` for an empty batch. The straggler detector for campaign health.
    pub max_job_ms: f64,
    /// Indexes (submission order) of jobs whose elapsed time exceeded the
    /// scheduler's deadline — see [`Scheduler::with_deadline_ms`]. Their
    /// results are still valid; the classification lets the engine report
    /// them as degraded instead of trusting a wedged-then-finished job's
    /// latency silently.
    pub timed_out: Vec<usize>,
}

/// What went wrong running a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// A job exhausted its retry budget (it panicked on the initial run
    /// and on every retry the [`RetryPolicy`] allowed).
    JobFailed {
        /// Index of the failed job.
        index: usize,
    },
    /// The batch was cancelled before every job ran.
    Cancelled,
}

/// A bounded worker pool configuration.
#[derive(Debug, Clone)]
pub struct Scheduler {
    workers: usize,
    cancel: CancelToken,
    deadline_ms: Option<f64>,
    retry: RetryPolicy,
    telemetry: Telemetry,
    label: String,
}

impl Scheduler {
    /// A scheduler with `workers` threads (clamped to at least one). The
    /// pool is bounded per batch: at most `min(workers, jobs)` threads run.
    pub fn new(workers: usize) -> Self {
        Scheduler {
            workers: workers.max(1),
            cancel: CancelToken::new(),
            deadline_ms: None,
            retry: RetryPolicy::default(),
            telemetry: Telemetry::noop(),
            label: "batch".to_owned(),
        }
    }

    /// Replaces the default retry-once policy (see [`RetryPolicy`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The configured retry policy.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Attaches a telemetry handle (and a batch label naming the job
    /// spans): each executed job records a `job:{label}` span and a
    /// queue-wait observation, each batch its retry/timeout counters, and
    /// the handle is installed as the thread-current one inside every
    /// worker so leaf code (e.g. the circuit solver) reports too.
    pub fn with_telemetry(mut self, telemetry: Telemetry, label: &str) -> Self {
        self.telemetry = telemetry;
        self.label = label.to_owned();
        self
    }

    /// Sets a per-job deadline in milliseconds (building on the
    /// `max_job_ms` straggler detector): any job whose wall time exceeds
    /// it is classified in [`BatchOutput::timed_out`].
    ///
    /// The check is cooperative — jobs are plain closures, so a wedged
    /// one cannot be pre-empted mid-flight — but classification means a
    /// hung-then-recovered job degrades the run's health report instead
    /// of passing silently.
    pub fn with_deadline_ms(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = Some(deadline_ms.max(0.0));
        self
    }

    /// The configured per-job deadline, if any.
    pub fn deadline_ms(&self) -> Option<f64> {
        self.deadline_ms
    }

    /// A scheduler sized to the machine.
    pub fn with_available_parallelism() -> Self {
        Scheduler::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The pool's cancellation token (clone it into whatever should be
    /// able to stop the run).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Runs every job, in parallel when the pool has more than one worker.
    ///
    /// Each job that panics is retried under the configured
    /// [`RetryPolicy`] (a poisoned job might have tripped on transient
    /// state) — by default once, immediately; exhausting the budget fails
    /// the batch and cancels the remaining jobs.
    ///
    /// # Errors
    ///
    /// [`BatchError::JobFailed`] when a job exhausted its retries,
    /// [`BatchError::Cancelled`] when the token fired before completion.
    pub fn run_batch<T, F>(&self, jobs: &[F]) -> Result<BatchOutput<T>, BatchError>
    where
        T: Send,
        F: Fn() -> T + Sync,
    {
        let retries = AtomicUsize::new(0);
        let max_job_ms = Mutex::new(0.0f64);
        let timed_out = Mutex::new(Vec::new());
        let instrumented = self.telemetry.enabled();
        let batch_epoch = Instant::now();
        let run_one = |index: usize| -> Result<T, BatchError> {
            let started = Instant::now();
            let _job_span = instrumented.then(|| {
                self.telemetry.duration_ms(
                    &format!("scheduler.{}.queue_wait_ms", self.label),
                    batch_epoch.elapsed().as_secs_f64() * 1e3,
                );
                let mut span = self.telemetry.span(format!("job:{}", self.label), "scheduler");
                span.arg("index", index.to_string());
                span
            });
            let mut attempt = 0usize;
            let outcome = loop {
                match catch_unwind(AssertUnwindSafe(&jobs[index])) {
                    Ok(result) => break Ok(result),
                    Err(_) if attempt < self.retry.max_retries => {
                        retries.fetch_add(1, Ordering::SeqCst);
                        let delay = self.retry.delay_ms(attempt, index as u64);
                        if delay > 0.0 {
                            std::thread::sleep(std::time::Duration::from_secs_f64(delay / 1e3));
                        }
                        attempt += 1;
                    }
                    Err(_) => break Err(BatchError::JobFailed { index }),
                }
            };
            let elapsed = started.elapsed().as_secs_f64() * 1e3;
            let mut max = max_job_ms.lock().expect("max-job slot");
            if elapsed > *max {
                *max = elapsed;
            }
            drop(max);
            if self.deadline_ms.is_some_and(|d| elapsed > d) {
                timed_out.lock().expect("timed-out slot").push(index);
            }
            outcome
        };

        let workers = self.workers.min(jobs.len()).max(1);
        let mut slots: Vec<Option<Result<T, BatchError>>> = Vec::new();
        if workers == 1 {
            // Install on the caller thread only when this scheduler has a
            // live handle — a no-op one must not mask whatever handle the
            // caller already installed.
            let _telemetry =
                instrumented.then(|| decisive_obs::set_current(self.telemetry.clone()));
            for index in 0..jobs.len() {
                if self.cancel.is_cancelled() {
                    return Err(BatchError::Cancelled);
                }
                slots.push(Some(run_one(index)));
            }
        } else {
            let next = AtomicUsize::new(0);
            let results: Vec<Mutex<Option<Result<T, BatchError>>>> =
                (0..jobs.len()).map(|_| Mutex::new(None)).collect();
            crossbeam::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        // Fresh threads have no thread-current telemetry;
                        // install this batch's handle so jobs and the leaf
                        // code under them can record.
                        let _telemetry = decisive_obs::set_current(self.telemetry.clone());
                        loop {
                            if self.cancel.is_cancelled() {
                                break;
                            }
                            let index = next.fetch_add(1, Ordering::SeqCst);
                            if index >= jobs.len() {
                                break;
                            }
                            let outcome = run_one(index);
                            let failed = outcome.is_err();
                            *results[index].lock().expect("result slot") = Some(outcome);
                            if failed {
                                // Stop scheduling further jobs; finished
                                // work stays valid for the error report.
                                self.cancel.cancel();
                                break;
                            }
                        }
                    });
                }
            })
            .expect("scheduler workers never propagate panics");
            slots =
                results.into_iter().map(|slot| slot.into_inner().expect("result slot")).collect();
        }

        // First hard failure wins; any unfilled slot means cancellation.
        let mut out = Vec::with_capacity(jobs.len());
        for slot in slots {
            match slot {
                Some(Ok(result)) => out.push(result),
                Some(Err(e)) => return Err(e),
                None => return Err(BatchError::Cancelled),
            }
        }
        if out.len() < jobs.len() {
            return Err(BatchError::Cancelled);
        }
        let mut timed_out = timed_out.into_inner().expect("timed-out slot");
        timed_out.sort_unstable();
        let retries = retries.load(Ordering::SeqCst);
        if instrumented {
            self.telemetry.count("scheduler.jobs", jobs.len() as u64);
            if retries > 0 {
                self.telemetry.count("scheduler.retries", retries as u64);
            }
            if !timed_out.is_empty() {
                self.telemetry.count("scheduler.timeouts", timed_out.len() as u64);
            }
        }
        Ok(BatchOutput {
            results: out,
            retries,
            max_job_ms: max_job_ms.into_inner().expect("max-job slot"),
            timed_out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_keep_submission_order() {
        let jobs: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i * 2
                }
            })
            .collect();
        for workers in [1, 4] {
            let out = Scheduler::new(workers).run_batch(&jobs).unwrap();
            assert_eq!(out.results, (0..64).map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(out.retries, 0);
        }
    }

    #[test]
    fn flaky_job_succeeds_on_retry() {
        let attempts = AtomicU32::new(0);
        let jobs = vec![|| {
            if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            42
        }];
        let out = Scheduler::new(2).run_batch(&jobs).unwrap();
        assert_eq!(out.results, vec![42]);
        assert_eq!(out.retries, 1);
    }

    #[test]
    fn persistent_panic_fails_the_batch_with_its_index() {
        let jobs: Vec<Box<dyn Fn() -> u32 + Sync>> =
            vec![Box::new(|| 1), Box::new(|| panic!("poisoned")), Box::new(|| 3)];
        let err = Scheduler::new(2).run_batch(&jobs).unwrap_err();
        assert_eq!(err, BatchError::JobFailed { index: 1 });
    }

    #[test]
    fn retry_none_fails_on_the_first_panic() {
        let attempts = AtomicU32::new(0);
        let jobs: Vec<Box<dyn Fn() -> u32 + Sync>> = vec![Box::new(|| {
            attempts.fetch_add(1, Ordering::SeqCst);
            panic!("always")
        })];
        let err = Scheduler::new(1).with_retry(RetryPolicy::none()).run_batch(&jobs).unwrap_err();
        assert_eq!(err, BatchError::JobFailed { index: 0 });
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "no retry attempted");
    }

    #[test]
    fn raised_retry_budget_survives_repeated_panics() {
        let attempts = AtomicU32::new(0);
        let jobs = vec![|| {
            if attempts.fetch_add(1, Ordering::SeqCst) < 3 {
                panic!("transient");
            }
            7u32
        }];
        let out =
            Scheduler::new(1).with_retry(RetryPolicy::backoff(5, 0.0)).run_batch(&jobs).unwrap();
        assert_eq!(out.results, vec![7]);
        assert_eq!(out.retries, 3, "three panics, three retries, fourth attempt succeeds");
    }

    #[test]
    fn backoff_delays_are_deterministic_capped_and_growing() {
        let policy = RetryPolicy { max_retries: 8, base_ms: 10.0, ..RetryPolicy::default() };
        let first = policy.delay_ms(0, 42);
        assert_eq!(first, policy.delay_ms(0, 42), "same (attempt, salt) ⇒ same delay");
        assert!((5.0..=10.0).contains(&first), "jitter stays within [1-j, 1]·base: {first}");
        assert_ne!(policy.delay_ms(0, 42), policy.delay_ms(0, 43), "salt decorrelates jobs");
        let late = policy.delay_ms(20, 42);
        assert!(late <= policy.max_ms, "cap holds: {late}");
        let no_jitter = RetryPolicy { jitter: 0.0, ..policy.clone() };
        assert_eq!(no_jitter.delay_ms(2, 9), 40.0, "base·factor² without jitter");
        assert_eq!(RetryPolicy::default().delay_ms(0, 1), 0.0, "default never sleeps");
    }

    #[test]
    fn cancellation_stops_the_batch() {
        let scheduler = Scheduler::new(2);
        scheduler.cancel_token().cancel();
        let jobs: Vec<_> = (0..8).map(|i| move || i).collect();
        assert_eq!(scheduler.run_batch(&jobs).unwrap_err(), BatchError::Cancelled);
    }

    #[test]
    fn empty_batch_is_fine() {
        let jobs: Vec<fn() -> u8> = Vec::new();
        let out = Scheduler::new(4).run_batch(&jobs).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.max_job_ms, 0.0);
    }

    #[test]
    fn deadline_classifies_slow_jobs_without_dropping_results() {
        let jobs: Vec<Box<dyn Fn() -> u8 + Sync>> = vec![
            Box::new(|| 1),
            Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                2
            }),
            Box::new(|| 3),
        ];
        let out = Scheduler::new(2).with_deadline_ms(5.0).run_batch(&jobs).unwrap();
        assert_eq!(out.results, vec![1, 2, 3], "timed-out jobs still return results");
        assert!(out.timed_out.contains(&1), "slow job classified: {:?}", out.timed_out);
        assert!(!out.timed_out.contains(&0));
    }

    #[test]
    fn no_deadline_never_times_out() {
        let jobs: Vec<_> = (0..4).map(|i| move || i).collect();
        let out = Scheduler::new(2).run_batch(&jobs).unwrap();
        assert!(out.timed_out.is_empty());
    }

    #[test]
    fn slowest_job_sets_max_job_ms() {
        let jobs: Vec<Box<dyn Fn() -> u8 + Sync>> = vec![
            Box::new(|| 1),
            Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                2
            }),
        ];
        let out = Scheduler::new(2).run_batch(&jobs).unwrap();
        assert!(out.max_job_ms >= 5.0, "got {}", out.max_job_ms);
    }
}
