//! Engine observability: per-phase job and cache counters, serialisable as
//! a federation [`Value`] report and renderable as a CLI summary.
//!
//! Each [`crate::pass::AnalysisPass`] records its phases into a private
//! ledger while running; the pipeline runner merges them here in pass
//! registration order, so a DAG run reads like a sequential one.

use decisive_federation::Value;
use serde::{Deserialize, Serialize};

/// Counters of one engine phase (e.g. `graph-facts`, `graph-rows`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase name.
    pub name: String,
    /// Wall time spent in the phase, milliseconds.
    pub wall_ms: f64,
    /// Work units the phase covered (cached + executed).
    pub jobs_total: usize,
    /// Work units actually executed (the cache misses).
    pub jobs_executed: usize,
    /// Artefacts served from the cache.
    pub cache_hits: usize,
    /// Artefacts that had to be recomputed.
    pub cache_misses: usize,
    /// Jobs that panicked once and were retried successfully.
    pub retries: usize,
    /// Wall-clock milliseconds of the slowest executed job; `0` when the
    /// phase was served entirely from the cache.
    pub max_job_ms: f64,
    /// Jobs that exceeded the configured per-job deadline (their results
    /// were kept, but the run counts as degraded).
    pub timed_out: usize,
}

impl PhaseStats {
    /// A named, zeroed phase record.
    pub fn new(name: impl Into<String>) -> Self {
        PhaseStats { name: name.into(), ..PhaseStats::default() }
    }
}

/// Cumulative engine statistics across one or more analyses.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EngineStats {
    /// Per-phase counters, in execution order.
    pub phases: Vec<PhaseStats>,
    /// Keys dropped by change-driven invalidation (`rerun`).
    pub invalidated_keys: usize,
    /// Persisted cache entries that failed checksum or shape validation
    /// on load and were quarantined (then recomputed).
    pub quarantined_entries: usize,
}

impl EngineStats {
    /// Appends a finished phase record.
    pub fn record(&mut self, phase: PhaseStats) {
        self.phases.push(phase);
    }

    /// The phase named `name`, if recorded (last occurrence wins).
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().rev().find(|p| p.name == name)
    }

    /// Total work units across all phases.
    pub fn jobs_total(&self) -> usize {
        self.phases.iter().map(|p| p.jobs_total).sum()
    }

    /// Work units actually executed across all phases.
    pub fn jobs_executed(&self) -> usize {
        self.phases.iter().map(|p| p.jobs_executed).sum()
    }

    /// Cache hits across all phases.
    pub fn cache_hits(&self) -> usize {
        self.phases.iter().map(|p| p.cache_hits).sum()
    }

    /// Cache misses across all phases.
    pub fn cache_misses(&self) -> usize {
        self.phases.iter().map(|p| p.cache_misses).sum()
    }

    /// Overall hit rate in `[0, 1]`; `0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits() + self.cache_misses();
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / lookups as f64
        }
    }

    /// Serialises the report for federation (and `--json` style output).
    pub fn to_value(&self) -> Value {
        Value::record([
            (
                "phases",
                Value::List(
                    self.phases
                        .iter()
                        .map(|p| {
                            Value::record([
                                ("name", Value::from(p.name.as_str())),
                                ("wall_ms", Value::Real(p.wall_ms)),
                                ("jobs_total", Value::Int(p.jobs_total as i64)),
                                ("jobs_executed", Value::Int(p.jobs_executed as i64)),
                                ("cache_hits", Value::Int(p.cache_hits as i64)),
                                ("cache_misses", Value::Int(p.cache_misses as i64)),
                                ("retries", Value::Int(p.retries as i64)),
                                ("max_job_ms", Value::Real(p.max_job_ms)),
                                ("timed_out", Value::Int(p.timed_out as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("invalidated_keys", Value::Int(self.invalidated_keys as i64)),
            ("quarantined_entries", Value::Int(self.quarantined_entries as i64)),
            ("cache_hits", Value::Int(self.cache_hits() as i64)),
            ("cache_misses", Value::Int(self.cache_misses() as i64)),
            ("hit_rate", Value::Real(self.hit_rate())),
        ])
    }

    /// A compact human-readable summary for the CLI.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in &self.phases {
            let _ = writeln!(
                out,
                "# phase {:<14} {:>7.2} ms  jobs {}/{}  hits {}  misses {}{}{}",
                p.name,
                p.wall_ms,
                p.jobs_executed,
                p.jobs_total,
                p.cache_hits,
                p.cache_misses,
                if p.retries > 0 { format!("  retries {}", p.retries) } else { String::new() },
                match (p.max_job_ms > 0.0, p.timed_out > 0) {
                    (true, true) => {
                        format!("  max-job {:.2} ms  timed-out {}", p.max_job_ms, p.timed_out)
                    }
                    (true, false) => format!("  max-job {:.2} ms", p.max_job_ms),
                    (false, true) => format!("  timed-out {}", p.timed_out),
                    (false, false) => String::new(),
                },
            );
        }
        let _ = writeln!(
            out,
            "# cache hit rate {:.1}% ({} hits / {} lookups), {} key(s) invalidated{}",
            self.hit_rate() * 100.0,
            self.cache_hits(),
            self.cache_hits() + self.cache_misses(),
            self.invalidated_keys,
            if self.quarantined_entries > 0 {
                format!(", {} entr(ies) quarantined", self.quarantined_entries)
            } else {
                String::new()
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_hit_rate() {
        let mut stats = EngineStats::default();
        stats.record(PhaseStats {
            name: "graph-facts".into(),
            jobs_total: 4,
            jobs_executed: 1,
            cache_hits: 3,
            cache_misses: 1,
            ..PhaseStats::default()
        });
        stats.record(PhaseStats {
            name: "graph-rows".into(),
            jobs_total: 10,
            jobs_executed: 2,
            cache_hits: 8,
            cache_misses: 2,
            ..PhaseStats::default()
        });
        assert_eq!(stats.jobs_total(), 14);
        assert_eq!(stats.jobs_executed(), 3);
        assert!((stats.hit_rate() - 11.0 / 14.0).abs() < 1e-12);
        let value = stats.to_value();
        assert_eq!(value.get("cache_hits").and_then(Value::as_i64), Some(11));
        assert!(stats.render().contains("graph-rows"));
    }

    #[test]
    fn empty_stats_have_zero_hit_rate() {
        assert_eq!(EngineStats::default().hit_rate(), 0.0);
    }
}
