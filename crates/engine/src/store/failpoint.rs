//! The filesystem seam of the segmented store, with a fault-injecting
//! implementation for the crash harness.
//!
//! Every write-path operation the store performs — creating a segment,
//! appending a frame, fsyncing, swapping a manifest — goes through the
//! [`StoreFs`] trait. Production uses [`RealFs`] (thin `std::fs`
//! passthrough); the fault harness uses [`FailpointFs`], which counts
//! operations and simulates a crash at a chosen operation index: the
//! crashing write may land torn, bit-flipped, or not at all, and every
//! operation after the crash point fails. Reopening the directory with
//! [`RealFs`] then *is* the post-crash recovery the tests assert on.
//!
//! Fidelity note: the harness injects loss at the crashing write itself.
//! Earlier unsynced writes surviving the simulated crash is the benign
//! direction — recovery must cope with both more and less data on disk
//! than was committed, and the invariants verified (committed ⊆ recovered
//! ⊆ appended, recovery never panics) hold either way.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// The write-path filesystem operations of the segmented store. `Sync` +
/// `Send` so one implementation can sit behind the store's `Arc`.
pub trait StoreFs: Send + Sync + std::fmt::Debug {
    /// Creates (truncating) a file open for writing.
    fn create(&self, path: &Path) -> io::Result<File>;
    /// Appends `bytes` at the file's current position.
    fn append(&self, file: &mut File, bytes: &[u8]) -> io::Result<()>;
    /// Flushes file data (and metadata needed to read it back) to disk.
    fn sync(&self, file: &File) -> io::Result<()>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs a directory so a preceding rename/create is durable.
    /// Best-effort on filesystems that do not support it.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production filesystem: straight `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl StoreFs for RealFs {
    fn create(&self, path: &Path) -> io::Result<File> {
        File::create(path)
    }

    fn append(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        file.write_all(bytes)
    }

    fn sync(&self, file: &File) -> io::Result<()> {
        file.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Best-effort: not every filesystem lets you open or fsync a
        // directory, and a failure here never un-does the rename.
        if let Ok(handle) = File::open(dir) {
            handle.sync_all().ok();
        }
        Ok(())
    }
}

/// How the write at the crash point lands on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Nothing of the crashing write reaches the disk (a short write of
    /// zero bytes — the cleanest possible crash).
    DropWrite,
    /// A prefix of the crashing write reaches the disk: the classic torn
    /// write. `keep` is clamped to the write's length.
    Torn {
        /// Bytes of the write that land before the crash.
        keep: usize,
    },
    /// The whole write lands, but with one bit flipped — media corruption
    /// coinciding with the crash. `bit` indexes into the write modulo its
    /// length in bits.
    BitFlip {
        /// Which bit to flip (taken modulo the write's bit length).
        bit: usize,
    },
}

/// A [`StoreFs`] that crashes at the `crash_at`-th operation (0-based,
/// counting every trait call). The crashing operation applies its
/// [`WriteFault`] (appends) or is skipped entirely (everything else), and
/// every later operation fails — the process is "dead". Reads are not
/// intercepted: recovery is exercised by reopening with [`RealFs`].
#[derive(Debug)]
pub struct FailpointFs {
    ops: AtomicU64,
    crash_at: u64,
    fault: WriteFault,
}

impl FailpointFs {
    /// Crashes at operation index `crash_at` with the given write fault.
    pub fn new(crash_at: u64, fault: WriteFault) -> Self {
        FailpointFs { ops: AtomicU64::new(0), crash_at, fault }
    }

    /// Never crashes; use to count how many operations a scenario
    /// performs, then sweep `crash_at` over `0..ops_performed()`.
    pub fn counting() -> Self {
        Self::new(u64::MAX, WriteFault::DropWrite)
    }

    /// Operations attempted so far (including the crashing one).
    pub fn ops_performed(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// `true` once the crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.ops_performed() > self.crash_at
    }

    fn gate(&self) -> io::Result<bool> {
        let idx = self.ops.fetch_add(1, Ordering::SeqCst);
        if idx > self.crash_at {
            return Err(crash_error("operation after injected crash"));
        }
        Ok(idx == self.crash_at)
    }
}

fn crash_error(what: &str) -> io::Error {
    io::Error::other(format!("injected crash: {what}"))
}

impl StoreFs for FailpointFs {
    fn create(&self, path: &Path) -> io::Result<File> {
        if self.gate()? {
            return Err(crash_error("create"));
        }
        File::create(path)
    }

    fn append(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        if self.gate()? {
            match self.fault {
                WriteFault::DropWrite => {}
                WriteFault::Torn { keep } => {
                    let keep = keep.min(bytes.len());
                    file.write_all(&bytes[..keep])?;
                }
                WriteFault::BitFlip { bit } => {
                    let mut corrupted = bytes.to_vec();
                    if !corrupted.is_empty() {
                        let bit = bit % (corrupted.len() * 8);
                        corrupted[bit / 8] ^= 1 << (bit % 8);
                    }
                    file.write_all(&corrupted)?;
                }
            }
            return Err(crash_error("append"));
        }
        file.write_all(bytes)
    }

    fn sync(&self, file: &File) -> io::Result<()> {
        if self.gate()? {
            return Err(crash_error("sync"));
        }
        file.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.gate()? {
            return Err(crash_error("rename"));
        }
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        if self.gate()? {
            return Err(crash_error("remove"));
        }
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.gate()? {
            return Err(crash_error("sync_dir"));
        }
        RealFs.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_fs_never_crashes_and_counts() {
        let fs = FailpointFs::counting();
        let dir = std::env::temp_dir().join(format!("decisive_fp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut f = fs.create(&dir.join("a")).unwrap();
        fs.append(&mut f, b"hello").unwrap();
        fs.sync(&f).unwrap();
        assert_eq!(fs.ops_performed(), 3);
        assert!(!fs.crashed());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_keeps_a_prefix_then_fails_everything() {
        let dir = std::env::temp_dir().join(format!("decisive_fp_t_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailpointFs::new(1, WriteFault::Torn { keep: 2 });
        let path = dir.join("seg");
        let mut f = fs.create(&path).unwrap(); // op 0: fine
        let err = fs.append(&mut f, b"hello").unwrap_err(); // op 1: crash
        assert!(err.to_string().contains("injected crash"));
        assert_eq!(std::fs::read(&path).unwrap(), b"he", "prefix landed");
        assert!(fs.sync(&f).is_err(), "post-crash ops all fail");
        assert!(fs.crashed());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_lands_full_length_but_corrupted() {
        let dir = std::env::temp_dir().join(format!("decisive_fp_b_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = FailpointFs::new(1, WriteFault::BitFlip { bit: 9 });
        let path = dir.join("seg");
        let mut f = fs.create(&path).unwrap();
        fs.append(&mut f, b"hello").unwrap_err();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len(), 5);
        assert_ne!(on_disk, b"hello");
        assert_eq!(on_disk[1] ^ (1 << 1), b'e');
        std::fs::remove_dir_all(&dir).ok();
    }
}
