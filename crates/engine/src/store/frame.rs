//! The binary frame codec of the segmented artifact store.
//!
//! One frame is one `put`: a length-prefixed, checksummed record of
//! `(kind, key, owner, serialized value)`.
//!
//! ```text
//! ┌───────────┬──────────────────────────────┬──────────────┐
//! │ len (u32) │ body (len bytes)             │ sum (u64)    │
//! └───────────┴──────────────────────────────┴──────────────┘
//! body = op(u8) · tag_len(u8) · tag · key(u64) ·
//!        owner_len(u32) · owner · value_len(u32) · value JSON
//! ```
//!
//! All integers are little-endian; `sum` is the repository's standard
//! [`Hasher`] digest over the body bytes. The checksum sits *after* the
//! body so a torn append is overwhelmingly likely to fail verification
//! even when the length field landed intact.
//!
//! Scanning distinguishes two failure classes: a frame with a plausible
//! length but bad checksum/shape is *corrupt* — quarantined and skipped,
//! the scan resyncs at the next frame boundary — while an implausible or
//! truncated length is a *torn tail*: nothing after it can be trusted,
//! the segment is truncated there.

use crate::cache::ArtifactKind;
use crate::fingerprint::{Fingerprint, Hasher};

/// Bytes of the length prefix.
pub(crate) const HEADER_BYTES: usize = 4;
/// Bytes of the trailing checksum.
pub(crate) const TRAILER_BYTES: usize = 8;
/// Upper bound on one frame body. A length above this is a torn length
/// field, not a giant artefact.
pub(crate) const MAX_BODY_BYTES: u32 = 64 << 20;

/// The only operation today: store an artefact. Compaction drops dead
/// frames rather than logging deletes, so no tombstone op exists.
const OP_PUT: u8 = 1;

/// A decoded frame body.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FrameBody {
    pub kind: ArtifactKind,
    pub key: Fingerprint,
    pub owner: String,
    pub value_json: String,
}

fn body_sum(body: &[u8]) -> u64 {
    Hasher::new().write_bytes(body).finish().0
}

/// Encodes one `put` as a complete on-disk frame.
pub(crate) fn encode(
    kind: ArtifactKind,
    key: Fingerprint,
    owner: &str,
    value_json: &str,
) -> Vec<u8> {
    let tag = kind.tag().as_bytes();
    let mut body = Vec::with_capacity(2 + tag.len() + 8 + 4 + owner.len() + 4 + value_json.len());
    body.push(OP_PUT);
    body.push(tag.len() as u8);
    body.extend_from_slice(tag);
    body.extend_from_slice(&key.0.to_le_bytes());
    body.extend_from_slice(&(owner.len() as u32).to_le_bytes());
    body.extend_from_slice(owner.as_bytes());
    body.extend_from_slice(&(value_json.len() as u32).to_le_bytes());
    body.extend_from_slice(value_json.as_bytes());

    let mut frame = Vec::with_capacity(HEADER_BYTES + body.len() + TRAILER_BYTES);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    let sum = body_sum(&body);
    frame.append(&mut body);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame
}

/// One step of a segment scan, starting at a frame boundary.
#[derive(Debug)]
pub(crate) enum ScanStep {
    /// A verified frame occupying `len` bytes on disk.
    Frame { body: FrameBody, len: usize },
    /// A plausibly-delimited frame that failed checksum or shape
    /// verification; the scan can resync `len` bytes further on.
    Corrupt { reason: String, len: usize },
    /// The remaining bytes cannot delimit a frame — a torn tail. The
    /// segment must be truncated at this boundary.
    Tail { reason: String },
}

/// Examines the bytes at a frame boundary. `buf` must be non-empty.
pub(crate) fn scan_step(buf: &[u8]) -> ScanStep {
    if buf.len() < HEADER_BYTES {
        return ScanStep::Tail {
            reason: format!("{}-byte tail, too short for a frame", buf.len()),
        };
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len == 0 || len > MAX_BODY_BYTES {
        return ScanStep::Tail { reason: format!("implausible frame length {len}") };
    }
    let total = HEADER_BYTES + len as usize + TRAILER_BYTES;
    if buf.len() < total {
        return ScanStep::Tail {
            reason: format!("truncated frame: {total} bytes framed, {} on disk", buf.len()),
        };
    }
    let body = &buf[HEADER_BYTES..HEADER_BYTES + len as usize];
    let stored = u64::from_le_bytes(
        buf[HEADER_BYTES + len as usize..total].try_into().expect("trailer is 8 bytes"),
    );
    if body_sum(body) != stored {
        return ScanStep::Corrupt { reason: "frame checksum mismatch".to_owned(), len: total };
    }
    match decode_body(body) {
        Ok(frame) => ScanStep::Frame { body: frame, len: total },
        Err(reason) => ScanStep::Corrupt { reason, len: total },
    }
}

/// Decodes and re-verifies a complete frame previously located by a scan
/// (the point-read path). The slice must be exactly one frame.
pub(crate) fn decode(frame: &[u8]) -> Result<FrameBody, String> {
    match scan_step(frame) {
        ScanStep::Frame { body, len } if len == frame.len() => Ok(body),
        ScanStep::Frame { len, .. } => {
            Err(format!("frame length {len} does not fill the {}-byte slot", frame.len()))
        }
        ScanStep::Corrupt { reason, .. } | ScanStep::Tail { reason } => Err(reason),
    }
}

fn decode_body(body: &[u8]) -> Result<FrameBody, String> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8], String> {
        let end = at.checked_add(n).filter(|&e| e <= body.len());
        let end = end.ok_or_else(|| format!("frame body overrun at byte {at}"))?;
        let slice = &body[*at..end];
        *at = end;
        Ok(slice)
    };
    let op = take(&mut at, 1)?[0];
    if op != OP_PUT {
        return Err(format!("unknown frame op {op}"));
    }
    let tag_len = take(&mut at, 1)?[0] as usize;
    let tag = std::str::from_utf8(take(&mut at, tag_len)?)
        .map_err(|_| "frame kind tag is not UTF-8".to_owned())?;
    let kind = ArtifactKind::parse(tag).ok_or_else(|| format!("unknown artefact kind `{tag}`"))?;
    let key = Fingerprint(u64::from_le_bytes(take(&mut at, 8)?.try_into().expect("8-byte key")));
    let owner_len =
        u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4-byte owner length")) as usize;
    let owner = std::str::from_utf8(take(&mut at, owner_len)?)
        .map_err(|_| "frame owner is not UTF-8".to_owned())?
        .to_owned();
    let value_len =
        u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4-byte value length")) as usize;
    let value_json = std::str::from_utf8(take(&mut at, value_len)?)
        .map_err(|_| "frame value is not UTF-8".to_owned())?
        .to_owned();
    if at != body.len() {
        return Err(format!("{} trailing bytes after frame fields", body.len() - at));
    }
    Ok(FrameBody { kind, key, owner, value_json })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode(ArtifactKind::GraphRow, Fingerprint(0xfeed), "D1", r#"{"x":1}"#)
    }

    #[test]
    fn roundtrips() {
        let frame = sample();
        let body = decode(&frame).unwrap();
        assert_eq!(body.kind, ArtifactKind::GraphRow);
        assert_eq!(body.key, Fingerprint(0xfeed));
        assert_eq!(body.owner, "D1");
        assert_eq!(body.value_json, r#"{"x":1}"#);
    }

    #[test]
    fn every_truncation_is_a_tail() {
        let frame = sample();
        for cut in 1..frame.len() {
            match scan_step(&frame[..cut]) {
                ScanStep::Tail { .. } => {}
                other => panic!("cut at {cut} gave {other:?}, expected a torn tail"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let frame = sample();
        for bit in 0..frame.len() * 8 {
            let mut torn = frame.clone();
            torn[bit / 8] ^= 1 << (bit % 8);
            match scan_step(&torn) {
                ScanStep::Frame { .. } => {
                    panic!("bit flip at {bit} verified as a clean frame")
                }
                // Flips in the length prefix may make the frame implausible
                // (Tail) or mis-delimited (Corrupt); flips in body or sum
                // must be Corrupt. Either way, never a valid frame.
                ScanStep::Corrupt { .. } | ScanStep::Tail { .. } => {}
            }
        }
    }

    #[test]
    fn zero_and_oversized_lengths_are_torn_tails() {
        let mut frame = sample();
        frame[0..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(scan_step(&frame), ScanStep::Tail { .. }));
        frame[0..4].copy_from_slice(&(MAX_BODY_BYTES + 1).to_le_bytes());
        assert!(matches!(scan_step(&frame), ScanStep::Tail { .. }));
    }

    #[test]
    fn corrupt_frame_resyncs_at_the_next_boundary() {
        let mut bytes = sample();
        let first_len = bytes.len();
        // Flip one body byte of the first frame, then append a clean one.
        bytes[HEADER_BYTES + 3] ^= 0xff;
        bytes.extend(encode(ArtifactKind::MonitorSet, Fingerprint(7), "top", "[]"));
        let step = scan_step(&bytes);
        let ScanStep::Corrupt { len, .. } = step else { panic!("expected corrupt, got {step:?}") };
        assert_eq!(len, first_len, "scan resyncs exactly after the corrupt frame");
        match scan_step(&bytes[len..]) {
            ScanStep::Frame { body, .. } => assert_eq!(body.kind, ArtifactKind::MonitorSet),
            other => panic!("clean second frame expected, got {other:?}"),
        }
    }
}
